#include "registry.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/pca_interlock.hpp"
#include "testkit/runner.hpp"

namespace mcps::scenario {

namespace {

using mcps::sim::SimDuration;

// ---- knob-value parsing ---------------------------------------------------

[[noreturn]] void bad_value(const ScenarioSpec& spec, std::string_view knob,
                            std::string_view value, std::string_view want) {
    throw SpecError{"spec: scenario '" + spec.name + "': knob '" +
                    std::string{knob} + "': expected " + std::string{want} +
                    ", got '" + std::string{value} + "'"};
}

double number_value(const ScenarioSpec& spec, const KnobInfo& knob,
                    std::string_view value) {
    const std::string s{value};
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size() || !std::isfinite(v) || v < knob.lo ||
        v > knob.hi) {
        char want[96];
        std::snprintf(want, sizeof want, "a number in [%g, %g]", knob.lo,
                      knob.hi);
        bad_value(spec, knob.name, value, want);
    }
    return v;
}

std::uint64_t count_value(const ScenarioSpec& spec, const KnobInfo& knob,
                          std::string_view value) {
    const std::string s{value};
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || s.empty() || s[0] == '-' || v == 0 ||
        v > knob.max_count) {
        char want[96];
        std::snprintf(want, sizeof want, "an integer in [1, %llu]",
                      static_cast<unsigned long long>(knob.max_count));
        bad_value(spec, knob.name, value, want);
    }
    return v;
}

/// Millisecond knobs become integer-microsecond SimDurations through a
/// single rounding rule so text specs stay exact.
SimDuration millis_value(const ScenarioSpec& spec, const KnobInfo& knob,
                         std::string_view value) {
    const double ms = number_value(spec, knob, value);
    return SimDuration::micros(static_cast<std::int64_t>(
        std::llround(ms * 1000.0)));
}

physio::Archetype archetype_value(const ScenarioSpec& spec,
                                  const KnobInfo& knob,
                                  std::string_view value) {
    for (physio::Archetype a : physio::all_archetypes()) {
        if (physio::to_string(a) == value) return a;
    }
    bad_value(spec, knob.name, value, "a patient archetype");
}

// ---- knob vocabularies ----------------------------------------------------

std::vector<std::string> archetype_choices() {
    std::vector<std::string> out;
    for (physio::Archetype a : physio::all_archetypes()) {
        out.emplace_back(physio::to_string(a));
    }
    return out;
}

KnobInfo choice(std::string name, std::string description,
                std::vector<std::string> choices) {
    KnobInfo k;
    k.name = std::move(name);
    k.description = std::move(description);
    k.kind = KnobInfo::Kind::kChoice;
    k.choices = std::move(choices);
    return k;
}

KnobInfo number(std::string name, std::string description, double lo,
                double hi) {
    KnobInfo k;
    k.name = std::move(name);
    k.description = std::move(description);
    k.kind = KnobInfo::Kind::kNumber;
    k.lo = lo;
    k.hi = hi;
    k.safe_lo = lo;
    k.safe_hi = hi;
    return k;
}

/// number() with a claimed-safe envelope narrower than the settable
/// domain (TA5 checks the deadline over [safe_lo, safe_hi] only).
KnobInfo number_env(std::string name, std::string description, double lo,
                    double hi, double safe_lo, double safe_hi) {
    KnobInfo k = number(std::move(name), std::move(description), lo, hi);
    k.safe_lo = safe_lo;
    k.safe_hi = safe_hi;
    return k;
}

/// choice() claiming only a subset of the choices safe.
KnobInfo choice_env(std::string name, std::string description,
                    std::vector<std::string> choices,
                    std::vector<std::string> safe) {
    KnobInfo k = choice(std::move(name), std::move(description),
                        std::move(choices));
    k.safe_choices = std::move(safe);
    return k;
}

KnobInfo count(std::string name, std::string description,
               std::uint64_t max_count) {
    KnobInfo k;
    k.name = std::move(name);
    k.description = std::move(description);
    k.kind = KnobInfo::Kind::kCount;
    k.max_count = max_count;
    return k;
}

std::vector<KnobInfo> pca_knobs() {
    return {
        choice("patient", "patient archetype (nominal parameters)",
               archetype_choices()),
        choice("demand", "demand generation mode", {"normal", "proxy"}),
        choice_env("interlock", "safety interlock configuration",
                   {"off", "spo2", "dual"}, {"spo2", "dual"}),
        choice_env("policy", "interlock reaction to stale sensor data",
                   {"fail-safe", "fail-operational"}, {"fail-safe"}),
        choice("monitor", "classic threshold bedside monitor",
               {"on", "off"}),
        choice("smart-alarm", "fused multi-sensor smart alarm",
               {"on", "off"}),
        number("artifact-prob", "oximeter motion-artifact probability",
               0.0, 1.0),
        number("artifact-mag", "oximeter artifact magnitude (SpO2 points)",
               -40.0, 0.0),
        number_env("latency-ms", "network base latency (milliseconds)", 0.0,
                   10000.0, 0.0, 100.0),
        number_env("jitter-ms", "network latency jitter sd (milliseconds)",
                   0.0, 10000.0, 0.0, 10.0),
        number_env("loss", "per-message network loss probability", 0.0, 0.9,
                   0.0, 0.05),
    };
}

std::vector<KnobInfo> hospital_knobs() {
    return {
        count("patients", "concurrent patients in the hospital", 1000000),
        count("wards", "ward count (each: one ICE bus + nurse pool)", 10000),
        count("nurses", "nurses per ward", 1000),
        count("bus-capacity",
              "messages one ward bus services per simulation tick", 100000),
        count("jobs",
              "worker threads (execution only; reports are identical for "
              "any value)",
              256),
        choice("mix", "cohort archetype mix",
               {"typical", "mixed", "high-risk"}),
        choice_env("interlock", "SpO2 pump-stop placement",
                   {"off", "local", "central"}, {"local"}),
        number_env("monitor-period-s",
                   "periodic vitals publish period (seconds)", 0.5, 60.0,
                   0.5, 10.0),
        number_env("deadline-s", "interlock safety deadline (seconds)", 5.0,
                   600.0, 30.0, 600.0),
        number("alarm-threshold", "SpO2 alarm/interlock threshold (percent)",
               80.0, 95.0),
        number("demand-per-hour", "mean PCA presses per patient-hour", 0.0,
               60.0),
        number("bolus-mg", "per-press PCA bolus (mg)", 0.0, 10.0),
        number("storm-fraction",
               "patient fraction hit by the synchronized storm bolus", 0.0,
               1.0),
        number("storm-bolus-mg", "storm bolus size (mg)", 0.0, 10.0),
        number("storm-at-s", "storm injection time (seconds)", 0.0, 36000.0),
    };
}

std::vector<KnobInfo> xray_knobs() {
    return {
        choice("mode", "coordination mode", {"manual", "automated"}),
        count("procedures",
              "imaging procedure count (overrides the minutes mapping)",
              100000),
        number("premature", "manual premature-shot probability", 0.0, 1.0),
        number("distraction", "manual distraction probability", 0.0, 1.0),
        number_env("latency-ms", "network base latency (milliseconds)", 0.0,
                   10000.0, 0.0, 100.0),
        number_env("jitter-ms", "network latency jitter sd (milliseconds)",
                   0.0, 10000.0, 0.0, 10.0),
        number_env("loss", "per-message network loss probability", 0.0, 0.9,
                   0.0, 0.05),
        count("max-retries", "coordination retry budget per procedure", 100),
    };
}

// ---- knob application -----------------------------------------------------

void apply_pca_knob(core::PcaScenarioConfig& cfg, const ScenarioSpec& spec,
                    const KnobInfo& knob, std::string_view value) {
    const std::string_view n = knob.name;
    if (n == "patient") {
        cfg.patient =
            physio::nominal_parameters(archetype_value(spec, knob, value));
    } else if (n == "demand") {
        cfg.demand_mode = value == "proxy" ? core::DemandMode::kProxy
                                           : core::DemandMode::kNormal;
    } else if (n == "interlock") {
        if (value == "off") {
            cfg.interlock = std::nullopt;
        } else {
            if (!cfg.interlock) cfg.interlock = core::InterlockConfig{};
            cfg.interlock->mode = value == "spo2"
                                      ? core::InterlockMode::kSpO2Only
                                      : core::InterlockMode::kDualSensor;
        }
    } else if (n == "policy") {
        if (!cfg.interlock) {
            throw SpecError{"spec: scenario '" + spec.name +
                            "': knob 'policy' requires an interlock (set "
                            "interlock=spo2 or interlock=dual first)"};
        }
        cfg.interlock->data_loss = value == "fail-operational"
                                       ? core::DataLossPolicy::kFailOperational
                                       : core::DataLossPolicy::kFailSafe;
    } else if (n == "monitor") {
        cfg.with_monitor = value == "on";
    } else if (n == "smart-alarm") {
        cfg.with_smart_alarm = value == "on";
    } else if (n == "artifact-prob") {
        cfg.oximeter.artifact_probability = number_value(spec, knob, value);
    } else if (n == "artifact-mag") {
        cfg.oximeter.artifact_magnitude = number_value(spec, knob, value);
    } else if (n == "latency-ms") {
        cfg.channel.base_latency = millis_value(spec, knob, value);
    } else if (n == "jitter-ms") {
        cfg.channel.jitter_sd = millis_value(spec, knob, value);
    } else if (n == "loss") {
        cfg.channel.loss_probability = number_value(spec, knob, value);
    }
}

void apply_xray_knob(core::XrayScenarioConfig& cfg, const ScenarioSpec& spec,
                     const KnobInfo& knob, std::string_view value) {
    const std::string_view n = knob.name;
    if (n == "mode") {
        cfg.mode = value == "manual" ? core::CoordinationMode::kManual
                                     : core::CoordinationMode::kAutomated;
    } else if (n == "procedures") {
        cfg.procedures =
            static_cast<std::size_t>(count_value(spec, knob, value));
    } else if (n == "premature") {
        cfg.manual.premature_shot_probability =
            number_value(spec, knob, value);
    } else if (n == "distraction") {
        cfg.manual.distraction_probability = number_value(spec, knob, value);
    } else if (n == "latency-ms") {
        cfg.channel.base_latency = millis_value(spec, knob, value);
    } else if (n == "jitter-ms") {
        cfg.channel.jitter_sd = millis_value(spec, knob, value);
    } else if (n == "loss") {
        cfg.channel.loss_probability = number_value(spec, knob, value);
    } else if (n == "max-retries") {
        cfg.sync.max_retries =
            static_cast<int>(count_value(spec, knob, value));
    }
}

void apply_hospital_knob(hospital::HospitalConfig& cfg,
                         const ScenarioSpec& spec, const KnobInfo& knob,
                         std::string_view value) {
    const std::string_view n = knob.name;
    if (n == "patients") {
        cfg.patients =
            static_cast<std::size_t>(count_value(spec, knob, value));
    } else if (n == "wards") {
        cfg.wards = static_cast<std::size_t>(count_value(spec, knob, value));
    } else if (n == "nurses") {
        cfg.nurses_per_ward =
            static_cast<std::size_t>(count_value(spec, knob, value));
    } else if (n == "bus-capacity") {
        cfg.bus_capacity_per_tick =
            static_cast<std::size_t>(count_value(spec, knob, value));
    } else if (n == "jobs") {
        cfg.jobs = static_cast<unsigned>(count_value(spec, knob, value));
    } else if (n == "mix") {
        cfg.mix = value == "typical"
                      ? hospital::CohortMix::kTypical
                      : (value == "high-risk" ? hospital::CohortMix::kHighRisk
                                              : hospital::CohortMix::kMixed);
    } else if (n == "interlock") {
        cfg.interlock =
            value == "off"
                ? hospital::InterlockPlacement::kOff
                : (value == "central" ? hospital::InterlockPlacement::kCentral
                                      : hospital::InterlockPlacement::kLocal);
    } else if (n == "monitor-period-s") {
        cfg.monitor_period_s = number_value(spec, knob, value);
    } else if (n == "deadline-s") {
        cfg.interlock_deadline_s = number_value(spec, knob, value);
    } else if (n == "alarm-threshold") {
        cfg.spo2_alarm_threshold = number_value(spec, knob, value);
    } else if (n == "demand-per-hour") {
        cfg.demand_per_hour = number_value(spec, knob, value);
    } else if (n == "bolus-mg") {
        cfg.bolus_mg = number_value(spec, knob, value);
    } else if (n == "storm-fraction") {
        cfg.storm_fraction = number_value(spec, knob, value);
    } else if (n == "storm-bolus-mg") {
        cfg.storm_bolus_mg = number_value(spec, knob, value);
    } else if (n == "storm-at-s") {
        cfg.storm_at_s = number_value(spec, knob, value);
    }
}

/// Choice knobs validate here so apply_* can assume well-formed values.
void check_choice(const ScenarioSpec& spec, const KnobInfo& knob,
                  std::string_view value) {
    if (knob.kind != KnobInfo::Kind::kChoice) return;
    for (const auto& c : knob.choices) {
        if (c == value) return;
    }
    std::string want = "one of";
    for (const auto& c : knob.choices) want += " '" + c + "'";
    bad_value(spec, knob.name, value, want);
}

const ScenarioInfo& checked_info(const ScenarioSpec& spec,
                                 ScenarioFamily family) {
    const ScenarioInfo& info = registry().info(spec.name);
    if (info.family != family) {
        throw SpecError{"spec: scenario '" + spec.name + "' is " +
                        std::string{to_string(info.family)} + "-family, not " +
                        std::string{to_string(family)}};
    }
    return info;
}

// ---- runners --------------------------------------------------------------

void fill_metrics(const ScenarioSpec& spec, const RunArtifacts& art,
                  mcps::obs::MetricsRegistry* metrics) {
    if (metrics == nullptr) return;
    metrics->counter("scenario/runs").add();
    for (const auto& [k, v] : art.outcome) {
        metrics->gauge("scenario/" + spec.name + "/" + k).set(v);
    }
}

RunArtifacts run_pca_family(const ScenarioSpec& spec, const RunOptions& opts) {
    core::PcaScenarioConfig cfg = make_pca_config(spec);
    cfg.events = opts.events;

    // Run through the live object (not run_pca_scenario) so the trace
    // can be fingerprinted without perturbing the run: the fold is a
    // read-only pass over the recorder after run() returns.
    core::PcaScenario sc{cfg};
    const core::PcaScenarioResult result = sc.run();

    RunArtifacts art;
    art.spec = spec;
    art.fingerprint = testkit::trace_fingerprint(sc.trace());
    art.outcome = pca_outcome(result);
    fill_metrics(spec, art, opts.metrics);
    return art;
}

RunArtifacts run_xray_family(const ScenarioSpec& spec,
                             const RunOptions& opts) {
    core::XrayScenarioConfig cfg = make_xray_config(spec);
    cfg.events = opts.events;

    const core::XrayScenarioResult result = core::run_xray_scenario(cfg);

    RunArtifacts art;
    art.spec = spec;
    art.fingerprint = testkit::xray_result_fingerprint(result);
    art.outcome = xray_outcome(result);
    fill_metrics(spec, art, opts.metrics);
    return art;
}

RunArtifacts run_hospital_family(const ScenarioSpec& spec,
                                 const RunOptions& opts) {
    const hospital::HospitalConfig cfg = make_hospital_config(spec);
    const hospital::HospitalEngine engine{cfg};
    const hospital::HospitalReport rep = engine.run();

    RunArtifacts art;
    art.spec = spec;
    art.fingerprint = rep.fingerprint;
    art.outcome = hospital_outcome(rep);
    fill_metrics(spec, art, opts.metrics);
    return art;
}

ScenarioRegistry build_registry() {
    ScenarioRegistry reg;

    ScenarioInfo pca;
    pca.name = "pca";
    pca.description =
        "closed-loop PCA: high-risk patient, PCA-by-proxy pressing, "
        "dual-sensor interlock (the golden-trace preset)";
    pca.family = ScenarioFamily::kPca;
    pca.default_minutes = 240;
    pca.knobs = pca_knobs();
    reg.add(std::move(pca), run_pca_family);

    ScenarioInfo open;
    open.name = "pca-open";
    open.description =
        "open-loop PCA baseline: opioid-sensitive patient, proxy "
        "pressing, NO interlock (the hazard E1 quantifies)";
    open.family = ScenarioFamily::kPca;
    open.default_minutes = 240;
    open.knobs = pca_knobs();
    reg.add(std::move(open), run_pca_family);

    ScenarioInfo alarm;
    alarm.name = "smart-alarm";
    alarm.description =
        "alarm-only ward shift: typical adult, normal demand, threshold "
        "monitor + fused smart alarm, ward-grade oximeter artifacts";
    alarm.family = ScenarioFamily::kPca;
    alarm.default_minutes = 480;
    alarm.knobs = pca_knobs();
    reg.add(std::move(alarm), run_pca_family);

    ScenarioInfo xray;
    xray.name = "xray";
    xray.description =
        "x-ray/ventilator sync via the automated ICE coordination app "
        "(one procedure per 3 minutes; the golden-trace preset)";
    xray.family = ScenarioFamily::kXray;
    xray.default_minutes = 60;
    xray.knobs = xray_knobs();
    reg.add(std::move(xray), run_xray_family);

    ScenarioInfo manual;
    manual.name = "xray-manual";
    manual.description =
        "x-ray/ventilator sync through the manual human-operator "
        "baseline (typical sloppiness, experiment E4a)";
    manual.family = ScenarioFamily::kXray;
    manual.default_minutes = 60;
    manual.knobs = xray_knobs();
    reg.add(std::move(manual), run_xray_family);

    ScenarioInfo hosp;
    hosp.name = "hospital";
    hosp.description =
        "hospital-scale population: 2000 concurrent PCA patients in 20 "
        "wards sharing ICE buses and nurse pools, pump-local interlock";
    hosp.family = ScenarioFamily::kHospital;
    hosp.default_minutes = 60;
    hosp.knobs = hospital_knobs();
    reg.add(std::move(hosp), run_hospital_family);

    ScenarioInfo hosp_small;
    hosp_small.name = "hospital-small";
    hosp_small.description =
        "small hospital: 96 patients in 4 wards with a deliberately "
        "narrow bus, for smoke tests and contention experiments";
    hosp_small.family = ScenarioFamily::kHospital;
    hosp_small.default_minutes = 30;
    hosp_small.knobs = hospital_knobs();
    reg.add(std::move(hosp_small), run_hospital_family);

    return reg;
}

}  // namespace

std::string_view to_string(ScenarioFamily f) noexcept {
    switch (f) {
        case ScenarioFamily::kPca: return "pca";
        case ScenarioFamily::kXray: return "xray";
        case ScenarioFamily::kHospital: return "hospital";
    }
    return "?";
}

const KnobInfo* ScenarioInfo::find_knob(std::string_view n) const {
    for (const auto& k : knobs) {
        if (k.name == n) return &k;
    }
    return nullptr;
}

void ScenarioRegistry::add(ScenarioInfo info, Runner runner) {
    if (find(info.name) != nullptr) {
        throw SpecError{"scenario registry: duplicate scenario '" +
                        info.name + "'"};
    }
    entries_.push_back(Entry{std::move(info), std::move(runner)});
}

std::vector<std::string> ScenarioRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.info.name);
    return out;
}

const ScenarioInfo* ScenarioRegistry::find(std::string_view name) const {
    for (const auto& e : entries_) {
        if (e.info.name == name) return &e.info;
    }
    return nullptr;
}

const ScenarioInfo& ScenarioRegistry::info(std::string_view name) const {
    if (const ScenarioInfo* i = find(name)) return *i;
    std::string msg = "spec: unknown scenario '" + std::string{name} +
                      "' (known:";
    for (const auto& e : entries_) msg += " '" + e.info.name + "'";
    throw SpecError{msg + ")"};
}

RunArtifacts ScenarioRegistry::run(const ScenarioSpec& spec,
                                   const RunOptions& opts) const {
    const ScenarioInfo& meta = info(spec.name);
    for (const auto& [key, value] : spec.overrides) {
        const KnobInfo* knob = meta.find_knob(key);
        if (knob == nullptr) {
            throw SpecError{"spec: scenario '" + spec.name +
                            "' has no knob '" + key + "'"};
        }
        check_choice(spec, *knob, value);
    }
    for (const auto& e : entries_) {
        if (e.info.name == spec.name) return e.runner(spec, opts);
    }
    throw SpecError{"scenario registry: lost entry '" + spec.name + "'"};
}

ScenarioSpec ScenarioRegistry::default_spec(std::string_view name) const {
    ScenarioSpec spec;
    spec.name = info(name).name;
    spec.minutes = info(name).default_minutes;
    return spec;
}

const ScenarioRegistry& registry() {
    static const ScenarioRegistry reg = build_registry();
    return reg;
}

core::PcaScenarioConfig make_pca_config(const ScenarioSpec& spec) {
    const ScenarioInfo& meta = checked_info(spec, ScenarioFamily::kPca);
    const SimDuration duration = SimDuration::minutes(
        static_cast<std::int64_t>(spec.minutes));

    core::PcaScenarioConfig cfg;
    if (spec.name == "pca") {
        cfg = canonical_pca(spec.seed, duration);
    } else if (spec.name == "pca-open") {
        cfg = open_loop_pca(spec.seed, duration);
    } else {
        cfg = smart_alarm_shift(spec.seed, duration);
    }
    for (const auto& [key, value] : spec.overrides) {
        const KnobInfo* knob = meta.find_knob(key);
        if (knob == nullptr) {
            throw SpecError{"spec: scenario '" + spec.name +
                            "' has no knob '" + key + "'"};
        }
        check_choice(spec, *knob, value);
        apply_pca_knob(cfg, spec, *knob, value);
    }
    return cfg;
}

hospital::HospitalConfig make_hospital_config(const ScenarioSpec& spec) {
    const ScenarioInfo& meta = checked_info(spec, ScenarioFamily::kHospital);
    const SimDuration duration =
        SimDuration::minutes(static_cast<std::int64_t>(spec.minutes));

    hospital::HospitalConfig cfg = spec.name == "hospital"
                                       ? canonical_hospital(spec.seed, duration)
                                       : small_hospital(spec.seed, duration);
    for (const auto& [key, value] : spec.overrides) {
        const KnobInfo* knob = meta.find_knob(key);
        if (knob == nullptr) {
            throw SpecError{"spec: scenario '" + spec.name +
                            "' has no knob '" + key + "'"};
        }
        check_choice(spec, *knob, value);
        apply_hospital_knob(cfg, spec, *knob, value);
    }
    // Knob values are individually valid but may be jointly inconsistent
    // (e.g. wards > patients); surface that as a spec error, not an
    // engine crash.
    try {
        cfg.validate();
    } catch (const hospital::HospitalConfigError& e) {
        throw SpecError{"spec: scenario '" + spec.name + "': " + e.what()};
    }
    return cfg;
}

core::XrayScenarioConfig make_xray_config(const ScenarioSpec& spec) {
    const ScenarioInfo& meta = checked_info(spec, ScenarioFamily::kXray);

    core::XrayScenarioConfig cfg = spec.name == "xray"
                                       ? canonical_xray(spec.seed, spec.minutes)
                                       : manual_xray(spec.seed, spec.minutes);
    for (const auto& [key, value] : spec.overrides) {
        const KnobInfo* knob = meta.find_knob(key);
        if (knob == nullptr) {
            throw SpecError{"spec: scenario '" + spec.name +
                            "' has no knob '" + key + "'"};
        }
        check_choice(spec, *knob, value);
        apply_xray_knob(cfg, spec, *knob, value);
    }
    return cfg;
}

}  // namespace mcps::scenario
