/// \file scenario.hpp
/// \brief Umbrella header for the scenario layer.
///
/// One include gives a consumer the whole runtime surface: ScenarioSpec
/// (spec.hpp), the canonical presets (presets.hpp), RunArtifacts
/// (artifacts.hpp) and the registry (registry.hpp).

#pragma once

#include "artifacts.hpp"
#include "presets.hpp"
#include "registry.hpp"
#include "spec.hpp"
