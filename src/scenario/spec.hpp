/// \file spec.hpp
/// \brief ScenarioSpec: the one-line reproducible scenario artifact.
///
/// A spec names a registered scenario plus everything needed to re-run
/// it exactly: master seed, duration, and a flat key=value override
/// table. Specs round-trip through two serializations:
///
///   text  : `pca seed=42 minutes=160 demand=proxy interlock=dual`
///   JSON  : `{"scenario":"pca","seed":42,"minutes":160,
///            "overrides":{"demand":"proxy","interlock":"dual"}}`
///
/// `parse_spec(s.to_text()) == s` and `parse_spec_json(s.to_json()) == s`
/// hold for every valid spec (enforced by the scenario test suite's
/// round-trip property test), so a spec line can be embedded verbatim in
/// fuzz repro files, ward campaign manifests, golden-trace headers and
/// bug reports alike and always reproduces the same run.
///
/// The spec layer is deliberately ignorant of what the keys mean: knob
/// names and values are validated by the ScenarioRegistry when the spec
/// is resolved against a registered scenario (registry.hpp).

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcps::scenario {

/// Thrown on malformed spec text/JSON or — from the registry — on an
/// unknown scenario name or knob. The message is user-facing.
class SpecError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// One reproducible scenario run, as data.
struct ScenarioSpec {
    /// Registered scenario name ([a-z0-9_-]+).
    std::string name;
    std::uint64_t seed = 42;
    std::uint64_t minutes = 30;
    /// Flat knob overrides in declaration order (order is preserved by
    /// the serializations and is significant: knobs apply in order).
    std::vector<std::pair<std::string, std::string>> overrides;

    /// Value of an override key, nullptr if absent.
    [[nodiscard]] const std::string* find(std::string_view key) const;
    /// Replace an existing key's value or append a new override.
    /// \throws SpecError on an invalid key or value token.
    void set(std::string_view key, std::string_view value);

    /// Canonical one-line text form (round-trips through parse_spec).
    [[nodiscard]] std::string to_text() const;
    /// Canonical JSON object (round-trips through parse_spec_json).
    [[nodiscard]] std::string to_json() const;

    friend bool operator==(const ScenarioSpec&,
                           const ScenarioSpec&) = default;
};

/// Parse the text form: `name [seed=N] [minutes=N] [key=value]...`.
/// Keys may appear at most once; unknown keys are kept as overrides for
/// the registry to validate. \throws SpecError with a message naming
/// the offending token.
[[nodiscard]] ScenarioSpec parse_spec(std::string_view text);

/// Parse the JSON form (an object with "scenario", optional "seed",
/// "minutes" and "overrides"). \throws SpecError on malformed input.
[[nodiscard]] ScenarioSpec parse_spec_json(std::string_view json);

}  // namespace mcps::scenario
