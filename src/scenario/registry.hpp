/// \file registry.hpp
/// \brief ScenarioRegistry: named, knob-documented scenario factories.
///
/// The registry is the single runtime surface for assembling and
/// running end-to-end scenarios. Each entry maps a name ("pca",
/// "pca-open", "smart-alarm", "xray", "xray-manual") to per-scenario
/// metadata — description, default duration, the knobs a spec may
/// override — and a factory that resolves a ScenarioSpec into a
/// concrete configuration and runs it to RunArtifacts. Benches, CLIs,
/// the ward engine, the testkit and the examples all start here instead
/// of re-declaring PcaScenarioConfig/XrayScenarioConfig defaults by
/// hand; the ICE1 lint (mcps_analyze) flags scenario assemblies that
/// bypass the layer.
///
/// Consumers that sweep a parameter not expressible as a flat knob
/// (sampled patient populations, mid-run fault hooks) use
/// make_pca_config()/make_xray_config() to resolve the spec into a
/// config, adjust the swept field, and run the core harness themselves.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "artifacts.hpp"
#include "presets.hpp"
#include "spec.hpp"

namespace mcps::scenario {

/// Which core harness a scenario resolves to.
enum class ScenarioFamily { kPca, kXray, kHospital };

[[nodiscard]] std::string_view to_string(ScenarioFamily f) noexcept;

/// One documented override knob. The kind + domain fields exist so
/// `mcps_run describe` can print the legal values and the round-trip
/// property test can sample valid random overrides.
struct KnobInfo {
    enum class Kind : std::uint8_t {
        kChoice,  ///< one of `choices`
        kNumber,  ///< decimal in [lo, hi]
        kCount,   ///< unsigned integer in [1, max_count]
    };

    std::string name;
    std::string description;
    Kind kind = Kind::kNumber;
    std::vector<std::string> choices;  ///< kChoice domain
    double lo = 0.0, hi = 1.0;         ///< kNumber domain
    std::uint64_t max_count = 1;       ///< kCount domain

    /// Claimed-safe envelope, consumed by the TA5 deadline-feasibility
    /// lint (mcps_analyze): the sub-domain over which the scenario's
    /// safety claim is made. The full domain stays settable — runs
    /// outside the envelope are hazard experiments, not claimed safe.
    /// Defaults claim the whole domain; knobs that stretch the
    /// interlock reaction path (network latency/jitter/loss, interlock
    /// mode, data-loss policy) narrow it in registry.cpp.
    double safe_lo = 0.0, safe_hi = 1.0;  ///< kNumber envelope
    /// kChoice envelope; empty = every choice is claimed safe.
    std::vector<std::string> safe_choices;
};

/// Per-scenario metadata (everything `mcps_run list/describe` shows).
struct ScenarioInfo {
    std::string name;
    std::string description;
    ScenarioFamily family = ScenarioFamily::kPca;
    std::uint64_t default_minutes = 30;
    std::vector<KnobInfo> knobs;

    [[nodiscard]] const KnobInfo* find_knob(std::string_view name) const;
};

class ScenarioRegistry {
public:
    using Runner =
        std::function<RunArtifacts(const ScenarioSpec&, const RunOptions&)>;

    /// Register one scenario. \throws SpecError on a duplicate name.
    void add(ScenarioInfo info, Runner runner);

    /// Registered names in registration order.
    [[nodiscard]] std::vector<std::string> names() const;
    /// Metadata lookup; nullptr when unknown.
    [[nodiscard]] const ScenarioInfo* find(std::string_view name) const;
    /// Metadata lookup. \throws SpecError listing the known names.
    [[nodiscard]] const ScenarioInfo& info(std::string_view name) const;

    /// Resolve and run one spec. Every override key must be a knob the
    /// scenario declares. \throws SpecError on an unknown scenario or
    /// knob, or a malformed knob value.
    [[nodiscard]] RunArtifacts run(const ScenarioSpec& spec,
                                   const RunOptions& opts = {}) const;

    /// A spec for \p name with the scenario's default duration (seed
    /// stays the ScenarioSpec default). \throws SpecError when unknown.
    [[nodiscard]] ScenarioSpec default_spec(std::string_view name) const;

private:
    struct Entry {
        ScenarioInfo info;
        Runner runner;
    };
    std::vector<Entry> entries_;
};

/// The process-wide registry holding the built-in scenarios. Built once
/// on first use; safe to call from multiple threads afterwards.
[[nodiscard]] const ScenarioRegistry& registry();

/// Resolve a PCA-family spec into its concrete configuration (preset +
/// knob overrides; `events` is left null). \throws SpecError when the
/// scenario is unknown, not PCA-family, or a knob is invalid.
[[nodiscard]] core::PcaScenarioConfig make_pca_config(
    const ScenarioSpec& spec);

/// Resolve an x-ray-family spec. \throws SpecError as above.
[[nodiscard]] core::XrayScenarioConfig make_xray_config(
    const ScenarioSpec& spec);

/// Resolve a hospital-family spec. \throws SpecError as above.
[[nodiscard]] hospital::HospitalConfig make_hospital_config(
    const ScenarioSpec& spec);

}  // namespace mcps::scenario
