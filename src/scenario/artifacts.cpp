#include "artifacts.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/table.hpp"

namespace mcps::scenario {

const double* RunArtifacts::find(std::string_view name) const {
    for (const auto& [k, v] : outcome) {
        if (k == name) return &v;
    }
    return nullptr;
}

double RunArtifacts::at(std::string_view name) const {
    if (const double* v = find(name)) return *v;
    throw SpecError{"run artifacts: no outcome metric '" +
                    std::string{name} + "'"};
}

std::string RunArtifacts::fingerprint_hex() const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(fingerprint));
    return buf;
}

void RunArtifacts::print(std::ostream& os) const {
    mcps::sim::Table t{{"metric", "value"}};
    for (const auto& [k, v] : outcome) {
        // Integral outcomes render without a fraction.
        if (v == std::floor(v) && std::abs(v) < 1e15) {
            t.row().cell(k).cell(static_cast<std::int64_t>(v));
        } else {
            t.row().cell(k).cell(v, 3);
        }
    }
    t.print(os, "scenario '" + spec.name + "' (fingerprint " +
                    fingerprint_hex() + ")");
}

void RunArtifacts::write_json(std::ostream& os) const {
    os << "{\n  \"spec\": " << spec.to_json() << ",\n  \"fingerprint\": \""
       << fingerprint_hex() << "\",\n  \"outcome\": {\n";
    for (std::size_t i = 0; i < outcome.size(); ++i) {
        os << "    \"" << outcome[i].first << "\": ";
        if (std::isfinite(outcome[i].second)) {
            os << outcome[i].second;
        } else {
            os << "null";
        }
        os << (i + 1 < outcome.size() ? ",\n" : "\n");
    }
    os << "  }\n}\n";
}

}  // namespace mcps::scenario
