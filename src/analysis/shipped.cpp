#include "shipped.hpp"

#include "analyzer.hpp"
#include "ta/ta.hpp"

namespace mcps::analysis {

void add_shipped_ta_models(Analyzer& a) {
    TaLintOptions pump_opts;
    pump_opts.expected_unreachable = {"Violation"};
    a.check_automaton("pump_lockout", ta::build_pump_lockout_model(),
                      pump_opts);

    TaLintOptions loop_opts;
    loop_opts.expected_unreachable = {"Overdue"};
    a.check_automaton("closed_loop", ta::build_closed_loop_model(),
                      loop_opts);

    TaLintOptions farm_opts;
    farm_opts.expected_unreachable = {"Violation"};
    a.check_automaton("pump_farm_2", ta::build_pump_farm(2), farm_opts);
}

void add_shipped_assemblies(Analyzer& a) {
    using devices::DeviceKind;

    // The PCA closed loop as examples/pca_closed_loop.cpp assembles it.
    AssemblySpec pca;
    pca.name = "pca_closed_loop";
    pca.devices = {
        {"pump1", DeviceKind::kInfusionPump,
         {"analgesia", "bolus", "remote-stop"},
         {"ack/pump1", "alarm/pump1", "status/pump1"}},
        {"oxi1", DeviceKind::kPulseOximeter,
         {"spo2", "pulse_rate"},
         {"vitals/bed1/spo2", "vitals/bed1/pulse_rate"}},
        {"cap1", DeviceKind::kCapnometer,
         {"etco2", "resp_rate"},
         {"vitals/bed1/etco2", "vitals/bed1/resp_rate"}},
    };
    pca.apps = {
        {"pca_interlock",
         {{DeviceKind::kInfusionPump, {"remote-stop"}, "pump"},
          {DeviceKind::kPulseOximeter, {"spo2"}, "oximeter"},
          {DeviceKind::kCapnometer, {"etco2"}, "capnometer"}},
         {"vitals/bed1/*", "ack/pump1"}},
    };
    a.check_assembly(pca);

    // The X-ray/ventilator sync assembly (examples/xray_vent_sync.cpp).
    AssemblySpec xv;
    xv.name = "xray_vent_sync";
    xv.devices = {
        {"vent1", DeviceKind::kVentilator,
         {"ventilation", "remote-pause"},
         {"ack/vent1", "alarm/vent1", "status/vent1"}},
        {"xray1", DeviceKind::kXRay,
         {"imaging"},
         {"ack/xray1", "image/xray1", "status/xray1"}},
    };
    xv.apps = {
        {"xray_vent_sync",
         {{DeviceKind::kVentilator, {"remote-pause"}, "ventilator"},
          {DeviceKind::kXRay, {"imaging"}, "x-ray"}},
         {"ack/vent1", "ack/xray1", "image/xray1"}},
    };
    a.check_assembly(xv);
}

}  // namespace mcps::analysis
