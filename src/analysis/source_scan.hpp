/// \file source_scan.hpp
/// \brief Rule SIM1: banned-construct scan over simulation source code.
///
/// The framework's reproducibility contract (DESIGN.md, src/sim/rng.hpp)
/// requires that deterministic simulation code never consults wall-clock
/// time or platform-varying RNGs. SIM1 scans source trees for the
/// banned constructs:
///
///   * raw C RNG: rand(), srand()
///   * wall-clock time: std::chrono::{system,steady,high_resolution}_clock,
///     time(nullptr)/time(NULL), gettimeofday, clock_gettime
///   * platform-varying / unseeded RNG: std::random_device, std::mt19937
///
/// Comments and string literals are stripped before matching, so
/// documentation may mention the constructs freely. Legitimate uses
/// (e.g. wall-clock *measurement* of the analyzer itself) are
/// annotated inline:
///
///   // mcps-analyze: allow(SIM1): wall-clock perf metric only
///
/// on the offending line or the line above suppresses the finding;
/// `mcps-analyze: allow-file(SIM1)` anywhere in a file suppresses the
/// whole file. Suppressed findings are counted, not silently dropped.

#pragma once

#include <filesystem>

#include "scan_util.hpp"

namespace mcps::analysis {

/// Scan one file. Non-source files (by extension) are ignored.
[[nodiscard]] ScanResult scan_source_file(const std::filesystem::path& file);

/// Recursively scan a tree (*.cpp *.hpp *.h *.cc *.cxx); directories
/// named "build*" and hidden directories are skipped.
[[nodiscard]] ScanResult scan_source_tree(const std::filesystem::path& root);

}  // namespace mcps::analysis
