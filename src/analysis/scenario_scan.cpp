#include "scenario_scan.hpp"

#include <array>
#include <fstream>
#include <string>

namespace mcps::analysis {

namespace {

// The raw config types only the sanctioned layers may name. Stored as
// string literals, so the scan of this very file cannot match them.
constexpr std::array<std::string_view, 3> kConfigTypes{
    "PcaScenarioConfig",
    "XrayScenarioConfig",
    "HospitalConfig",
};

constexpr std::array<std::string_view, 5> kSanctioned{
    "src/scenario/",
    "src/core/",
    "src/hospital/",
    "src/testkit/",
    "tests/",
};

bool has_allow_marker(const std::string& raw_line) {
    return raw_line.find("mcps-analyze: allow(ICE1") != std::string::npos;
}

bool has_allow_file_marker(const std::string& raw_line) {
    return raw_line.find("mcps-analyze: allow-file(ICE1") != std::string::npos;
}

}  // namespace

bool is_scenario_sanctioned(const std::filesystem::path& file) {
    const std::string p = file.generic_string();
    for (std::string_view dir : kSanctioned) {
        if (p.find(dir) != std::string::npos) return true;
    }
    return false;
}

ScanResult scan_scenario_file(const std::filesystem::path& file) {
    ScanResult result;
    if (!is_source_file(file) || is_scenario_sanctioned(file)) return result;
    std::ifstream in{file};
    if (!in) return result;
    result.files_scanned = 1;

    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) {
        lines.push_back(std::move(line));
    }

    bool file_allowed = false;
    for (const std::string& l : lines) {
        if (has_allow_file_marker(l)) {
            file_allowed = true;
            break;
        }
    }

    bool in_block = false;
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        const std::string stripped = strip_line(lines[ln], in_block);
        for (std::string_view type : kConfigTypes) {
            std::size_t pos = 0;
            while ((pos = stripped.find(type, pos)) != std::string::npos) {
                const bool start_ok =
                    pos == 0 || !is_ident_char(stripped[pos - 1]);
                const std::size_t after = pos + type.size();
                const bool end_ok = after >= stripped.size() ||
                                    !is_ident_char(stripped[after]);
                pos = after;
                if (!start_ok || !end_ok) continue;
                const bool allowed =
                    file_allowed || has_allow_marker(lines[ln]) ||
                    (ln > 0 && has_allow_marker(lines[ln - 1]));
                if (allowed) {
                    ++result.suppressed;
                    continue;
                }
                result.findings.push_back(
                    {RuleId::kICE1, FindingSeverity::kError,
                     std::string{type}, file.generic_string(), ln + 1,
                     "direct " + std::string{type} +
                         " assembly bypasses the scenario registry; "
                         "resolve a ScenarioSpec via scenario::registry() "
                         "or make_pca_config()/make_xray_config()"});
            }
        }
    }
    return result;
}

ScanResult scan_scenario_tree(const std::filesystem::path& root) {
    return scan_tree(root, [](const std::filesystem::path& p) {
        return scan_scenario_file(p);
    });
}

}  // namespace mcps::analysis
