/// \file ta_lint.hpp
/// \brief Model-level lint rules TA1–TA4 over timed automata.
///
/// These rules re-use the DBM zone machinery of src/ta to check a model
/// *statically* — no simulation tick is executed. One zone-graph
/// exploration (same algorithm as ta::check_reachability, but recording
/// per-location zones and per-edge firing) feeds TA1/TA2/TA3; TA4 is a
/// purely local satisfiability check.
///
/// Composition awareness: product locations are named "a|b|c" by
/// ta::parallel_compose. TA1 reports a *component* location as
/// unreachable only if it appears in no reachable product location at
/// its position — unreachable product *combinations* are expected and
/// not defects. Safety-property locations (e.g. "Violation", "Overdue")
/// are intentionally unreachable: list them in
/// TaLintOptions::expected_unreachable and TA1 will instead verify they
/// stay unreachable (reporting an error if one is reachable).

#pragma once

#include <string>
#include <vector>

#include "finding.hpp"
#include "ta/automaton.hpp"

namespace mcps::analysis {

struct TaLintOptions {
    /// Exploration cap (zone-graph states); exceeding it throws.
    std::size_t max_states = 500'000;
    /// Location-name substrings that are *supposed* to be unreachable
    /// (requirement-monitor bad states). Matching locations are exempt
    /// from TA1 unreachability findings; if one is reachable that is
    /// itself reported as an error. Edges into them are exempt from the
    /// dead-transition check.
    std::vector<std::string> expected_unreachable;
};

/// Run TA1–TA4 on one (closed) automaton. Sync edges that were left
/// unfused by composition are ignored by the exploration, exactly as
/// ta::check_reachability ignores them; channels whose send/receive
/// sides do not both exist anywhere in the model are reported (TA1
/// warning: such edges can never fire in any composition).
[[nodiscard]] std::vector<Finding> lint_automaton(
    const ta::TimedAutomaton& ta, const TaLintOptions& opts = {});

}  // namespace mcps::analysis
