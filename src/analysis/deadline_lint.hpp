/// \file deadline_lint.hpp
/// \brief TA5: static worst-case interlock-deadline feasibility over the
/// claimed-safe knob envelope of every registry preset.
///
/// For each ScenarioRegistry preset the pass resolves the default
/// configuration, widens every latency-relevant parameter to its
/// claimed-safe knob envelope (KnobInfo::safe_lo/safe_hi/safe_choices —
/// NOT the full settable domain: runs outside the envelope are hazard
/// experiments, not claimed safe), and computes an interval bound on the
/// end-to-end interlock reaction latency:
///
///   PCA family (hypoxemia onset -> pump stopped):
///     T_transit = latency_hi + jitter_sigmas * jitter_hi
///                 [+ reorder_window when reordering is enabled]
///     T_detect  = max(T_sense + persistence, staleness_limit*) +
///                 check_period          (* armed when loss_hi > 0 under
///                                          the fail-safe policy)
///     T_command = (n_fail - 1) * command_retry + T_transit
///                 where n_fail = ceil(ln(delivery_epsilon) / ln(loss_hi))
///                 bounds consecutive command losses to probability
///                 <= delivery_epsilon (Gaussian jitter is unbounded, so
///                 T_transit is likewise a jitter_sigmas-quantile bound,
///                 not an absolute one — both quantiles are reported).
///     bound     = T_transit + T_detect + T_command + T_transit
///                 (sensor leg, detection, command leg, ack return —
///                 the bound ends when the pump's ack lands back at the
///                 supervisor, so the interlock's measured stop latency
///                 is directly comparable)
///     deadline  = testkit InvariantTolerances::interlock_deadline_s
///
///   The bound is declared *unbounded* (an automatic TA5 error) when the
///   envelope admits message loss with no fail-safe backstop: a
///   fail-operational policy inside the safe envelope with loss_hi > 0,
///   loss_hi >= 1, or interlock "off" claimed safe.
///
///   X-ray family (imposed apnea): the ventilator's own watchdog resumes
///   after max_pause regardless of network state, so
///     bound    = max_pause + pause_slack_s   (network-independent)
///     deadline = DeadlineOptions::xray_apnea_deadline_s
///
///   Hospital family (ward-scale desaturation -> pump stopped): the
///   pump-local interlock reads the bedside monitor's last published
///   reading and acts on the next engine tick, so
///     bound_local = monitor_period + tick      (bus-independent)
///   When the envelope claims interlock=central safe the reaction path
///   detours through the ward bus and the finite nurse pool:
///     rho   = patients_per_ward * alarm_rate/3600 * service / nurses
///     bound = unbounded when rho >= 1 ("nurse-pool exhaustion": the
///             alarm queue grows without limit, so no wait bound exists)
///     else    monitor_period + bus_queue_limit/bus_capacity +
///             ceil(patients_per_ward/nurses) * service + tick
///             (worst-case alarm burst: every patient in the ward alarms
///             on the same tick and drains FIFO through the pool)
///   interlock=off claimed safe is automatically unbounded (nurses can
///   observe but hold no actuation authority).
///     deadline = the preset's interlock_deadline_s narrowed to the
///                "deadline-s" knob's safe_lo
///
/// Presets whose default config leaves the interlock disengaged
/// (pca-open, smart-alarm) are checked over the *engaged* envelope
/// (InterlockConfig defaults) and flagged engaged_default = false in the
/// slack table — their claim covers the envelope, not the hazardous
/// default.
///
/// cross_check_deadlines() closes the loop: it runs the canonical pca
/// and xray presets and fails if an observed latency exceeds the static
/// bound (a bound that simulation can beat is wrong). The pca
/// observation is the interlock's own stop latency (trigger-condition
/// onset at the supervisor to pump ack) — NOT detection_latency_s,
/// which starts at ground-truth hypoxia onset and contains
/// physiological decline plus sensor-averaging lag outside any comms
/// bound.

#pragma once

#include <string>
#include <vector>

#include "finding.hpp"

namespace mcps::analysis {

/// Closed interval over doubles (interval arithmetic over knob ranges).
struct Interval {
    double lo = 0.0, hi = 0.0;

    [[nodiscard]] static Interval point(double v) noexcept { return {v, v}; }
    [[nodiscard]] Interval operator+(const Interval& o) const noexcept {
        return {lo + o.lo, hi + o.hi};
    }
    [[nodiscard]] Interval scaled(double k) const noexcept {
        return k >= 0 ? Interval{lo * k, hi * k} : Interval{hi * k, lo * k};
    }
    /// Smallest interval containing both (envelope union).
    [[nodiscard]] Interval hull(const Interval& o) const noexcept {
        return {lo < o.lo ? lo : o.lo, hi > o.hi ? hi : o.hi};
    }
};

struct DeadlineOptions {
    /// Gaussian jitter quantile used for the transit bound.
    double jitter_sigmas = 4.0;
    /// Residual probability budget for consecutive command losses.
    double delivery_epsilon = 1e-9;
    /// Deadline for the x-ray family's imposed-apnea bound. The testkit
    /// invariant only bounds apnea by max_pause + slack; this documents
    /// the clinical ceiling the bound is checked against.
    double xray_apnea_deadline_s = 60.0;
};

/// The PCA interlock reaction path reduced to the latency-relevant
/// timing parameters, with network knobs widened to their claimed-safe
/// envelope. Tests construct weakened models directly.
struct PcaTimingModel {
    double sense_period_s = 2.0;  ///< slowest sensor gating the trigger
    double persistence_s = 10.0;
    double check_period_s = 1.0;
    double staleness_limit_s = 12.0;
    double command_retry_s = 2.0;
    bool fail_safe = true;  ///< worst policy inside the safe envelope
    bool interlock_off_claimed_safe = false;
    Interval latency_s;  ///< network base latency envelope (seconds)
    Interval jitter_s;   ///< network jitter sd envelope (seconds)
    Interval loss;       ///< per-message loss-probability envelope
    double reorder_window_s = 0.0;  ///< 0 = reordering disabled
};

/// One preset's static bound, decomposed for the slack table.
struct DeadlineBound {
    bool bounded = false;
    Interval total_s;     ///< end-to-end bound over the envelope
    Interval transit_s;   ///< one-hop bound
    double detect_s = 0.0;    ///< hi detection leg (sense+persist+check)
    int command_tries = 1;    ///< n_fail for the command leg
    std::string why;          ///< explanation when !bounded
};

/// Static interval bound for one PCA timing model.
[[nodiscard]] DeadlineBound pca_deadline_bound(const PcaTimingModel& m,
                                               const DeadlineOptions& o = {});

/// The hospital interlock reaction path (ward-scale desaturation to
/// pump stop) reduced to its timing parameters, widened to the
/// claimed-safe knob envelope. Tests construct weakened models directly
/// (e.g. a central placement claimed safe over an exhausted nurse pool).
struct HospitalTimingModel {
    double tick_s = 1.0;                     ///< engine tick
    Interval monitor_period_s{2.0, 2.0};     ///< vitals publish cadence
    bool interlock_off_claimed_safe = false;
    /// True when interlock=central sits in the claimed-safe envelope:
    /// the reaction path then detours through the ward bus and the
    /// finite nurse pool instead of stopping at the pump.
    bool central_claimed_safe = false;
    double patients_per_ward = 100.0;
    double nurses = 4.0;                     ///< pool size per ward
    double nurse_service_s = 120.0;          ///< per-alarm service time
    /// Per-patient alarm arrival rate envelope (alarms/patient/hour);
    /// the hi drives the nurse-pool utilization check.
    Interval alarm_rate_per_patient_hour{4.0, 4.0};
    double bus_capacity_per_s = 64.0;        ///< ICE bus drain rate
    double bus_queue_limit = 1024.0;         ///< bounded-queue depth
};

/// Static interval bound for one hospital timing model.
[[nodiscard]] DeadlineBound hospital_deadline_bound(
    const HospitalTimingModel& m, const DeadlineOptions& o = {});

/// One row of the slack table.
struct PresetDeadline {
    std::string preset;
    std::string family;           ///< "pca" | "xray" | "hospital"
    bool engaged_default = true;  ///< interlock engaged in the default cfg
    double deadline_s = 0.0;
    DeadlineBound bound;
    double slack_s = 0.0;  ///< deadline - bound.total_s.hi (< 0 or
                           ///< unbounded => infeasible)
    bool feasible = false;
    std::string note;
};

/// TA5 result: the slack table plus the findings the Analyzer absorbs.
struct DeadlineReport {
    std::vector<PresetDeadline> rows;
    std::vector<Finding> findings;

    /// Markdown-ish slack table (docs + --deadline-table).
    [[nodiscard]] std::string to_text() const;
};

/// Run TA5 over every preset of the process-wide ScenarioRegistry.
[[nodiscard]] DeadlineReport lint_deadlines(const DeadlineOptions& opts = {});

/// Dynamic cross-check of the static bounds: run the canonical "pca"
/// and "xray" presets (default spec, default seed) and compare observed
/// interlock/apnea latencies against the static hi bounds. Emits a TA5
/// error finding when an observation beats a bound. Costs two full
/// scenario runs (~seconds).
struct DeadlineCrossCheck {
    double pca_observed_s = -1.0;  ///< interlock stop latency, last
                                   ///< episode (-1: no stop episode)
    double pca_bound_s = 0.0;
    double xray_observed_s = 0.0;  ///< max imposed apnea
    double xray_bound_s = 0.0;
    bool pass = false;
    std::vector<Finding> findings;
};

[[nodiscard]] DeadlineCrossCheck cross_check_deadlines(
    const DeadlineOptions& opts = {});

}  // namespace mcps::analysis
