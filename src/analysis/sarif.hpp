/// \file sarif.hpp
/// \brief SARIF 2.1.0 export for analysis reports, plus a dependency-free
/// structural validator for the CI smoke.
///
/// The writer emits one run with the full rule catalog as
/// tool.driver.rules and one result per finding (file-anchored findings
/// carry a physicalLocation). The validator is NOT a schema engine: it
/// parses the JSON with a small recursive-descent parser and checks the
/// structural subset CI relies on (version string, non-empty run, unique
/// rule ids, every result's ruleId resolvable, legal level, anchored
/// line numbers >= 1) so the gate needs no Python or third-party JSON
/// dependency.

#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "finding.hpp"

namespace mcps::analysis {

/// Write \p report as a SARIF 2.1.0 log with a single run.
void write_sarif(const AnalysisReport& report, std::ostream& out);

/// Structural SARIF check. Returns true when \p text parses as JSON and
/// satisfies the subset above; otherwise false with a one-line reason in
/// \p error.
[[nodiscard]] bool validate_sarif_minimal(std::string_view text,
                                          std::string& error);

}  // namespace mcps::analysis
