#include "sarif.hpp"

#include <cctype>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <vector>

namespace mcps::analysis {

// ---- writer ----------------------------------------------------------------

void write_sarif(const AnalysisReport& report, std::ostream& out) {
    out << "{\n"
        << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""
        << ",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n"
        << "      \"tool\": {\n        \"driver\": {\n"
        << "          \"name\": \"mcps_analyze\",\n"
        << "          \"informationUri\": "
           "\"https://example.invalid/mcps_analyze\",\n"
        << "          \"rules\": [\n";
    const std::vector<RuleId>& rules = all_rules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out << "            {\"id\": \"" << rule_name(rules[i]) << "\", "
            << "\"shortDescription\": {\"text\": \""
            << json_escape(rule_summary(rules[i])) << "\"}}"
            << (i + 1 < rules.size() ? "," : "") << "\n";
    }
    out << "          ]\n        }\n      },\n      \"results\": [\n";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const Finding& f = report.findings[i];
        out << "        {\"ruleId\": \"" << rule_name(f.rule) << "\", "
            << "\"level\": \""
            << (f.severity == FindingSeverity::kError ? "error" : "warning")
            << "\", \"message\": {\"text\": \""
            << json_escape(f.entity.empty() ? f.message
                                            : f.entity + ": " + f.message)
            << "\"}";
        if (!f.file.empty()) {
            out << ", \"locations\": [{\"physicalLocation\": "
                << "{\"artifactLocation\": {\"uri\": \"" << json_escape(f.file)
                << "\"}";
            if (f.line > 0) {
                out << ", \"region\": {\"startLine\": " << f.line << "}";
            }
            out << "}}]";
        }
        out << "}" << (i + 1 < report.findings.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }\n  ]\n}\n";
}

// ---- minimal JSON parser ---------------------------------------------------

namespace {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::shared_ptr<JsonArray> array;
    std::shared_ptr<JsonObject> object;

    [[nodiscard]] const JsonValue* get(const std::string& key) const {
        if (kind != Kind::kObject) return nullptr;
        const auto it = object->find(key);
        return it == object->end() ? nullptr : &it->second;
    }
};

class JsonParser {
public:
    explicit JsonParser(std::string_view text) : s_{text} {}

    bool parse(JsonValue& out, std::string& error) {
        if (!value(out, error)) return false;
        ws();
        if (i_ != s_.size()) {
            error = "trailing characters after the JSON document";
            return false;
        }
        return true;
    }

private:
    void ws() {
        while (i_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[i_]))) {
            ++i_;
        }
    }

    bool fail(std::string& error, const std::string& what) {
        error = what + " at offset " + std::to_string(i_);
        return false;
    }

    bool literal(std::string_view lit, std::string& error) {
        if (s_.substr(i_, lit.size()) != lit) {
            return fail(error, "bad literal");
        }
        i_ += lit.size();
        return true;
    }

    bool value(JsonValue& out, std::string& error) {
        ws();
        if (i_ >= s_.size()) return fail(error, "unexpected end of input");
        const char c = s_[i_];
        if (c == '{') return object(out, error);
        if (c == '[') return array(out, error);
        if (c == '"') {
            out.kind = JsonValue::Kind::kString;
            return string(out.string, error);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::kBool;
            out.boolean = true;
            return literal("true", error);
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::kBool;
            return literal("false", error);
        }
        if (c == 'n') return literal("null", error);
        return number(out, error);
    }

    bool number(JsonValue& out, std::string& error) {
        const std::size_t begin = i_;
        if (i_ < s_.size() && s_[i_] == '-') ++i_;
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                s_[i_] == '+' || s_[i_] == '-')) {
            ++i_;
        }
        if (i_ == begin) return fail(error, "expected a value");
        out.kind = JsonValue::Kind::kNumber;
        try {
            out.number = std::stod(std::string{s_.substr(begin, i_ - begin)});
        } catch (...) {
            return fail(error, "malformed number");
        }
        return true;
    }

    bool string(std::string& out, std::string& error) {
        if (s_[i_] != '"') return fail(error, "expected '\"'");
        ++i_;
        out.clear();
        while (i_ < s_.size()) {
            const char c = s_[i_++];
            if (c == '"') return true;
            if (c == '\\') {
                if (i_ >= s_.size()) break;
                const char e = s_[i_++];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u':
                        if (i_ + 4 > s_.size()) {
                            return fail(error, "truncated \\u escape");
                        }
                        out += '?';  // placeholder; codepoints irrelevant here
                        i_ += 4;
                        break;
                    default: return fail(error, "bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail(error, "unterminated string");
    }

    bool array(JsonValue& out, std::string& error) {
        out.kind = JsonValue::Kind::kArray;
        out.array = std::make_shared<JsonArray>();
        ++i_;  // '['
        ws();
        if (i_ < s_.size() && s_[i_] == ']') {
            ++i_;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!value(v, error)) return false;
            out.array->push_back(std::move(v));
            ws();
            if (i_ >= s_.size()) return fail(error, "unterminated array");
            if (s_[i_] == ',') {
                ++i_;
                continue;
            }
            if (s_[i_] == ']') {
                ++i_;
                return true;
            }
            return fail(error, "expected ',' or ']'");
        }
    }

    bool object(JsonValue& out, std::string& error) {
        out.kind = JsonValue::Kind::kObject;
        out.object = std::make_shared<JsonObject>();
        ++i_;  // '{'
        ws();
        if (i_ < s_.size() && s_[i_] == '}') {
            ++i_;
            return true;
        }
        while (true) {
            ws();
            std::string key;
            if (i_ >= s_.size() || s_[i_] != '"' || !string(key, error)) {
                return fail(error, "expected an object key");
            }
            ws();
            if (i_ >= s_.size() || s_[i_] != ':') {
                return fail(error, "expected ':'");
            }
            ++i_;
            JsonValue v;
            if (!value(v, error)) return false;
            out.object->emplace(std::move(key), std::move(v));
            ws();
            if (i_ >= s_.size()) return fail(error, "unterminated object");
            if (s_[i_] == ',') {
                ++i_;
                continue;
            }
            if (s_[i_] == '}') {
                ++i_;
                return true;
            }
            return fail(error, "expected ',' or '}'");
        }
    }

    std::string_view s_;
    std::size_t i_ = 0;
};

bool check(bool cond, std::string& error, const std::string& what) {
    if (!cond) error = what;
    return cond;
}

}  // namespace

// ---- validator -------------------------------------------------------------

bool validate_sarif_minimal(std::string_view text, std::string& error) {
    JsonValue root;
    if (!JsonParser{text}.parse(root, error)) return false;

    if (!check(root.kind == JsonValue::Kind::kObject, error,
               "root is not an object")) {
        return false;
    }
    const JsonValue* version = root.get("version");
    if (!check(version != nullptr &&
                   version->kind == JsonValue::Kind::kString &&
                   version->string == "2.1.0",
               error, "version is not the string \"2.1.0\"")) {
        return false;
    }
    const JsonValue* runs = root.get("runs");
    if (!check(runs != nullptr && runs->kind == JsonValue::Kind::kArray &&
                   !runs->array->empty(),
               error, "runs is not a non-empty array")) {
        return false;
    }

    for (const JsonValue& run : *runs->array) {
        const JsonValue* tool = run.get("tool");
        const JsonValue* driver =
            tool != nullptr ? tool->get("driver") : nullptr;
        const JsonValue* name =
            driver != nullptr ? driver->get("name") : nullptr;
        if (!check(name != nullptr && name->kind == JsonValue::Kind::kString &&
                       !name->string.empty(),
                   error, "run has no tool.driver.name")) {
            return false;
        }

        std::set<std::string> rule_ids;
        if (const JsonValue* rules = driver->get("rules")) {
            if (!check(rules->kind == JsonValue::Kind::kArray, error,
                       "tool.driver.rules is not an array")) {
                return false;
            }
            for (const JsonValue& rule : *rules->array) {
                const JsonValue* id = rule.get("id");
                if (!check(id != nullptr &&
                               id->kind == JsonValue::Kind::kString &&
                               !id->string.empty(),
                           error, "a rule has no string id")) {
                    return false;
                }
                if (!check(rule_ids.insert(id->string).second, error,
                           "duplicate rule id '" + id->string + "'")) {
                    return false;
                }
            }
        }

        const JsonValue* results = run.get("results");
        if (!check(results != nullptr &&
                       results->kind == JsonValue::Kind::kArray,
                   error, "run has no results array")) {
            return false;
        }
        for (const JsonValue& res : *results->array) {
            const JsonValue* rule_id = res.get("ruleId");
            if (!check(rule_id != nullptr &&
                           rule_id->kind == JsonValue::Kind::kString,
                       error, "a result has no string ruleId")) {
                return false;
            }
            if (!rule_ids.empty() &&
                !check(rule_ids.count(rule_id->string) != 0, error,
                       "result ruleId '" + rule_id->string +
                           "' is not in tool.driver.rules")) {
                return false;
            }
            if (const JsonValue* level = res.get("level")) {
                if (!check(level->kind == JsonValue::Kind::kString &&
                               (level->string == "none" ||
                                level->string == "note" ||
                                level->string == "warning" ||
                                level->string == "error"),
                           error, "illegal result level")) {
                    return false;
                }
            }
            const JsonValue* message = res.get("message");
            const JsonValue* mtext =
                message != nullptr ? message->get("text") : nullptr;
            if (!check(mtext != nullptr &&
                           mtext->kind == JsonValue::Kind::kString,
                       error, "a result has no message.text string")) {
                return false;
            }
            if (const JsonValue* locs = res.get("locations")) {
                if (!check(locs->kind == JsonValue::Kind::kArray, error,
                           "result locations is not an array")) {
                    return false;
                }
                for (const JsonValue& loc : *locs->array) {
                    const JsonValue* phys = loc.get("physicalLocation");
                    const JsonValue* region =
                        phys != nullptr ? phys->get("region") : nullptr;
                    const JsonValue* start =
                        region != nullptr ? region->get("startLine") : nullptr;
                    if (start != nullptr &&
                        !check(start->kind == JsonValue::Kind::kNumber &&
                                   start->number >= 1.0,
                               error, "region startLine < 1")) {
                        return false;
                    }
                }
            }
        }
    }
    error.clear();
    return true;
}

}  // namespace mcps::analysis
