/// \file conc_lint.hpp
/// \brief CONC1: lock-discipline lint over MCPS_GUARDED_BY /
/// MCPS_REQUIRES / MCPS_LOCK_ORDER annotations (src/sim/guarded.hpp).
///
/// The pass is a lexical, two-phase analysis built on the same
/// comment/string-stripping machinery as SIM1 (scan_util.hpp) — no
/// compiler plugin, so it runs on the GCC-only toolchain and on
/// never-compiled fixture files alike.
///
/// Phase 1 (collect, across every file of every root):
///   - `field MCPS_GUARDED_BY(mu)` member declarations, remembering
///     the declaring class (and its outermost enclosing class, so
///     nested-struct members are checked in the outer class's
///     methods too),
///   - `fn(...) MCPS_REQUIRES(mu)` member functions whose caller
///     holds the lock,
///   - `MCPS_LOCK_ORDER(outer, inner)` edges of the global declared
///     lock-order DAG.
///
/// Phase 2 (check, per file, with the full declaration set):
///   - every mention of a guarded field inside the declaring class's
///     method bodies must sit lexically inside a
///     lock_guard/unique_lock/scoped_lock scope whose mutex
///     expression ends in the declared guard, or inside a method
///     annotated MCPS_REQUIRES(guard); constructors and destructors
///     are exempt (no sharing before/after the object's lifetime),
///   - every lexically nested acquisition must match a declared
///     MCPS_LOCK_ORDER edge (last-`::`-component matching): the
///     reverse of a declared edge is an order violation, an
///     undeclared pair is flagged so the DAG stays the complete
///     audited record, and re-acquiring a held mutex key is flagged
///     as a self-deadlock,
///   - the declared edge set itself must be acyclic (cycles are
///     reported once, with the full path).
///
/// Known lexical limits (documented in DESIGN.md): mutex identity is
/// the trailing identifier of the lock argument (two same-named
/// members of different classes alias), locks held across a call into
/// another function are invisible (declare the edge manually, as
/// ResultCache::mu_ -> SharedMetrics::mu_ does), and defer_lock /
/// adopt_lock tags are treated as plain acquisitions.
///
/// Waivers follow the SIM1 convention:
///   // mcps-analyze: allow(CONC1): reason       (same or previous line)
///   // mcps-analyze: allow-file(CONC1): reason  (whole file)

#pragma once

#include <filesystem>
#include <vector>

#include "scan_util.hpp"

namespace mcps::analysis {

/// Two-pass CONC1 scan over all \p roots together (the lock-order DAG
/// and nested-class ownership are cross-file properties, so the roots
/// must be analyzed as one unit). Each root may be a directory (walked
/// with scan_tree's skip rules) or a single file. Missing roots are
/// skipped here; the Analyzer turns them into CFG1 findings.
[[nodiscard]] ScanResult scan_concurrency(
    const std::vector<std::filesystem::path>& roots);

}  // namespace mcps::analysis
