#include "deadline_lint.hpp"

// mcps-analyze: allow-file(ICE1): TA5 resolves presets through
// make_pca_config/make_xray_config — the registry's sanctioned escape
// hatch — to read the timing parameters it bounds, and the cross-check
// runs the core harness directly to reach InterlockStats.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/pca_interlock.hpp"
#include "core/pca_scenario.hpp"
#include "core/xray_scenario.hpp"
#include "hospital/hospital_config.hpp"
#include "scenario/registry.hpp"
#include "testkit/invariants.hpp"

namespace mcps::analysis {

namespace {

double secs(mcps::sim::SimDuration d) { return d.to_seconds(); }

Finding ta5_error(std::string entity, std::string message) {
    Finding f;
    f.rule = RuleId::kTA5;
    f.severity = FindingSeverity::kError;
    f.entity = std::move(entity);
    f.message = std::move(message);
    return f;
}

/// Envelope of a number knob in seconds, hulled with the preset's own
/// resolved value (the default config must itself sit in the checked
/// envelope even if it strays outside the declared safe range).
Interval knob_envelope_s(const scenario::ScenarioInfo& info,
                         const char* knob, double cfg_value_s, double scale) {
    Interval env = Interval::point(cfg_value_s);
    if (const scenario::KnobInfo* k = info.find_knob(knob)) {
        env = env.hull({k->safe_lo * scale, k->safe_hi * scale});
    }
    return env;
}

bool choice_claimed_safe(const scenario::ScenarioInfo& info, const char* knob,
                         const char* value) {
    const scenario::KnobInfo* k = info.find_knob(knob);
    if (k == nullptr) return false;
    if (k->safe_choices.empty()) {
        return std::find(k->choices.begin(), k->choices.end(), value) !=
               k->choices.end();
    }
    return std::find(k->safe_choices.begin(), k->safe_choices.end(), value) !=
           k->safe_choices.end();
}

PcaTimingModel pca_model(const scenario::ScenarioInfo& info,
                         const core::PcaScenarioConfig& cfg) {
    // Disengaged presets are checked over the engaged envelope: the
    // safety claim is about what the interlock guarantees when on.
    const core::InterlockConfig il =
        cfg.interlock ? *cfg.interlock : core::InterlockConfig{};

    PcaTimingModel m;
    // Worst sensor period over the interlock modes the envelope claims
    // safe: dual gating waits on the slower capnometer.
    m.sense_period_s = secs(cfg.oximeter.sample_period);
    const bool dual_claimed =
        choice_claimed_safe(info, "interlock", "dual") ||
        (cfg.interlock && il.mode == core::InterlockMode::kDualSensor);
    if (dual_claimed) {
        m.sense_period_s =
            std::max(m.sense_period_s, secs(cfg.capnometer.sample_period));
    }
    m.persistence_s = secs(il.persistence);
    m.check_period_s = secs(il.check_period);
    m.staleness_limit_s = secs(il.staleness_limit);
    m.command_retry_s = secs(il.command_retry);
    // Worst policy inside the envelope: fail-operational (if claimed
    // safe) has no staleness backstop.
    m.fail_safe = !choice_claimed_safe(info, "policy", "fail-operational") &&
                  il.data_loss == core::DataLossPolicy::kFailSafe;
    m.interlock_off_claimed_safe = choice_claimed_safe(info, "interlock", "off");
    m.latency_s = knob_envelope_s(info, "latency-ms",
                                  secs(cfg.channel.base_latency), 1e-3);
    m.jitter_s =
        knob_envelope_s(info, "jitter-ms", secs(cfg.channel.jitter_sd), 1e-3);
    m.loss = knob_envelope_s(info, "loss", cfg.channel.loss_probability, 1.0);
    m.reorder_window_s = cfg.channel.reorder_probability > 0.0
                             ? secs(cfg.channel.reorder_window)
                             : 0.0;
    return m;
}

HospitalTimingModel hospital_model(const scenario::ScenarioInfo& info,
                                   const hospital::HospitalConfig& cfg) {
    HospitalTimingModel m;
    m.tick_s = cfg.tick_s;
    m.monitor_period_s =
        knob_envelope_s(info, "monitor-period-s", cfg.monitor_period_s, 1.0);
    m.interlock_off_claimed_safe = choice_claimed_safe(info, "interlock", "off");
    m.central_claimed_safe = choice_claimed_safe(info, "interlock", "central");
    m.patients_per_ward = std::ceil(static_cast<double>(cfg.patients) /
                                    static_cast<double>(cfg.wards));
    m.nurses = static_cast<double>(cfg.nurses_per_ward);
    m.nurse_service_s = cfg.nurse_service_s;
    // The demand knob is the alarm driver: every analgesia demand can
    // depress SpO2 past the threshold, so its envelope bounds the
    // per-patient alarm arrival rate.
    m.alarm_rate_per_patient_hour =
        knob_envelope_s(info, "demand-per-hour", cfg.demand_per_hour, 1.0);
    m.bus_capacity_per_s =
        static_cast<double>(cfg.bus_capacity_per_tick) / cfg.tick_s;
    m.bus_queue_limit = static_cast<double>(cfg.bus_queue_limit);
    return m;
}

std::string fmt(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

}  // namespace

DeadlineBound pca_deadline_bound(const PcaTimingModel& m,
                                 const DeadlineOptions& o) {
    DeadlineBound b;
    if (m.interlock_off_claimed_safe) {
        b.why = "the claimed-safe envelope admits interlock=off: no "
                "reaction-latency bound exists without an interlock";
        return b;
    }
    if (m.loss.hi >= 1.0) {
        b.why = "the claimed-safe envelope admits loss probability " +
                fmt(m.loss.hi) + " >= 1: messages need never be delivered";
        return b;
    }
    if (!m.fail_safe && m.loss.hi > 0.0) {
        b.why = "the claimed-safe envelope admits a fail-operational "
                "policy with loss probability up to " + fmt(m.loss.hi) +
                ": adversarial loss hides the trigger condition forever "
                "(no staleness backstop)";
        return b;
    }

    b.bounded = true;
    b.transit_s = m.latency_s + m.jitter_s.scaled(o.jitter_sigmas) +
                  Interval::point(m.reorder_window_s);

    // Detection leg: the trigger condition must survive the persistence
    // filter on top of worst-phase sampling — unless sensor silence
    // (possible whenever the envelope admits loss) trips the fail-safe
    // staleness backstop first; the supervisor then notices on its next
    // evaluation tick.
    const double sample_path = m.sense_period_s + m.persistence_s;
    const double silence_path =
        (m.fail_safe && m.loss.hi > 0.0) ? m.staleness_limit_s : 0.0;
    b.detect_s = std::max(sample_path, silence_path) + m.check_period_s;

    // Command leg: retries until the residual probability of every
    // command being lost drops below delivery_epsilon.
    b.command_tries = 1;
    if (m.loss.hi > 0.0) {
        b.command_tries = static_cast<int>(
            std::ceil(std::log(o.delivery_epsilon) / std::log(m.loss.hi)));
        if (b.command_tries < 1) b.command_tries = 1;
    }
    const Interval command =
        b.transit_s +
        Interval{0.0, (b.command_tries - 1) * m.command_retry_s};

    // Sensor leg + detection + command leg + ack return leg: the bound
    // covers through the pump's ack landing back at the supervisor, so
    // the interlock's own measured stop latency must sit under it.
    b.total_s =
        b.transit_s + Interval::point(b.detect_s) + command + b.transit_s;
    return b;
}

DeadlineBound hospital_deadline_bound(const HospitalTimingModel& m,
                                      const DeadlineOptions&) {
    DeadlineBound b;
    if (m.interlock_off_claimed_safe) {
        b.why = "the claimed-safe envelope admits interlock=off: nurses "
                "observe alarms but hold no actuation authority, so no "
                "reaction-latency bound exists";
        return b;
    }

    // Pump-local leg: the interlock evaluates the monitor's last
    // published reading every engine tick, so staleness is bounded by
    // the publish cadence plus one tick to act. Bus-independent.
    const Interval local =
        m.monitor_period_s + Interval::point(m.tick_s);

    b.bounded = true;
    b.detect_s = m.monitor_period_s.hi + m.tick_s;
    b.total_s = local;

    if (m.central_claimed_safe) {
        // Central leg: the alert crosses the ward bus and waits for a
        // nurse. Stability first — if expected alarm work exceeds the
        // pool's capacity the queue grows without limit and no wait
        // bound exists.
        const double rho = m.patients_per_ward *
                           (m.alarm_rate_per_patient_hour.hi / 3600.0) *
                           m.nurse_service_s / m.nurses;
        if (rho >= 1.0) {
            b.bounded = false;
            b.why = "nurse-pool exhaustion: claimed-safe alarm load "
                    "utilization " + fmt(rho) +
                    " >= 1 per ward (" + fmt(m.patients_per_ward) +
                    " patients x " + fmt(m.alarm_rate_per_patient_hour.hi) +
                    "/h x " + fmt(m.nurse_service_s) + "s / " +
                    fmt(m.nurses) + " nurses): the alarm queue grows "
                    "without limit, so no wait bound exists";
            return b;
        }
        // Worst-case burst inside a stable pool: every patient in the
        // ward alarms on the same tick; the bounded bus queue drains at
        // capacity and the pool serves FIFO in full rounds.
        const double bus_wait_s = m.bus_queue_limit / m.bus_capacity_per_s;
        const double rounds = std::ceil(m.patients_per_ward / m.nurses);
        const double central_hi = m.monitor_period_s.hi + bus_wait_s +
                                  rounds * m.nurse_service_s + m.tick_s;
        b.transit_s = Interval{0.0, bus_wait_s};
        b.total_s = local.hull(
            {m.monitor_period_s.lo + m.tick_s, central_hi});
    }
    return b;
}

std::string DeadlineReport::to_text() const {
    std::string out;
    out += "preset       family  deadline_s  bound_hi_s  slack_s  feasible"
           "  notes\n";
    for (const PresetDeadline& r : rows) {
        char line[160];
        std::snprintf(line, sizeof line,
                      "%-12s %-7s %10.1f  %10s %8s  %-8s  %s\n",
                      r.preset.c_str(), r.family.c_str(), r.deadline_s,
                      r.bound.bounded ? fmt(r.bound.total_s.hi).c_str()
                                      : "unbounded",
                      r.bound.bounded ? fmt(r.slack_s).c_str() : "-inf",
                      r.feasible ? "yes" : "NO", r.note.c_str());
        out += line;
    }
    return out;
}

DeadlineReport lint_deadlines(const DeadlineOptions& opts) {
    const testkit::InvariantTolerances tol{};
    const scenario::ScenarioRegistry& reg = scenario::registry();

    DeadlineReport report;
    for (const std::string& name : reg.names()) {
        const scenario::ScenarioInfo& info = reg.info(name);
        PresetDeadline row;
        row.preset = name;
        row.family = std::string{scenario::to_string(info.family)};

        if (info.family == scenario::ScenarioFamily::kPca) {
            const core::PcaScenarioConfig cfg =
                scenario::make_pca_config(reg.default_spec(name));
            row.engaged_default = cfg.interlock.has_value();
            row.deadline_s = tol.interlock_deadline_s;
            row.bound = pca_deadline_bound(pca_model(info, cfg), opts);
            if (!row.engaged_default) {
                row.note = "interlock off by default; bound is for the "
                           "engaged envelope";
            }
        } else if (info.family == scenario::ScenarioFamily::kHospital) {
            const hospital::HospitalConfig cfg =
                scenario::make_hospital_config(reg.default_spec(name));
            row.engaged_default =
                cfg.interlock != hospital::InterlockPlacement::kOff;
            // The claim covers the tightest deadline inside the safe
            // envelope, not just the preset's default.
            row.deadline_s = cfg.interlock_deadline_s;
            if (const scenario::KnobInfo* k = info.find_knob("deadline-s")) {
                row.deadline_s = std::min(row.deadline_s, k->safe_lo);
            }
            row.bound = hospital_deadline_bound(hospital_model(info, cfg), opts);
            row.note = "pump-local interlock bound (monitor staleness + tick)";
        } else {
            const core::XrayScenarioConfig cfg =
                scenario::make_xray_config(reg.default_spec(name));
            // The ventilator's local watchdog resumes after max_pause
            // regardless of network state: the apnea bound does not
            // depend on the channel envelope.
            row.deadline_s = opts.xray_apnea_deadline_s;
            row.bound.bounded = true;
            row.bound.total_s = Interval::point(
                secs(cfg.ventilator.max_pause) + tol.pause_slack_s);
            row.note = "local watchdog bound (network-independent)";
        }

        row.slack_s = row.deadline_s - row.bound.total_s.hi;
        row.feasible = row.bound.bounded && row.slack_s >= 0.0;
        if (!row.feasible) {
            std::string msg =
                !row.bound.bounded
                    ? "interlock reaction latency is unbounded over the "
                      "claimed-safe envelope: " + row.bound.why
                    : "worst-case interlock latency " +
                      fmt(row.bound.total_s.hi) + "s exceeds the " +
                      fmt(row.deadline_s) + "s deadline by " +
                      fmt(-row.slack_s) + "s somewhere in the claimed-safe "
                      "envelope";
            report.findings.push_back(
                ta5_error("scenario/" + name, std::move(msg)));
        }
        report.rows.push_back(std::move(row));
    }
    return report;
}

DeadlineCrossCheck cross_check_deadlines(const DeadlineOptions& opts) {
    const DeadlineReport report = lint_deadlines(opts);
    const scenario::ScenarioRegistry& reg = scenario::registry();

    DeadlineCrossCheck cc;
    for (const PresetDeadline& r : report.rows) {
        if (r.preset == "pca") cc.pca_bound_s = r.bound.total_s.hi;
        if (r.preset == "xray") cc.xray_bound_s = r.bound.total_s.hi;
    }

    // The pca leg runs the core harness directly (the registry's
    // documented escape hatch) to reach InterlockStats: the interlock's
    // own stop latency — trigger-condition onset at the supervisor to
    // the pump's ack — is the quantity the static model bounds.
    // detection_latency_s would NOT be comparable: it starts at the
    // ground-truth hypoxia onset and so contains physiological decline
    // and sensor-averaging lag no comms bound covers.
    core::PcaScenarioConfig pca_cfg =
        scenario::make_pca_config(reg.default_spec("pca"));
    core::PcaScenario sc{pca_cfg};
    const core::PcaScenarioResult pca = sc.run();
    if (pca.interlock.last_stop_latency_ms) {
        cc.pca_observed_s = *pca.interlock.last_stop_latency_ms / 1000.0;
    }
    const auto outcome_value = [](const scenario::RunArtifacts& art,
                                  std::string_view key, double fallback) {
        for (const auto& [k, v] : art.outcome) {
            if (k == key) return v;
        }
        return fallback;
    };
    const scenario::RunArtifacts xray = reg.run(reg.default_spec("xray"));
    cc.xray_observed_s = outcome_value(xray, "max_apnea_s", 0.0);

    if (cc.pca_observed_s < 0.0) {
        cc.findings.push_back(ta5_error(
            "cross-check/pca",
            "the canonical pca run produced no interlock stop episode; "
            "the static bound cannot be cross-checked"));
    } else if (cc.pca_observed_s > cc.pca_bound_s) {
        cc.findings.push_back(ta5_error(
            "cross-check/pca",
            "observed interlock stop latency " + fmt(cc.pca_observed_s) +
                "s exceeds the static bound " + fmt(cc.pca_bound_s) +
                "s: the TA5 model is missing a latency term"));
    }
    if (cc.xray_observed_s > cc.xray_bound_s) {
        cc.findings.push_back(ta5_error(
            "cross-check/xray",
            "observed imposed apnea " + fmt(cc.xray_observed_s) +
                "s exceeds the static bound " + fmt(cc.xray_bound_s) +
                "s: the TA5 model is missing a latency term"));
    }
    cc.pass = cc.findings.empty();
    return cc;
}

}  // namespace mcps::analysis
