/// \file scan_util.hpp
/// \brief Shared lexical machinery for the source-scanning lint rules.
///
/// SIM1 (source_scan.hpp) and the ICE1 registry-bypass scan
/// (scenario_scan.hpp) both match identifiers in comment- and
/// string-stripped source text and both walk source trees the same way.
/// The helpers live here once so the two rules cannot drift on what
/// counts as a comment, an identifier boundary or a source file.

#pragma once

#include <cctype>
#include <filesystem>
#include <string>
#include <vector>

#include "finding.hpp"

namespace mcps::analysis {

/// Aggregated result of scanning one file or tree with any source rule.
struct ScanResult {
    std::vector<Finding> findings;
    std::size_t suppressed = 0;
    std::size_t files_scanned = 0;
};

[[nodiscard]] inline bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Strip // and /* */ comments plus "..." and '...' literals from one
/// line, carrying block-comment state across lines. Stripped spans are
/// replaced by spaces so columns stay stable.
[[nodiscard]] inline std::string strip_line(const std::string& line,
                                            bool& in_block_comment) {
    std::string out(line.size(), ' ');
    for (std::size_t i = 0; i < line.size();) {
        if (in_block_comment) {
            if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
                in_block_comment = false;
                i += 2;
            } else {
                ++i;
            }
            continue;
        }
        const char c = line[i];
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            in_block_comment = true;
            i += 2;
            continue;
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            ++i;
            while (i < line.size()) {
                if (line[i] == '\\') {
                    i += 2;
                    continue;
                }
                if (line[i] == quote) {
                    ++i;
                    break;
                }
                ++i;
            }
            continue;
        }
        out[i] = c;
        ++i;
    }
    return out;
}

[[nodiscard]] inline bool is_source_file(const std::filesystem::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
           ext == ".cxx";
}

/// Recursively apply a per-file scan to a tree, merging the results.
/// Directories named "build*" and hidden directories are skipped; \p root
/// may also be a single regular file.
template <typename FileScan>
[[nodiscard]] ScanResult scan_tree(const std::filesystem::path& root,
                                   FileScan&& scan_file) {
    ScanResult result;
    if (!std::filesystem::exists(root)) return result;
    if (std::filesystem::is_regular_file(root)) {
        return scan_file(root);
    }
    auto it = std::filesystem::recursive_directory_iterator{root};
    const auto end = std::filesystem::end(it);
    for (; it != end; ++it) {
        const std::filesystem::path& p = it->path();
        const std::string fname = p.filename().string();
        if (it->is_directory() &&
            (fname.rfind("build", 0) == 0 ||
             (fname.size() > 1 && fname[0] == '.'))) {
            it.disable_recursion_pending();
            continue;
        }
        if (!it->is_regular_file()) continue;
        ScanResult one = scan_file(p);
        result.files_scanned += one.files_scanned;
        result.suppressed += one.suppressed;
        for (auto& f : one.findings) result.findings.push_back(std::move(f));
    }
    return result;
}

}  // namespace mcps::analysis
