/// \file analysis.hpp
/// \brief Umbrella header for the mcps_analysis model-level safety
/// linter (rules TA1–TA5, ICE1, AS1, SIM1, CONC1, CFG1; see finding.hpp
/// for the catalog and tools/mcps_analyze for the CLI).

#pragma once

#include "analyzer.hpp"        // IWYU pragma: export
#include "assurance_lint.hpp"  // IWYU pragma: export
#include "conc_lint.hpp"       // IWYU pragma: export
#include "deadline_lint.hpp"   // IWYU pragma: export
#include "finding.hpp"         // IWYU pragma: export
#include "ice_lint.hpp"        // IWYU pragma: export
#include "sarif.hpp"           // IWYU pragma: export
#include "scenario_scan.hpp"   // IWYU pragma: export
#include "source_scan.hpp"     // IWYU pragma: export
#include "ta_lint.hpp"         // IWYU pragma: export
