#include "source_scan.hpp"

#include <array>
#include <fstream>
#include <string>

namespace mcps::analysis {

namespace {

struct BannedPattern {
    std::string_view needle;
    /// Needle must start at an identifier boundary (char before is not
    /// [A-Za-z0-9_]).
    bool identifier = true;
    std::string_view message;
};

// Matching happens on comment- and string-stripped text, so these
// literals cannot match themselves here or in documentation.
constexpr std::array<BannedPattern, 10> kBanned{{
    {"rand(", true,
     "raw rand() is banned in deterministic sim code; use sim::RngStream"},
    {"srand(", true,
     "srand() is banned in deterministic sim code; seeds flow through "
     "sim::RngStream"},
    {"system_clock", true,
     "wall-clock time source; deterministic sim code must use sim::SimTime"},
    {"steady_clock", true,
     "wall-clock time source; deterministic sim code must use sim::SimTime"},
    {"high_resolution_clock", true,
     "wall-clock time source; deterministic sim code must use sim::SimTime"},
    {"gettimeofday", true,
     "wall-clock time source; deterministic sim code must use sim::SimTime"},
    {"clock_gettime", true,
     "wall-clock time source; deterministic sim code must use sim::SimTime"},
    {"time(nullptr)", true,
     "wall-clock time source; deterministic sim code must use sim::SimTime"},
    {"random_device", true,
     "std::random_device is nondeterministic; derive seeds from the "
     "campaign master seed"},
    {"mt19937", true,
     "std::mt19937 seeding/distributions vary across standard libraries; "
     "use sim::RngStream"},
}};

bool has_allow_marker(const std::string& raw_line) {
    return raw_line.find("mcps-analyze: allow(SIM1") != std::string::npos;
}

bool has_allow_file_marker(const std::string& raw_line) {
    return raw_line.find("mcps-analyze: allow-file(SIM1") != std::string::npos;
}

}  // namespace

ScanResult scan_source_file(const std::filesystem::path& file) {
    ScanResult result;
    if (!is_source_file(file)) return result;
    std::ifstream in{file};
    if (!in) return result;
    result.files_scanned = 1;

    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) {
        lines.push_back(std::move(line));
    }

    bool file_allowed = false;
    for (const std::string& l : lines) {
        if (has_allow_file_marker(l)) {
            file_allowed = true;
            break;
        }
    }

    bool in_block = false;
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        const std::string stripped = strip_line(lines[ln], in_block);
        for (const BannedPattern& p : kBanned) {
            std::size_t pos = 0;
            while ((pos = stripped.find(p.needle, pos)) !=
                   std::string::npos) {
                const bool boundary_ok =
                    !p.identifier || pos == 0 ||
                    !is_ident_char(stripped[pos - 1]);
                pos += p.needle.size();
                if (!boundary_ok) continue;
                const bool allowed =
                    file_allowed || has_allow_marker(lines[ln]) ||
                    (ln > 0 && has_allow_marker(lines[ln - 1]));
                if (allowed) {
                    ++result.suppressed;
                    continue;
                }
                result.findings.push_back(
                    {RuleId::kSIM1, FindingSeverity::kError,
                     std::string{p.needle.substr(
                         0, p.needle.find('('))},
                     file.generic_string(), ln + 1,
                     std::string{p.message}});
            }
        }
    }
    return result;
}

ScanResult scan_source_tree(const std::filesystem::path& root) {
    return scan_tree(root, [](const std::filesystem::path& p) {
        return scan_source_file(p);
    });
}

}  // namespace mcps::analysis
