#include "ice_lint.hpp"

#include <algorithm>
#include <set>

#include "net/message.hpp"

namespace mcps::analysis {

namespace {

bool satisfies(const DeviceSpec& d, const ice::Requirement& r) {
    if (d.kind != r.kind) return false;
    return std::all_of(r.capabilities.begin(), r.capabilities.end(),
                       [&d](const std::string& cap) {
                           return std::find(d.capabilities.begin(),
                                            d.capabilities.end(),
                                            cap) != d.capabilities.end();
                       });
}

std::string describe(const ice::Requirement& r) {
    std::string out = "slot '" + r.label + "' (kind " +
                      std::string{devices::to_string(r.kind)};
    if (!r.capabilities.empty()) {
        out += ", caps";
        for (const auto& c : r.capabilities) out += " '" + c + "'";
    }
    out += ")";
    return out;
}

}  // namespace

AssemblySpec make_assembly_spec(std::string name,
                                const ice::DeviceRegistry& registry,
                                const std::vector<const ice::VmdApp*>& apps) {
    AssemblySpec spec;
    spec.name = std::move(name);
    for (const auto& d : registry.all()) {
        spec.devices.push_back({d.name, d.kind, d.capabilities, {}});
    }
    for (const ice::VmdApp* app : apps) {
        spec.apps.push_back({app->name(), app->requirements(), {}});
    }
    return spec;
}

std::vector<Finding> lint_assembly(const AssemblySpec& spec) {
    std::vector<Finding> out;

    // Duplicate device names would shadow each other in a registry.
    std::set<std::string> seen;
    for (const DeviceSpec& d : spec.devices) {
        if (!seen.insert(d.name).second) {
            out.push_back({RuleId::kICE1, FindingSeverity::kError,
                           spec.name + "/device '" + d.name + "'", "", 0,
                           "duplicate device name in assembly"});
        }
    }

    // Requirement slots: greedy distinct assignment, mirroring
    // ice::DeviceRegistry::resolve, across ALL apps of the assembly at
    // once (they share the bedside inventory).
    for (const AppSpec& app : spec.apps) {
        std::set<std::string> consumed;
        for (const ice::Requirement& req : app.requirements) {
            const DeviceSpec* chosen = nullptr;
            for (const DeviceSpec& d : spec.devices) {
                if (consumed.count(d.name) != 0) continue;
                if (satisfies(d, req)) {
                    chosen = &d;
                    break;
                }
            }
            if (chosen != nullptr) {
                consumed.insert(chosen->name);
                continue;
            }
            const bool any_match = std::any_of(
                spec.devices.begin(), spec.devices.end(),
                [&req](const DeviceSpec& d) { return satisfies(d, req); });
            out.push_back({RuleId::kICE1, FindingSeverity::kError,
                           spec.name + "/" + app.name, "", 0,
                           describe(req) +
                               (any_match
                                    ? " is only satisfiable by a device "
                                      "already consumed by an earlier slot"
                                    : " is satisfied by no registered "
                                      "device")});
        }

        // Data-plane inputs: every consumed pattern must intersect some
        // device's published pattern. Patterns are exact topics or
        // prefix/*; intersection is checked in both directions so
        // "vitals/bed1/*" (input) matches "vitals/bed1/spo2" (publish).
        for (const std::string& input : app.inputs) {
            bool produced = false;
            for (const DeviceSpec& d : spec.devices) {
                for (const std::string& pub : d.publishes) {
                    if (net::topic_matches(input, pub) ||
                        net::topic_matches(pub, input)) {
                        produced = true;
                        break;
                    }
                }
                if (produced) break;
            }
            if (!produced) {
                out.push_back({RuleId::kICE1, FindingSeverity::kError,
                               spec.name + "/" + app.name, "", 0,
                               "input topic '" + input +
                                   "' is produced by no device in the "
                                   "assembly"});
            }
        }
    }
    return out;
}

}  // namespace mcps::analysis
