/// \file assurance_lint.hpp
/// \brief Rule AS1: hazard-coverage analysis over the assurance layer.
///
/// Certification hinges on every identified hazard being *argued
/// against*: mitigated by an implemented mechanism (interlock, device
/// rule, supervisor policy) and/or addressed by a goal of the GSN
/// assurance case. AS1 cross-checks the hazard log against both and
/// produces the hazard-coverage matrix regulators ask for; a hazard
/// with neither an implemented mitigation nor a GSN goal mentioning it
/// is an uncovered risk and is reported.

#pragma once

#include <string>
#include <vector>

#include "assurance/gsn.hpp"
#include "assurance/hazard.hpp"
#include "finding.hpp"

namespace mcps::analysis {

/// One row of the hazard-coverage matrix.
struct HazardCoverageRow {
    std::string hazard_id;
    /// Mechanisms named by mitigations (Mitigation::implemented_by).
    std::vector<std::string> mechanisms;
    /// GSN node ids whose statement or artifact references the hazard
    /// (by id or by a significant fragment of its description).
    std::vector<std::string> gsn_nodes;
    [[nodiscard]] bool covered() const noexcept {
        return !mechanisms.empty() || !gsn_nodes.empty();
    }
};

struct HazardCoverage {
    std::vector<HazardCoverageRow> rows;
    std::vector<Finding> findings;

    /// Tab-separated matrix (id, mechanisms, GSN nodes, covered).
    [[nodiscard]] std::string to_text() const;
};

/// Run AS1. \p gsn may be null (coverage then rests on mitigations
/// alone). A mitigation counts only if implemented_by names a
/// mechanism; an empty implemented_by is itself reported (a mitigation
/// nobody implements is wishful thinking).
[[nodiscard]] HazardCoverage lint_hazard_coverage(
    const assurance::HazardLog& log,
    const assurance::AssuranceCase* gsn = nullptr);

}  // namespace mcps::analysis
