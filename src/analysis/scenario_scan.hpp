/// \file scenario_scan.hpp
/// \brief Rule ICE1 (registry-bypass form): direct scenario-config
/// assembly outside the scenario layer.
///
/// The scenario registry (src/scenario/registry.hpp) is the single
/// runtime surface for assembling end-to-end scenarios; benches, CLIs,
/// the ward engine and the examples resolve a ScenarioSpec through it
/// instead of hand-building `core::PcaScenarioConfig` /
/// `core::XrayScenarioConfig`. This scan enforces that contract
/// statically: any mention of the raw config types outside the
/// sanctioned layers —
///
///   src/scenario  (the registry, presets and knob mapping itself)
///   src/core      (the harnesses that define the types)
///   src/hospital  (defines/runs hospital::HospitalConfig)
///   src/testkit   (instrumented runners and invariants take configs)
///   tests/        (unit tests exercise the raw harnesses on purpose)
///
/// — is an ICE1 error: the assembly bypasses the registry, so its
/// defaults can silently drift from the registered presets. Consumers
/// that must adjust a swept field the spec cannot express start from
/// `scenario::make_pca_config()` / `make_xray_config()` and therefore
/// never name the config type.
///
/// Matching runs on comment- and string-stripped text (scan_util.hpp),
/// so documentation may mention the types freely. Escape hatch, same
/// grammar as SIM1:
///
///   // mcps-analyze: allow(ICE1): reason
///
/// on the offending line or the line above; `mcps-analyze:
/// allow-file(ICE1)` anywhere in the file suppresses the whole file.
/// Suppressed findings are counted, not silently dropped.

#pragma once

#include <filesystem>

#include "scan_util.hpp"

namespace mcps::analysis {

/// True when \p file belongs to a layer sanctioned to name the raw
/// scenario-config types (see the file comment for the list).
[[nodiscard]] bool is_scenario_sanctioned(const std::filesystem::path& file);

/// Scan one file. Non-source files and sanctioned files are ignored
/// (files_scanned stays 0 for both).
[[nodiscard]] ScanResult scan_scenario_file(const std::filesystem::path& file);

/// Recursively scan a tree with scan_scenario_file (same traversal as
/// the SIM1 tree scan: build*/hidden directories skipped).
[[nodiscard]] ScanResult scan_scenario_tree(const std::filesystem::path& root);

}  // namespace mcps::analysis
