/// \file shipped.hpp
/// \brief The shipped analysis targets, registered in one place.
///
/// The repo ships a fixed set of safety models: the TA requirement
/// monitors (pump lockout, closed loop, 2-pump farm) and the two ICE
/// assemblies (PCA closed loop, X-ray/ventilator sync). The analyze
/// CLI and the pipeline's analysis passes both check exactly this set;
/// keeping the builders here means a new shipped model is added once
/// and every analysis surface picks it up.

#pragma once

namespace mcps::analysis {

class Analyzer;

/// TA1–TA4 over the shipped timed-automata models. The requirement
/// monitors' bad states are *meant* to stay unreachable — the expected-
/// unreachable lists encode that so TA1 verifies instead of flagging.
void add_shipped_ta_models(Analyzer& a);

/// ICE1 over the shipped assemblies (capability tags match src/devices,
/// topic contracts match what the devices publish and the apps
/// subscribe to).
void add_shipped_assemblies(Analyzer& a);

}  // namespace mcps::analysis
