#include "ta_lint.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "ta/dbm.hpp"

namespace mcps::analysis {

namespace {

using ta::Dbm;
using ta::Edge;
using ta::Guard;
using ta::SyncKind;
using ta::TimedAutomaton;

bool apply_guard(Dbm& z, const Guard& g) {
    for (const auto& c : g) {
        if (!z.constrain(c.i, c.j, c.bound)) return false;
    }
    return true;
}

/// Split a product location name "a|b|c" into components.
std::vector<std::string> split_components(const std::string& name) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (true) {
        const std::size_t bar = name.find('|', pos);
        if (bar == std::string::npos) {
            out.push_back(name.substr(pos));
            return out;
        }
        out.push_back(name.substr(pos, bar - pos));
        pos = bar + 1;
    }
}

bool matches_any(const std::string& name,
                 const std::vector<std::string>& needles) {
    return std::any_of(needles.begin(), needles.end(),
                       [&name](const std::string& n) {
                           return name.find(n) != std::string::npos;
                       });
}

/// Result of the shared zone-graph exploration.
struct Exploration {
    /// Per location: stored (canonical, extrapolated) zones.
    std::vector<std::vector<Dbm>> zones;
    std::vector<bool> location_reached;
    /// Per index into `internal_edges`: did it ever fire?
    std::vector<bool> edge_fired;
    /// Indices into ta.edges() of the internal (explorable) edges.
    std::vector<std::size_t> internal_edges;
};

Exploration explore(const TimedAutomaton& ta, const TaLintOptions& opts) {
    const std::int32_t k = ta.max_constant();

    Exploration ex;
    ex.zones.resize(ta.num_locations());
    ex.location_reached.assign(ta.num_locations(), false);

    for (std::size_t i = 0; i < ta.edges().size(); ++i) {
        if (ta.edges()[i].sync == SyncKind::kInternal) {
            ex.internal_edges.push_back(i);
        }
    }
    ex.edge_fired.assign(ex.internal_edges.size(), false);

    // Out-edge adjacency over the internal edges (by lint-local index).
    std::vector<std::vector<std::size_t>> out(ta.num_locations());
    for (std::size_t li = 0; li < ex.internal_edges.size(); ++li) {
        out[ta.edges()[ex.internal_edges[li]].src].push_back(li);
    }

    struct Node {
        std::size_t loc;
        Dbm zone;
    };
    std::vector<Node> nodes;
    std::deque<std::size_t> waiting;

    auto try_add = [&](std::size_t loc, Dbm zone) {
        zone.extrapolate(k);
        if (zone.empty()) return;
        for (const Dbm& stored : ex.zones[loc]) {
            if (stored.includes(zone)) return;  // subsumed
        }
        if (nodes.size() >= opts.max_states) {
            throw std::runtime_error(
                "lint_automaton: exceeded max_states (" +
                std::to_string(opts.max_states) + ") on '" + ta.name() + "'");
        }
        ex.zones[loc].push_back(zone);
        ex.location_reached[loc] = true;
        nodes.push_back(Node{loc, std::move(zone)});
        waiting.push_back(nodes.size() - 1);
    };

    {
        Dbm z0 = Dbm::zero(ta.num_clocks());
        if (apply_guard(z0, ta.invariant(ta.initial()))) {
            z0.up();
            apply_guard(z0, ta.invariant(ta.initial()));
            try_add(ta.initial(), std::move(z0));
        }
    }

    while (!waiting.empty()) {
        const std::size_t cur = waiting.front();
        waiting.pop_front();
        const std::size_t loc = nodes[cur].loc;
        for (std::size_t li : out[loc]) {
            const Edge& e = ta.edges()[ex.internal_edges[li]];
            Dbm z = nodes[cur].zone;
            if (!apply_guard(z, e.guard)) continue;
            for (ta::ClockId r : e.resets) z.reset(r);
            if (!apply_guard(z, ta.invariant(e.dst))) continue;
            ex.edge_fired[li] = true;
            z.up();
            if (!apply_guard(z, ta.invariant(e.dst))) continue;
            try_add(e.dst, std::move(z));
        }
    }
    return ex;
}

std::string edge_desc(const TimedAutomaton& ta, const Edge& e) {
    return ta.location_name(e.src) + " -> " + ta.location_name(e.dst) +
           " [" + e.label + "]";
}

// ---------------------------------------------------------------- TA1 --

void check_ta1(const TimedAutomaton& ta, const Exploration& ex,
               const TaLintOptions& opts, std::vector<Finding>& out) {
    // Component-wise location reachability. All product names have the
    // same component count by construction; a hand-built automaton is
    // the 1-component case.
    std::map<std::pair<std::size_t, std::string>, bool> component_reached;
    for (std::size_t loc = 0; loc < ta.num_locations(); ++loc) {
        const auto comps = split_components(ta.location_name(loc));
        for (std::size_t ci = 0; ci < comps.size(); ++ci) {
            auto& r = component_reached[{ci, comps[ci]}];
            r = r || ex.location_reached[loc];
        }
    }
    for (const auto& [key, reached] : component_reached) {
        const std::string& cname = key.second;
        const bool expected_unreach =
            matches_any(cname, opts.expected_unreachable);
        if (!reached && !expected_unreach) {
            out.push_back({RuleId::kTA1, FindingSeverity::kError,
                           ta.name() + "/" + cname, "", 0,
                           "location is unreachable from the initial state"});
        } else if (reached && expected_unreach) {
            out.push_back(
                {RuleId::kTA1, FindingSeverity::kError,
                 ta.name() + "/" + cname, "", 0,
                 "location is expected to be unreachable (safety property) "
                 "but IS reachable"});
        }
    }

    // Dead transitions, grouped by label so the interleaved copies a
    // product creates do not each report (a label is dead only if *no*
    // copy ever fires). Edges into expected-unreachable locations are
    // exempt: they exist precisely to witness the violation.
    std::map<std::string, std::pair<bool, bool>> by_label;  // fired, exempt
    for (std::size_t li = 0; li < ex.internal_edges.size(); ++li) {
        const Edge& e = ta.edges()[ex.internal_edges[li]];
        auto& [fired, all_exempt] = by_label.try_emplace(
            e.label, false, true).first->second;
        fired = fired || ex.edge_fired[li];
        if (!matches_any(ta.location_name(e.dst), opts.expected_unreachable)) {
            all_exempt = false;
        }
    }
    for (const auto& [label, state] : by_label) {
        const auto& [fired, all_exempt] = state;
        if (fired || all_exempt) continue;
        out.push_back({RuleId::kTA1, FindingSeverity::kError,
                       ta.name() + "/[" + label + "]", "", 0,
                       "transition can never fire (dead edge)"});
    }

    // Channels whose send or receive side is missing entirely: such
    // edges cannot fire in this model nor in any later composition.
    std::map<std::string, std::pair<bool, bool>> chans;  // send, receive
    for (const Edge& e : ta.edges()) {
        if (e.sync == SyncKind::kInternal) continue;
        auto& [snd, rcv] = chans[e.channel];
        snd = snd || e.sync == SyncKind::kSend;
        rcv = rcv || e.sync == SyncKind::kReceive;
    }
    for (const auto& [chan, sides] : chans) {
        const auto& [snd, rcv] = sides;
        if (snd && rcv) continue;
        out.push_back({RuleId::kTA1, FindingSeverity::kWarning,
                       ta.name() + "/channel '" + chan + "'", "", 0,
                       std::string{"channel has "} +
                           (snd ? "senders but no receivers"
                                : "receivers but no senders") +
                           "; its edges can never fire"});
    }
}

// ---------------------------------------------------------------- TA2 --

/// Which component slots of the product-location name change along an
/// edge. Interleaved copies of a component edge change only their own
/// slot(s); two same-label edges touching DISJOINT slots are
/// interleavings of independent events, not a nondeterministic choice.
std::set<std::size_t> changed_slots(const TimedAutomaton& ta, const Edge& e) {
    const auto src = split_components(ta.location_name(e.src));
    const auto dst = split_components(ta.location_name(e.dst));
    std::set<std::size_t> out;
    if (src.size() != dst.size()) {
        for (std::size_t i = 0; i < src.size(); ++i) out.insert(i);
        return out;
    }
    for (std::size_t i = 0; i < src.size(); ++i) {
        if (src[i] != dst[i]) out.insert(i);
    }
    return out;
}

void check_ta2(const TimedAutomaton& ta, const Exploration& ex,
               std::vector<Finding>& out) {
    // Group internal out-edges per (source, label): same event.
    std::map<std::pair<std::size_t, std::string>, std::vector<const Edge*>>
        groups;
    for (std::size_t li : ex.internal_edges) {
        const Edge& e = ta.edges()[li];
        groups[{e.src, e.label}].push_back(&e);
    }
    for (const auto& [key, edges] : groups) {
        if (edges.size() < 2) continue;
        const std::size_t src = key.first;
        for (std::size_t i = 0; i < edges.size(); ++i) {
            for (std::size_t j = i + 1; j < edges.size(); ++j) {
                if (edges[i]->dst == edges[j]->dst &&
                    edges[i]->resets == edges[j]->resets &&
                    edges[i]->guard.size() == edges[j]->guard.size()) {
                    // Identical-effect duplicates are interleaving
                    // artifacts of composition, not nondeterminism.
                    bool same = true;
                    for (std::size_t c = 0; c < edges[i]->guard.size(); ++c) {
                        const auto& a = edges[i]->guard[c];
                        const auto& b = edges[j]->guard[c];
                        if (a.i != b.i || a.j != b.j ||
                            a.bound.raw() != b.bound.raw()) {
                            same = false;
                            break;
                        }
                    }
                    if (same) continue;
                }
                {
                    const auto slots_i = changed_slots(ta, *edges[i]);
                    const auto slots_j = changed_slots(ta, *edges[j]);
                    if (!slots_i.empty() && !slots_j.empty()) {
                        bool disjoint = true;
                        for (std::size_t s : slots_i) {
                            if (slots_j.count(s) != 0) {
                                disjoint = false;
                                break;
                            }
                        }
                        if (disjoint) continue;  // independent interleaving
                    }
                }
                // Overlap check against every reachable zone at src.
                for (const Dbm& z : ex.zones[src]) {
                    Dbm both = z;
                    if (!apply_guard(both, edges[i]->guard)) continue;
                    if (!apply_guard(both, edges[j]->guard)) continue;
                    out.push_back(
                        {RuleId::kTA2, FindingSeverity::kError,
                         ta.name() + "/" + ta.location_name(src), "", 0,
                         "nondeterministic choice on event '" + key.second +
                             "': guards of " + edge_desc(ta, *edges[i]) +
                             " and " + edge_desc(ta, *edges[j]) +
                             " overlap in a reachable zone"});
                    break;  // one report per pair
                }
            }
        }
    }
}

// ---------------------------------------------------------------- TA3 --

void check_ta3(const TimedAutomaton& ta, const Exploration& ex,
               std::vector<Finding>& out) {
    // Strongly-non-zeno syntactic criterion (Tripakis): every structural
    // cycle should contain a clock that is BOTH reset on the cycle and
    // bounded from below by >= 1 on some cycle edge. We check it per
    // SCC of the reachable internal-edge graph; an SCC violating it can
    // loop without letting time diverge (zeno run / livelock).
    const std::size_t n = ta.num_locations();

    // Edges considered: internal, source reachable, guard satisfiable
    // somewhere (fired is the cheapest sound proxy: unfired edges are
    // TA1's problem, counting them here would double-report).
    struct CycEdge {
        std::size_t src, dst;
        const Edge* e;
    };
    std::vector<CycEdge> edges;
    std::vector<std::vector<std::size_t>> adj(n);
    for (std::size_t li = 0; li < ex.internal_edges.size(); ++li) {
        if (!ex.edge_fired[li]) continue;
        const Edge& e = ta.edges()[ex.internal_edges[li]];
        adj[e.src].push_back(edges.size());
        edges.push_back({e.src, e.dst, &e});
    }

    // Tarjan SCC over locations (iterative).
    std::vector<std::size_t> comp(n, SIZE_MAX), low(n), idx(n, SIZE_MAX);
    std::vector<bool> on_stack(n, false);
    std::vector<std::size_t> stack;
    std::size_t counter = 0, ncomp = 0;
    for (std::size_t root = 0; root < n; ++root) {
        if (idx[root] != SIZE_MAX) continue;
        // frame: (node, next child position)
        std::vector<std::pair<std::size_t, std::size_t>> frames{{root, 0}};
        while (!frames.empty()) {
            auto& [v, child] = frames.back();
            if (child == 0) {
                idx[v] = low[v] = counter++;
                stack.push_back(v);
                on_stack[v] = true;
            }
            bool descended = false;
            while (child < adj[v].size()) {
                const std::size_t w = edges[adj[v][child]].dst;
                ++child;
                if (idx[w] == SIZE_MAX) {
                    frames.emplace_back(w, 0);
                    descended = true;
                    break;
                }
                if (on_stack[w]) low[v] = std::min(low[v], idx[w]);
            }
            if (descended) continue;
            if (low[v] == idx[v]) {
                while (true) {
                    const std::size_t w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    comp[w] = ncomp;
                    if (w == v) break;
                }
                ++ncomp;
            }
            const std::size_t done = v;
            frames.pop_back();
            if (!frames.empty()) {
                const std::size_t parent = frames.back().first;
                low[parent] = std::min(low[parent], low[done]);
            }
        }
    }

    // Per SCC: gather internal edges, reset clocks, lower-bounded clocks.
    struct SccInfo {
        std::vector<const Edge*> edges;
        std::set<ta::ClockId> resets;
        std::set<ta::ClockId> lower_bounded;  ///< by >= 1 (or stricter)
        std::size_t sample_loc = SIZE_MAX;
    };
    std::map<std::size_t, SccInfo> sccs;
    for (const CycEdge& ce : edges) {
        if (comp[ce.src] != comp[ce.dst]) continue;
        auto& info = sccs[comp[ce.src]];
        info.edges.push_back(ce.e);
        info.sample_loc = ce.src;
        for (ta::ClockId r : ce.e->resets) info.resets.insert(r);
        for (const auto& c : ce.e->guard) {
            // Lower bound "x >= k" is encoded as 0 - x <= -k (or < -k);
            // k >= 1 guarantees at least one time unit per lap.
            if (c.i == 0 && c.j != 0 && !c.bound.is_infinite() &&
                c.bound.value() <= -1) {
                info.lower_bounded.insert(c.j);
            }
        }
    }
    for (const auto& [cid, info] : sccs) {
        (void)cid;
        if (info.edges.empty()) continue;
        bool progress = false;
        for (ta::ClockId x : info.resets) {
            if (info.lower_bounded.count(x) != 0) {
                progress = true;
                break;
            }
        }
        if (progress) continue;
        out.push_back(
            {RuleId::kTA3, FindingSeverity::kWarning,
             ta.name() + "/" + ta.location_name(info.sample_loc), "", 0,
             "cycle through " + std::to_string(info.edges.size()) +
                 " edge(s) has no clock that is both reset and bounded "
                 "below (>= 1) on the cycle: time need not progress "
                 "(potential zeno loop / livelock)"});
    }
}

// ---------------------------------------------------------------- TA4 --

void check_ta4(const TimedAutomaton& ta, std::vector<Finding>& out) {
    // Location invariants: unsatisfiable over the clock universe.
    for (std::size_t loc = 0; loc < ta.num_locations(); ++loc) {
        Dbm z{ta.num_clocks()};
        if (!apply_guard(z, ta.invariant(loc))) {
            out.push_back({RuleId::kTA4, FindingSeverity::kError,
                           ta.name() + "/" + ta.location_name(loc), "", 0,
                           "location invariant is contradictory (empty zone)"});
        }
    }
    // Edges: guard ∧ src invariant, then resets ∧ dst invariant.
    for (const Edge& e : ta.edges()) {
        Dbm z{ta.num_clocks()};
        const bool inv_ok = apply_guard(z, ta.invariant(e.src));
        if (!inv_ok) continue;  // already reported above
        if (!apply_guard(z, e.guard)) {
            out.push_back({RuleId::kTA4, FindingSeverity::kError,
                           ta.name() + "/" + edge_desc(ta, e), "", 0,
                           "guard contradicts itself or the source "
                           "invariant (empty zone): edge can never fire"});
            continue;
        }
        for (ta::ClockId r : e.resets) z.reset(r);
        if (!apply_guard(z, ta.invariant(e.dst))) {
            out.push_back({RuleId::kTA4, FindingSeverity::kError,
                           ta.name() + "/" + edge_desc(ta, e), "", 0,
                           "target invariant is unsatisfiable after the "
                           "edge's resets: edge can never complete"});
        }
    }
}

}  // namespace

std::vector<Finding> lint_automaton(const TimedAutomaton& ta,
                                    const TaLintOptions& opts) {
    ta.validate();
    std::vector<Finding> out;
    const Exploration ex = explore(ta, opts);
    check_ta1(ta, ex, opts, out);
    check_ta2(ta, ex, out);
    check_ta3(ta, ex, out);
    check_ta4(ta, out);
    return out;
}

}  // namespace mcps::analysis
