/// \file ice_lint.hpp
/// \brief Rule ICE1: static integration check of an ICE assembly.
///
/// An on-demand MCPS is only safe if the pieces actually fit: every
/// requirement slot an app declares must be satisfiable by a distinct
/// registered device (same greedy semantics as
/// ice::DeviceRegistry::resolve), and every data input the supervisor
/// logic consumes (vitals topics, command acks, images) must be
/// produced by some device in the assembly. Silent integration defects
/// — a missing capnometer, an alarm input nothing publishes — are
/// exactly the failure class the MCPS interoperability surveys blame,
/// and they are detectable without running a tick.
///
/// The check runs over a declarative AssemblySpec. Specs can be written
/// by hand (fixtures) or derived from live ice:: objects with
/// make_assembly_spec(); published/consumed topic patterns follow
/// net::topic_matches syntax.

#pragma once

#include <string>
#include <vector>

#include "devices/device.hpp"
#include "finding.hpp"
#include "ice/app.hpp"
#include "ice/registry.hpp"

namespace mcps::analysis {

/// One device in the assembly, as the registry would describe it, plus
/// the topics it publishes (its data-plane contract).
struct DeviceSpec {
    std::string name;
    devices::DeviceKind kind = devices::DeviceKind::kInfusionPump;
    std::vector<std::string> capabilities;
    /// Topic patterns this device publishes (net::topic_matches syntax).
    std::vector<std::string> publishes;
};

/// One app in the assembly: its requirement slots and the topic
/// patterns it subscribes to.
struct AppSpec {
    std::string name;
    std::vector<ice::Requirement> requirements;
    /// Topic patterns the app consumes. Every one must be matched by a
    /// publication of some device in the assembly.
    std::vector<std::string> inputs;
};

struct AssemblySpec {
    std::string name;
    std::vector<DeviceSpec> devices;
    std::vector<AppSpec> apps;
};

/// Derive the registry/requirements part of a spec from live objects.
/// Topic contracts (publishes/inputs) cannot be introspected from the
/// runtime types; add them to the returned spec before linting.
[[nodiscard]] AssemblySpec make_assembly_spec(
    std::string name, const ice::DeviceRegistry& registry,
    const std::vector<const ice::VmdApp*>& apps);

/// Run ICE1 over one assembly.
[[nodiscard]] std::vector<Finding> lint_assembly(const AssemblySpec& spec);

}  // namespace mcps::analysis
