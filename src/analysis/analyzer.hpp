/// \file analyzer.hpp
/// \brief The analysis driver: runs rules over targets, applies
/// suppressions, accumulates one AnalysisReport.
///
/// Usage (mirrors tools/mcps_analyze):
///
///   Analyzer a{suppressions};
///   a.check_automaton("pump_lockout", model, {.expected_unreachable =
///       {"Violation"}});
///   a.check_assembly(spec);
///   a.check_hazards(log, &gsn_case);
///   a.scan_sources("src");
///   const AnalysisReport& r = a.report();  // r.clean() gates CI

#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "assurance_lint.hpp"
#include "conc_lint.hpp"
#include "deadline_lint.hpp"
#include "finding.hpp"
#include "ice_lint.hpp"
#include "scenario_scan.hpp"
#include "source_scan.hpp"
#include "ta_lint.hpp"

namespace mcps::analysis {

class Analyzer {
public:
    explicit Analyzer(SuppressionSet suppressions = {});

    /// TA1–TA4 on one closed automaton.
    void check_automaton(const std::string& display_name,
                         const ta::TimedAutomaton& ta,
                         const TaLintOptions& opts = {});
    /// ICE1 on one assembly.
    void check_assembly(const AssemblySpec& spec);
    /// AS1 on a hazard log (+ optional GSN case). The coverage matrix
    /// of the LAST call is kept for reporting.
    void check_hazards(const assurance::HazardLog& log,
                       const assurance::AssuranceCase* gsn = nullptr);
    /// SIM1 over a source tree.
    void scan_sources(const std::filesystem::path& root);
    /// ICE1 registry-bypass scan over a source tree: direct
    /// PcaScenarioConfig/XrayScenarioConfig assembly outside the
    /// scenario layer (scenario_scan.hpp).
    void scan_scenario_assembly(const std::filesystem::path& root);
    /// CONC1 lock-discipline scan over the roots as one unit
    /// (conc_lint.hpp); missing roots become CFG1 findings.
    void scan_concurrency(const std::vector<std::filesystem::path>& roots);
    /// TA5 deadline feasibility over every registry preset's
    /// claimed-safe envelope; the slack table of the LAST call is kept
    /// (deadline_report()). With \p cross_check, also runs the
    /// canonical pca/xray presets and checks observed latencies against
    /// the static bounds (costs two scenario runs).
    void check_deadlines(const DeadlineOptions& opts = {},
                         bool cross_check = false);

    [[nodiscard]] const AnalysisReport& report() const noexcept {
        return report_;
    }
    [[nodiscard]] const HazardCoverage& last_coverage() const noexcept {
        return coverage_;
    }
    [[nodiscard]] const DeadlineReport& deadline_report() const noexcept {
        return deadlines_;
    }

private:
    void absorb(std::vector<Finding> findings);
    /// Emit a CFG1 error when \p root does not exist (a scan that would
    /// silently cover zero files); returns false on the miss.
    bool require_root(const std::filesystem::path& root);

    SuppressionSet suppressions_;
    AnalysisReport report_;
    HazardCoverage coverage_;
    DeadlineReport deadlines_;
};

}  // namespace mcps::analysis
