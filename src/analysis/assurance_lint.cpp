#include "assurance_lint.hpp"

#include <cctype>

namespace mcps::analysis {

namespace {

/// True if \p id occurs in \p text as a standalone token ("H1" must not
/// match inside "H10" or "SH1x").
bool mentions_id(const std::string& text, const std::string& id) {
    std::size_t pos = 0;
    while ((pos = text.find(id, pos)) != std::string::npos) {
        const bool left_ok =
            pos == 0 || !std::isalnum(static_cast<unsigned char>(
                            text[pos - 1]));
        const std::size_t end = pos + id.size();
        const bool right_ok =
            end >= text.size() ||
            !std::isalnum(static_cast<unsigned char>(text[end]));
        if (left_ok && right_ok) return true;
        pos += 1;
    }
    return false;
}

}  // namespace

std::string HazardCoverage::to_text() const {
    std::string out = "hazard\tmechanisms\tgsn\tcovered\n";
    for (const auto& row : rows) {
        out += row.hazard_id + "\t";
        for (std::size_t i = 0; i < row.mechanisms.size(); ++i) {
            out += (i ? "," : "") + row.mechanisms[i];
        }
        out += "\t";
        for (std::size_t i = 0; i < row.gsn_nodes.size(); ++i) {
            out += (i ? "," : "") + row.gsn_nodes[i];
        }
        out += row.covered() ? "\tyes\n" : "\tNO\n";
    }
    return out;
}

HazardCoverage lint_hazard_coverage(const assurance::HazardLog& log,
                                    const assurance::AssuranceCase* gsn) {
    HazardCoverage cov;
    const auto gsn_nodes =
        gsn != nullptr ? gsn->all_nodes()
                       : std::vector<const assurance::Node*>{};

    for (const assurance::Hazard& h : log.hazards()) {
        HazardCoverageRow row;
        row.hazard_id = h.id;

        for (const assurance::Mitigation& m : h.mitigations) {
            if (m.implemented_by.empty()) {
                cov.findings.push_back(
                    {RuleId::kAS1, FindingSeverity::kWarning, h.id, "", 0,
                     "mitigation '" + m.description +
                         "' names no implementing mechanism "
                         "(implemented_by is empty)"});
                continue;
            }
            row.mechanisms.push_back(m.implemented_by);
        }
        for (const assurance::Node* n : gsn_nodes) {
            if (n->kind != assurance::NodeKind::kGoal &&
                n->kind != assurance::NodeKind::kSolution) {
                continue;
            }
            if (mentions_id(n->statement, h.id) ||
                mentions_id(n->artifact, h.id)) {
                row.gsn_nodes.push_back(n->id);
            }
        }

        if (!row.covered()) {
            cov.findings.push_back(
                {RuleId::kAS1, FindingSeverity::kError, h.id, "", 0,
                 "hazard '" + h.description +
                     "' is covered by no implemented mitigation and no "
                     "GSN goal (uncovered risk)"});
        }
        cov.rows.push_back(std::move(row));
    }
    return cov;
}

}  // namespace mcps::analysis
