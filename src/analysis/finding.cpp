#include "finding.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace mcps::analysis {

namespace {

struct RuleInfo {
    RuleId id;
    std::string_view name;
    std::string_view summary;
};

constexpr std::array<RuleInfo, kNumRules> kRules{{
    {RuleId::kTA1, "TA1",
     "unreachable location or dead transition in a timed-automata model"},
    {RuleId::kTA2, "TA2",
     "nondeterminism: two transitions enabled on the same event with "
     "overlapping clock guards"},
    {RuleId::kTA3, "TA3",
     "potential zeno/livelock cycle: no clock is reset and bounded from "
     "below along the cycle"},
    {RuleId::kTA4, "TA4",
     "guard/invariant contradiction (empty DBM zone)"},
    {RuleId::kICE1, "ICE1",
     "assembly references an unregistered/unsatisfiable device or "
     "consumes an input no device produces"},
    {RuleId::kAS1, "AS1",
     "hazard not covered by any implemented mitigation or GSN goal"},
    {RuleId::kSIM1, "SIM1",
     "banned construct in deterministic simulation code (raw rand(), "
     "wall-clock time, unseeded RNG)"},
    {RuleId::kTA5, "TA5",
     "static worst-case interlock latency can exceed the deadline "
     "somewhere in the claimed-safe knob envelope"},
    {RuleId::kCONC1, "CONC1",
     "lock-discipline violation: guarded field touched outside its "
     "lock scope, undeclared/reversed lock nesting, or a cycle in the "
     "declared lock-order DAG"},
    {RuleId::kCFG1, "CFG1",
     "analysis configuration error: a scan root is missing or "
     "unreadable (the scan would silently cover zero files)"},
}};

std::size_t rule_index(RuleId r) noexcept {
    return static_cast<std::size_t>(r);
}

}  // namespace

const std::vector<RuleId>& all_rules() {
    static const std::vector<RuleId> rules = [] {
        std::vector<RuleId> v;
        v.reserve(kRules.size());
        for (const auto& info : kRules) v.push_back(info.id);
        return v;
    }();
    return rules;
}

std::string_view rule_name(RuleId r) noexcept {
    return kRules[rule_index(r)].name;
}

std::string_view rule_summary(RuleId r) noexcept {
    return kRules[rule_index(r)].summary;
}

bool parse_rule(std::string_view name, RuleId& out) noexcept {
    std::string upper{name};
    std::transform(upper.begin(), upper.end(), upper.begin(), [](char c) {
        return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    });
    for (const auto& info : kRules) {
        if (upper == info.name) {
            out = info.id;
            return true;
        }
    }
    return false;
}

std::string_view to_string(FindingSeverity s) noexcept {
    return s == FindingSeverity::kError ? "error" : "warning";
}

std::string Finding::to_string() const {
    std::string out{rule_name(rule)};
    out += ' ';
    out += analysis::to_string(severity);
    if (!file.empty()) {
        out += ' ';
        out += file;
        if (line > 0) {
            out += ':';
            out += std::to_string(line);
        }
    }
    if (!entity.empty()) {
        out += ' ';
        out += entity;
    }
    out += ": ";
    out += message;
    return out;
}

void SuppressionSet::suppress(RuleId r) { suppressed_[rule_index(r)] = true; }

bool SuppressionSet::parse_list(std::string_view list) {
    bool staged[kNumRules] = {};
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = std::min(list.find(',', pos), list.size());
        std::string_view token = list.substr(pos, comma - pos);
        // Trim surrounding whitespace.
        while (!token.empty() && std::isspace(static_cast<unsigned char>(
                                     token.front()))) {
            token.remove_prefix(1);
        }
        while (!token.empty() &&
               std::isspace(static_cast<unsigned char>(token.back()))) {
            token.remove_suffix(1);
        }
        if (!token.empty()) {
            RuleId r;
            if (!parse_rule(token, r)) return false;
            staged[rule_index(r)] = true;
        }
        if (comma == list.size()) break;
        pos = comma + 1;
    }
    for (std::size_t i = 0; i < kNumRules; ++i) {
        suppressed_[i] = suppressed_[i] || staged[i];
    }
    return true;
}

bool SuppressionSet::is_suppressed(RuleId r) const noexcept {
    return suppressed_[rule_index(r)];
}

std::size_t SuppressionSet::size() const noexcept {
    std::size_t n = 0;
    for (bool b : suppressed_) n += b ? 1 : 0;
    return n;
}

std::size_t AnalysisReport::errors() const noexcept {
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
            return f.severity == FindingSeverity::kError;
        }));
}

std::size_t AnalysisReport::warnings() const noexcept {
    return findings.size() - errors();
}

std::string AnalysisReport::to_text() const {
    std::string out;
    for (const auto& f : findings) {
        out += f.to_string();
        out += '\n';
    }
    out += "analyzed: " + std::to_string(analyzed.size()) +
           " target(s), findings: " + std::to_string(findings.size()) + " (" +
           std::to_string(errors()) + " error, " + std::to_string(warnings()) +
           " warning), suppressed: " + std::to_string(suppressed_findings) +
           "\n";
    return out;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void AnalysisReport::write_json(std::ostream& out) const {
    out << "{\n  \"tool\": \"mcps_analyze\",\n";
    out << "  \"analyzed\": [";
    for (std::size_t i = 0; i < analyzed.size(); ++i) {
        out << (i ? ", " : "") << '"' << json_escape(analyzed[i]) << '"';
    }
    out << "],\n";
    out << "  \"errors\": " << errors() << ",\n";
    out << "  \"warnings\": " << warnings() << ",\n";
    out << "  \"suppressed\": " << suppressed_findings << ",\n";
    out << "  \"findings\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        out << "    {\"rule\": \"" << rule_name(f.rule) << "\", "
            << "\"severity\": \"" << to_string(f.severity) << "\", "
            << "\"entity\": \"" << json_escape(f.entity) << "\", "
            << "\"file\": \"" << json_escape(f.file) << "\", "
            << "\"line\": " << f.line << ", "
            << "\"message\": \"" << json_escape(f.message) << "\"}"
            << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

}  // namespace mcps::analysis
