/// \file finding.hpp
/// \brief Diagnostics for the model-level safety linter.
///
/// Every analysis rule emits Findings: (rule, entity, message) triples
/// optionally anchored to a file/line (source-scan rules) or a model
/// entity (location, edge, requirement slot, hazard id). Rules are
/// individually suppressible, either globally (`--suppress TA2,SIM1`)
/// or — for source rules — inline via
/// `// mcps-analyze: allow(SIM1): reason`. The AnalysisReport
/// aggregates findings and renders them as text or as the flat JSON
/// format the bench_io.hpp convention established (hand-written writer,
/// no third-party JSON dependency).

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mcps::analysis {

/// The rule catalog. Stable ids — they appear in suppression lists,
/// JSON reports and docs.
enum class RuleId : std::uint8_t {
    kTA1,   ///< unreachable location / dead transition
    kTA2,   ///< nondeterminism: same event, overlapping guards
    kTA3,   ///< potential zeno/livelock cycle without time progress
    kTA4,   ///< guard/invariant contradiction (empty zone)
    kICE1,  ///< assembly references unsatisfiable device / orphan input
    kAS1,   ///< hazard not covered by any mitigation mechanism or GSN goal
    kSIM1,  ///< banned construct in deterministic simulation code
    kTA5,   ///< interlock deadline infeasible over the claimed-safe envelope
    kCONC1, ///< lock-discipline violation (guarded field / lock order)
    kCFG1,  ///< analysis configuration error (missing/unreadable scan root)
};

inline constexpr std::size_t kNumRules = 10;

/// All rules, for iteration.
[[nodiscard]] const std::vector<RuleId>& all_rules();

[[nodiscard]] std::string_view rule_name(RuleId r) noexcept;
[[nodiscard]] std::string_view rule_summary(RuleId r) noexcept;

/// Parse "TA1" etc. (case-insensitive). Returns false on unknown names.
[[nodiscard]] bool parse_rule(std::string_view name, RuleId& out) noexcept;

enum class FindingSeverity : std::uint8_t {
    kWarning,  ///< suspicious but not provably unsafe
    kError,    ///< violates the rule outright
};

[[nodiscard]] std::string_view to_string(FindingSeverity s) noexcept;

/// One diagnostic.
struct Finding {
    RuleId rule = RuleId::kTA1;
    FindingSeverity severity = FindingSeverity::kError;
    /// The model entity the finding is about: "model/location",
    /// "assembly/slot", hazard id, ... Empty for pure file findings.
    std::string entity;
    /// Source file (source-scan rules) or model source hint; optional.
    std::string file;
    std::size_t line = 0;  ///< 1-based; 0 = not file-anchored
    std::string message;

    /// "TA1 error pump/Idle: message" or "SIM1 error file:12: message".
    [[nodiscard]] std::string to_string() const;
};

/// Which rules are globally disabled.
class SuppressionSet {
public:
    void suppress(RuleId r);
    /// Parse a comma-separated list ("TA2,sim1"). Returns false and
    /// leaves the set unchanged on any unknown rule name.
    [[nodiscard]] bool parse_list(std::string_view list);
    [[nodiscard]] bool is_suppressed(RuleId r) const noexcept;
    [[nodiscard]] std::size_t size() const noexcept;

private:
    bool suppressed_[kNumRules] = {};
};

/// Aggregated result of one analyzer run.
struct AnalysisReport {
    std::vector<Finding> findings;
    /// Names of the models/assemblies/trees analyzed (for the report
    /// header; proves the clean run actually covered something).
    std::vector<std::string> analyzed;
    /// Findings dropped by global or inline suppression.
    std::size_t suppressed_findings = 0;

    [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
    [[nodiscard]] std::size_t errors() const noexcept;
    [[nodiscard]] std::size_t warnings() const noexcept;

    /// Human-readable multi-line rendering.
    [[nodiscard]] std::string to_text() const;
    /// Flat JSON report (bench_io.hpp conventions: hand-written,
    /// deterministic key order).
    void write_json(std::ostream& out) const;
};

/// Escape a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace mcps::analysis
