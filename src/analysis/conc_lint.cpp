#include "conc_lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>

namespace mcps::analysis {

namespace {

// ---- declaration database (phase 1 output) --------------------------------

struct GuardedField {
    std::string field;        ///< member name
    std::string guard;        ///< trailing component of the mutex expr
    std::string owner_outer;  ///< outermost declaring class
    std::string owner_inner;  ///< innermost declaring class
    std::string file;
    std::size_t line = 0;
};

struct RequiresFn {
    std::string owner;  ///< innermost declaring class
    std::string fn;
    std::string guard;
};

struct OrderEdge {
    std::string outer, inner;  ///< full declared text (ws-normalized)
    std::string file;
    std::size_t line = 0;
};

struct ConcDb {
    std::vector<GuardedField> fields;
    std::vector<RequiresFn> requires_fns;
    std::vector<OrderEdge> edges;
};

// ---- small lexical helpers ------------------------------------------------

std::string last_component(std::string_view expr) {
    std::size_t end = expr.size();
    while (end > 0 && !is_ident_char(expr[end - 1])) --end;
    std::size_t begin = end;
    while (begin > 0 && is_ident_char(expr[begin - 1])) --begin;
    return std::string{expr.substr(begin, end - begin)};
}

std::string strip_spaces(std::string_view s) {
    std::string out;
    for (char c : s) {
        if (!std::isspace(static_cast<unsigned char>(c))) out += c;
    }
    return out;
}

bool is_control_keyword(std::string_view t) {
    static const std::set<std::string_view> kw{
        "if",     "while",  "for",           "switch",   "catch",
        "return", "sizeof", "static_assert", "decltype", "alignof",
        "throw",  "new",    "delete",        "assert",   "noexcept",
        "co_await", "co_return", "co_yield"};
    return kw.count(t) != 0;
}

bool has_conc_allow(const std::string& raw) {
    return raw.find("mcps-analyze: allow(CONC1") != std::string::npos;
}

bool has_conc_allow_file(const std::string& raw) {
    return raw.find("mcps-analyze: allow-file(CONC1") != std::string::npos;
}

// ---- file loading ---------------------------------------------------------

/// One file, comment/string-stripped, preprocessor lines blanked (macro
/// bodies would corrupt brace depth), newlines preserved so the scanner
/// can track line numbers through multi-line constructs.
struct FileText {
    std::string text;
    std::vector<std::string> raw;  ///< raw lines, 0-based (allow markers)
    bool file_allowed = false;
};

FileText load_file(const std::filesystem::path& file) {
    FileText out;
    std::ifstream in{file};
    if (!in) return out;
    for (std::string line; std::getline(in, line);) {
        out.raw.push_back(std::move(line));
    }
    bool in_block = false;
    bool in_pp = false;  // inside a (possibly \-continued) directive
    for (const std::string& raw : out.raw) {
        if (has_conc_allow_file(raw)) out.file_allowed = true;
        std::string stripped = strip_line(raw, in_block);
        bool pp = in_pp;
        if (!pp) {
            for (char c : stripped) {
                if (std::isspace(static_cast<unsigned char>(c))) continue;
                pp = c == '#';
                break;
            }
        }
        in_pp = pp && !raw.empty() && raw.back() == '\\';
        if (pp) stripped.assign(stripped.size(), ' ');
        out.text += stripped;
        out.text += '\n';
    }
    return out;
}

// ---- the scanner ----------------------------------------------------------

struct LockScope {
    std::string key;      ///< trailing component of the mutex expr
    std::string display;  ///< the expr as written
    int depth = 0;
    std::size_t line = 0;
};

struct ClassScope {
    std::string name;
    int depth = 0;
};

struct PendingFunc {
    std::string cls;
    std::string name;
    bool valid = false;
};

struct FuncScope {
    std::string cls;
    std::string name;
    int depth = 0;
    bool exempt = false;  ///< constructor or destructor
    std::vector<std::string> requires_keys;
    bool active = false;
};

/// Scans one file. In phase 1 (`collect` non-null) it fills the
/// declaration database; in phase 2 (`db` non-null) it checks uses and
/// nesting against the complete database and appends findings.
class FileScanner {
public:
    FileScanner(std::filesystem::path file, const FileText& text, ConcDb* collect,
                const ConcDb* db, ScanResult* out)
        : file_{std::move(file)}, t_{text}, collect_{collect}, db_{db},
          out_{out} {}

    void run() {
        const std::string& s = t_.text;
        while (i_ < s.size()) {
            const char c = s[i_];
            if (c == '\n') {
                ++line_;
                ++i_;
            } else if (c == '{') {
                ++i_;
                open_brace();
            } else if (c == '}') {
                ++i_;
                close_brace();
            } else if (c == '(') {
                ++paren_;
                ++i_;
            } else if (c == ')') {
                if (paren_ > 0) --paren_;
                ++i_;
            } else if (c == ';') {
                if (paren_ == 0) {
                    pending_func_.valid = false;
                    pending_class_.clear();
                }
                ++i_;
            } else if (c == '~' && i_ + 1 < s.size() &&
                       is_ident_start(s[i_ + 1])) {
                ++i_;
                std::string name = "~" + read_ident();
                maybe_function_head(name);
            } else if (is_ident_start(c)) {
                handle_ident(read_ident());
            } else {
                ++i_;
            }
        }
    }

private:
    static bool is_ident_start(char c) {
        return is_ident_char(c) && !(c >= '0' && c <= '9');
    }

    std::string read_ident() {
        const std::size_t begin = i_;
        while (i_ < t_.text.size() && is_ident_char(t_.text[i_])) ++i_;
        return t_.text.substr(begin, i_ - begin);
    }

    /// Next non-whitespace char at/after \p from (may cross newlines);
    /// '\0' at end of file. Does not consume.
    char peek_nonspace(std::size_t from) const {
        for (std::size_t j = from; j < t_.text.size(); ++j) {
            const char c = t_.text[j];
            if (!std::isspace(static_cast<unsigned char>(c))) return c;
        }
        return '\0';
    }

    bool peek_is_scope_resolution(std::size_t from) const {
        for (std::size_t j = from; j + 1 < t_.text.size(); ++j) {
            const char c = t_.text[j];
            if (std::isspace(static_cast<unsigned char>(c))) continue;
            return c == ':' && t_.text[j + 1] == ':';
        }
        return false;
    }

    void open_brace() {
        ++depth_;
        if (pending_func_.valid && paren_ == 0) {
            push_function();
            pending_class_.clear();  // stray `template <class T>` parameter
        } else if (!pending_class_.empty()) {
            classes_.push_back({pending_class_, depth_});
            pending_class_.clear();
        }
    }

    void close_brace() {
        --depth_;
        while (!locks_.empty() && locks_.back().depth > depth_) {
            locks_.pop_back();
        }
        while (!classes_.empty() && classes_.back().depth > depth_) {
            classes_.pop_back();
        }
        if (func_.active && func_.depth > depth_) func_.active = false;
    }

    void push_function() {
        func_ = {};
        func_.cls = pending_func_.cls;
        func_.name = pending_func_.name;
        func_.depth = depth_;
        func_.exempt = !func_.cls.empty() &&
                       (func_.name == func_.cls ||
                        func_.name == "~" + func_.cls ||
                        (!func_.name.empty() && func_.name[0] == '~'));
        if (db_ != nullptr) {
            for (const RequiresFn& r : db_->requires_fns) {
                if (r.fn == func_.name &&
                    (r.owner == func_.cls || func_.cls.empty())) {
                    func_.requires_keys.push_back(r.guard);
                }
            }
        }
        func_.active = true;
        pending_func_.valid = false;
    }

    void maybe_function_head(const std::string& name) {
        if (peek_nonspace(i_) != '(') return;
        last_call_ident_ = name;
        if (paren_ != 0 || func_.active || is_control_keyword(name) ||
            name.rfind("MCPS_", 0) == 0) {
            return;
        }
        pending_func_.name = name;
        pending_func_.cls = !qual_.empty()
                                ? qual_
                                : (classes_.empty() ? "" : classes_.back().name);
        pending_func_.valid = true;
    }

    /// Parse `( ... )` starting at the first non-ws char at/after i_
    /// (which must be '('). Returns the argument text and consumes
    /// through the matching ')'. Empty optional when not a call.
    bool read_paren_args(std::string& args) {
        std::size_t j = i_;
        while (j < t_.text.size() &&
               std::isspace(static_cast<unsigned char>(t_.text[j]))) {
            ++j;
        }
        if (j >= t_.text.size() || t_.text[j] != '(') return false;
        int nest = 0;
        std::string captured;
        for (; j < t_.text.size(); ++j) {
            const char c = t_.text[j];
            if (c == '\n') ++line_;
            if (c == '(') {
                ++nest;
                if (nest == 1) continue;
            } else if (c == ')') {
                --nest;
                if (nest == 0) {
                    i_ = j + 1;
                    args = captured;
                    return true;
                }
            }
            captured += c;
        }
        i_ = j;
        return false;
    }

    std::vector<std::string> split_top_commas(const std::string& args) const {
        std::vector<std::string> out;
        int nest = 0;
        std::string cur;
        for (char c : args) {
            if (c == '(' || c == '{' || c == '[' || c == '<') ++nest;
            if (c == ')' || c == '}' || c == ']' || c == '>') --nest;
            if (c == ',' && nest == 0) {
                out.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        out.push_back(cur);
        return out;
    }

    void handle_ident(const std::string& t) {
        if (t == "enum") {
            last_was_enum_ = true;
            return;
        }
        if ((t == "class" || t == "struct") && paren_ == 0) {
            if (!last_was_enum_) awaiting_class_name_ = true;
            last_was_enum_ = false;
            return;
        }
        last_was_enum_ = false;
        if (awaiting_class_name_) {
            awaiting_class_name_ = false;
            pending_class_ = t;
            qual_.clear();
            return;
        }
        if (t.rfind("MCPS_", 0) == 0) {
            handle_annotation(t);
            return;
        }
        if (t == "lock_guard" || t == "unique_lock" || t == "scoped_lock") {
            if (try_acquisition()) {
                prev_ident_.clear();
                qual_.clear();
                return;
            }
        }
        maybe_function_head(t);
        check_field_use(t);
        prev_ident_ = t;
        qual_ = peek_is_scope_resolution(i_) ? t : std::string{};
    }

    void handle_annotation(const std::string& t) {
        std::string args;
        if (!read_paren_args(args)) return;
        if (collect_ == nullptr) return;  // annotations only matter in phase 1
        if (t == "MCPS_GUARDED_BY") {
            if (classes_.empty() || prev_ident_.empty()) return;
            GuardedField f;
            f.field = prev_ident_;
            f.guard = last_component(args);
            f.owner_outer = classes_.front().name;
            f.owner_inner = classes_.back().name;
            f.file = file_.generic_string();
            f.line = line_ + 1;
            collect_->fields.push_back(std::move(f));
        } else if (t == "MCPS_REQUIRES") {
            RequiresFn r;
            r.fn = pending_func_.valid ? pending_func_.name : last_call_ident_;
            r.owner = pending_func_.valid && !pending_func_.cls.empty()
                          ? pending_func_.cls
                          : (classes_.empty() ? "" : classes_.back().name);
            r.guard = last_component(args);
            if (!r.fn.empty()) collect_->requires_fns.push_back(std::move(r));
        } else if (t == "MCPS_LOCK_ORDER") {
            const std::vector<std::string> parts = split_top_commas(args);
            if (parts.size() == 2) {
                OrderEdge e;
                e.outer = strip_spaces(parts[0]);
                e.inner = strip_spaces(parts[1]);
                e.file = file_.generic_string();
                e.line = line_ + 1;
                collect_->edges.push_back(std::move(e));
            }
        }
    }

    /// Parse a lock_guard/unique_lock/scoped_lock acquisition starting
    /// just past the class-name token. Returns false (consuming
    /// nothing) when the token is not an acquisition (e.g. a using
    /// alias or a declaration without an initializer).
    bool try_acquisition() {
        std::size_t j = i_;
        const std::string& s = t_.text;
        std::size_t scan_line = line_;
        auto skip_ws = [&] {
            while (j < s.size() &&
                   std::isspace(static_cast<unsigned char>(s[j]))) {
                if (s[j] == '\n') ++scan_line;
                ++j;
            }
        };
        skip_ws();
        if (j < s.size() && s[j] == '<') {
            int angle = 0;
            for (; j < s.size(); ++j) {
                const char c = s[j];
                if (c == '\n') ++scan_line;
                if (c == '<') ++angle;
                if (c == '>') {
                    --angle;
                    if (angle == 0) {
                        ++j;
                        break;
                    }
                }
                if (c == ';' || c == '{' || c == '(') return false;
            }
        }
        skip_ws();
        while (j < s.size() && is_ident_char(s[j])) ++j;  // variable name
        skip_ws();
        if (j >= s.size() || (s[j] != '(' && s[j] != '{')) return false;
        const char open = s[j];
        const char close = open == '(' ? ')' : '}';
        int nest = 0;
        std::string captured;
        for (; j < s.size(); ++j) {
            const char c = s[j];
            if (c == '\n') ++scan_line;
            if (c == open) {
                ++nest;
                if (nest == 1) continue;
            } else if (c == close) {
                --nest;
                if (nest == 0) break;
            }
            captured += c;
        }
        if (j >= s.size()) return false;
        const std::size_t acq_line = line_;
        i_ = j + 1;
        line_ = scan_line;
        for (const std::string& arg : split_top_commas(captured)) {
            if (arg.find("defer_lock") != std::string::npos ||
                arg.find("adopt_lock") != std::string::npos ||
                arg.find("try_to_lock") != std::string::npos) {
                continue;
            }
            const std::string key = last_component(arg);
            if (key.empty()) continue;
            std::string display = strip_spaces(arg);
            if (db_ != nullptr) check_nesting(key, display, acq_line);
            locks_.push_back({key, std::move(display), depth_, acq_line + 1});
        }
        return true;
    }

    void check_nesting(const std::string& key, const std::string& display,
                       std::size_t acq_line) {
        for (const LockScope& outer : locks_) {
            if (outer.key == key) {
                emit(acq_line,
                     "acquires '" + display + "' while already holding '" +
                         outer.display + "' (same mutex key '" + key +
                         "'): self-deadlock");
                continue;
            }
            bool forward = false, reverse = false;
            for (const OrderEdge& e : db_->edges) {
                const std::string eo = last_component(e.outer);
                const std::string ei = last_component(e.inner);
                if (eo == outer.key && ei == key) forward = true;
                if (eo == key && ei == outer.key) reverse = true;
            }
            if (forward) continue;
            if (reverse) {
                emit(acq_line, "lock-order violation: acquires '" + display +
                                   "' while holding '" + outer.display +
                                   "' but the declared order is " + key +
                                   " before " + outer.key);
            } else {
                emit(acq_line,
                     "undeclared lock nesting: '" + outer.display + "' -> '" +
                         display +
                         "' has no MCPS_LOCK_ORDER edge; declare the edge "
                         "(and keep the DAG acyclic) or restructure");
            }
        }
    }

    void check_field_use(const std::string& t) {
        if (db_ == nullptr || !func_.active || func_.exempt) return;
        for (const GuardedField& f : db_->fields) {
            if (f.field != t) continue;
            const bool owner_match =
                func_.cls == f.owner_outer || func_.cls == f.owner_inner ||
                (!classes_.empty() && classes_.front().name == f.owner_outer);
            if (!owner_match) continue;
            bool held = std::any_of(
                locks_.begin(), locks_.end(),
                [&](const LockScope& l) { return l.key == f.guard; });
            if (!held) {
                held = std::find(func_.requires_keys.begin(),
                                 func_.requires_keys.end(),
                                 f.guard) != func_.requires_keys.end();
            }
            if (held) continue;
            emit(line_, "field '" + f.owner_inner + "::" + f.field +
                            "' (guarded by '" + f.guard +
                            "') touched outside any '" + f.guard +
                            "' lock scope in " +
                            (func_.cls.empty() ? func_.name
                                               : func_.cls + "::" + func_.name));
        }
    }

    /// Emit a finding at 0-based source line \p line0, honoring inline
    /// and file-level waivers.
    void emit(std::size_t line0, std::string message) {
        const bool allowed =
            t_.file_allowed ||
            (line0 < t_.raw.size() && has_conc_allow(t_.raw[line0])) ||
            (line0 > 0 && line0 - 1 < t_.raw.size() &&
             has_conc_allow(t_.raw[line0 - 1]));
        if (allowed) {
            ++out_->suppressed;
            return;
        }
        Finding f;
        f.rule = RuleId::kCONC1;
        f.severity = FindingSeverity::kError;
        f.entity = func_.active && !func_.cls.empty()
                       ? func_.cls + "::" + func_.name
                       : "lock-order";
        f.file = file_.generic_string();
        f.line = line0 + 1;
        f.message = std::move(message);
        out_->findings.push_back(std::move(f));
    }

    std::filesystem::path file_;
    const FileText& t_;
    ConcDb* collect_;
    const ConcDb* db_;
    ScanResult* out_;

    std::size_t i_ = 0;
    std::size_t line_ = 0;  ///< 0-based current line
    int depth_ = 0;
    int paren_ = 0;
    std::vector<ClassScope> classes_;
    std::vector<LockScope> locks_;
    FuncScope func_;
    PendingFunc pending_func_;
    std::string pending_class_;
    bool awaiting_class_name_ = false;
    bool last_was_enum_ = false;
    std::string prev_ident_;
    std::string qual_;             ///< ident directly before a `::`
    std::string last_call_ident_;  ///< last ident followed by `(`
};

// ---- tree walking ---------------------------------------------------------

void collect_files(const std::filesystem::path& root,
                   std::vector<std::filesystem::path>& out) {
    if (!std::filesystem::exists(root)) return;
    if (std::filesystem::is_regular_file(root)) {
        if (is_source_file(root)) out.push_back(root);
        return;
    }
    auto it = std::filesystem::recursive_directory_iterator{root};
    const auto end = std::filesystem::end(it);
    for (; it != end; ++it) {
        const std::filesystem::path& p = it->path();
        const std::string fname = p.filename().string();
        if (it->is_directory() &&
            (fname.rfind("build", 0) == 0 ||
             (fname.size() > 1 && fname[0] == '.'))) {
            it.disable_recursion_pending();
            continue;
        }
        if (!it->is_regular_file() || !is_source_file(p)) continue;
        out.push_back(p);
    }
    std::sort(out.begin(), out.end());
}

/// Report every cycle in the declared lock-order DAG once, with the
/// full path. Nodes are the ws-normalized declared names.
void check_edge_cycles(const ConcDb& db, ScanResult& out) {
    std::map<std::string, std::vector<std::string>> adj;
    std::map<std::string, const OrderEdge*> edge_of;
    for (const OrderEdge& e : db.edges) {
        adj[e.outer].push_back(e.inner);
        adj[e.inner];  // ensure sink nodes exist
        edge_of.emplace(e.outer + "->" + e.inner, &e);
    }
    std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
    std::vector<std::string> stack;
    bool reported = false;

    std::function<void(const std::string&)> dfs = [&](const std::string& n) {
        color[n] = 1;
        stack.push_back(n);
        for (const std::string& m : adj[n]) {
            if (color[m] == 1) {
                if (!reported) {
                    reported = true;
                    std::string cyc;
                    bool in_cycle = false;
                    for (const std::string& s : stack) {
                        if (s == m) in_cycle = true;
                        if (in_cycle) cyc += s + " -> ";
                    }
                    cyc += m;
                    const OrderEdge* e = edge_of[n + "->" + m];
                    Finding f;
                    f.rule = RuleId::kCONC1;
                    f.severity = FindingSeverity::kError;
                    f.entity = "lock-order";
                    if (e != nullptr) {
                        f.file = e->file;
                        f.line = e->line;
                    }
                    f.message =
                        "declared lock-order edges form a cycle: " + cyc;
                    out.findings.push_back(std::move(f));
                }
            } else if (color[m] == 0) {
                dfs(m);
            }
        }
        stack.pop_back();
        color[n] = 2;
    };
    for (const auto& [node, _] : adj) {
        if (color[node] == 0) dfs(node);
    }
}

}  // namespace

ScanResult scan_concurrency(const std::vector<std::filesystem::path>& roots) {
    std::vector<std::filesystem::path> files;
    for (const std::filesystem::path& root : roots) collect_files(root, files);

    std::vector<FileText> texts;
    texts.reserve(files.size());
    for (const auto& f : files) texts.push_back(load_file(f));

    ScanResult result;
    ConcDb db;
    for (std::size_t k = 0; k < files.size(); ++k) {
        ScanResult ignored;
        FileScanner{files[k], texts[k], &db, nullptr, &ignored}.run();
    }
    check_edge_cycles(db, result);
    for (std::size_t k = 0; k < files.size(); ++k) {
        result.files_scanned += 1;
        FileScanner{files[k], texts[k], nullptr, &db, &result}.run();
    }
    return result;
}

}  // namespace mcps::analysis
