#include "analyzer.hpp"

namespace mcps::analysis {

Analyzer::Analyzer(SuppressionSet suppressions)
    : suppressions_{suppressions} {}

void Analyzer::absorb(std::vector<Finding> findings) {
    for (Finding& f : findings) {
        if (suppressions_.is_suppressed(f.rule)) {
            ++report_.suppressed_findings;
        } else {
            report_.findings.push_back(std::move(f));
        }
    }
}

void Analyzer::check_automaton(const std::string& display_name,
                               const ta::TimedAutomaton& ta,
                               const TaLintOptions& opts) {
    report_.analyzed.push_back("ta:" + display_name);
    absorb(lint_automaton(ta, opts));
}

void Analyzer::check_assembly(const AssemblySpec& spec) {
    report_.analyzed.push_back("ice:" + spec.name);
    absorb(lint_assembly(spec));
}

void Analyzer::check_hazards(const assurance::HazardLog& log,
                             const assurance::AssuranceCase* gsn) {
    report_.analyzed.push_back("assurance:hazard-log(" +
                               std::to_string(log.count()) + ")");
    coverage_ = lint_hazard_coverage(log, gsn);
    absorb(coverage_.findings);
}

void Analyzer::scan_sources(const std::filesystem::path& root) {
    ScanResult r = scan_source_tree(root);
    report_.analyzed.push_back("src:" + root.generic_string() + "(" +
                               std::to_string(r.files_scanned) + " files)");
    report_.suppressed_findings += r.suppressed;
    absorb(std::move(r.findings));
}

void Analyzer::scan_scenario_assembly(const std::filesystem::path& root) {
    ScanResult r = scan_scenario_tree(root);
    report_.analyzed.push_back("scenario:" + root.generic_string() + "(" +
                               std::to_string(r.files_scanned) + " files)");
    report_.suppressed_findings += r.suppressed;
    absorb(std::move(r.findings));
}

}  // namespace mcps::analysis
