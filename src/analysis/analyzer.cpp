#include "analyzer.hpp"

namespace mcps::analysis {

Analyzer::Analyzer(SuppressionSet suppressions)
    : suppressions_{suppressions} {}

void Analyzer::absorb(std::vector<Finding> findings) {
    for (Finding& f : findings) {
        if (suppressions_.is_suppressed(f.rule)) {
            ++report_.suppressed_findings;
        } else {
            report_.findings.push_back(std::move(f));
        }
    }
}

void Analyzer::check_automaton(const std::string& display_name,
                               const ta::TimedAutomaton& ta,
                               const TaLintOptions& opts) {
    report_.analyzed.push_back("ta:" + display_name);
    absorb(lint_automaton(ta, opts));
}

void Analyzer::check_assembly(const AssemblySpec& spec) {
    report_.analyzed.push_back("ice:" + spec.name);
    absorb(lint_assembly(spec));
}

void Analyzer::check_hazards(const assurance::HazardLog& log,
                             const assurance::AssuranceCase* gsn) {
    report_.analyzed.push_back("assurance:hazard-log(" +
                               std::to_string(log.count()) + ")");
    coverage_ = lint_hazard_coverage(log, gsn);
    absorb(coverage_.findings);
}

bool Analyzer::require_root(const std::filesystem::path& root) {
    if (std::filesystem::exists(root)) return true;
    Finding f;
    f.rule = RuleId::kCFG1;
    f.severity = FindingSeverity::kError;
    f.entity = "scan-root";
    f.file = root.generic_string();
    f.message = "scan root does not exist: the scan would silently cover "
                "zero files (fix the path or drop the flag)";
    absorb({std::move(f)});
    return false;
}

void Analyzer::scan_sources(const std::filesystem::path& root) {
    if (!require_root(root)) return;
    ScanResult r = scan_source_tree(root);
    report_.analyzed.push_back("src:" + root.generic_string() + "(" +
                               std::to_string(r.files_scanned) + " files)");
    report_.suppressed_findings += r.suppressed;
    absorb(std::move(r.findings));
}

void Analyzer::scan_scenario_assembly(const std::filesystem::path& root) {
    if (!require_root(root)) return;
    ScanResult r = scan_scenario_tree(root);
    report_.analyzed.push_back("scenario:" + root.generic_string() + "(" +
                               std::to_string(r.files_scanned) + " files)");
    report_.suppressed_findings += r.suppressed;
    absorb(std::move(r.findings));
}

void Analyzer::scan_concurrency(
    const std::vector<std::filesystem::path>& roots) {
    std::vector<std::filesystem::path> present;
    for (const std::filesystem::path& root : roots) {
        if (require_root(root)) present.push_back(root);
    }
    ScanResult r = mcps::analysis::scan_concurrency(present);
    std::string label = "conc:";
    for (std::size_t i = 0; i < present.size(); ++i) {
        if (i) label += ',';
        label += present[i].generic_string();
    }
    report_.analyzed.push_back(label + "(" +
                               std::to_string(r.files_scanned) + " files)");
    report_.suppressed_findings += r.suppressed;
    absorb(std::move(r.findings));
}

void Analyzer::check_deadlines(const DeadlineOptions& opts, bool cross_check) {
    deadlines_ = lint_deadlines(opts);
    report_.analyzed.push_back("ta5:registry(" +
                               std::to_string(deadlines_.rows.size()) +
                               " presets)");
    absorb(deadlines_.findings);
    if (cross_check) {
        DeadlineCrossCheck cc = cross_check_deadlines(opts);
        report_.analyzed.push_back("ta5:cross-check(pca,xray)");
        absorb(std::move(cc.findings));
    }
}

}  // namespace mcps::analysis
