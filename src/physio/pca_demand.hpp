/// \file pca_demand.hpp
/// \brief Stochastic model of patient bolus-demand behaviour during PCA.
///
/// PCA safety analysis needs a realistic *demand process*: how often the
/// patient presses the bolus button given their current pain relief. We
/// model pain as a slowly varying baseline plus the analgesic effect of
/// the current effect-site concentration; button presses form a
/// non-homogeneous Poisson process whose intensity grows with unrelieved
/// pain. A "proxy press" mode models the well-documented hazard of
/// PCA-by-proxy (family members pressing the button for a sedated
/// patient), which defeats PCA's intrinsic safety feedback and is a key
/// motivating failure for the interlock.

#pragma once

#include "pk_model.hpp"
#include "sim/rng.hpp"
#include "units.hpp"

namespace mcps::physio {

/// Demand-process parameters.
struct DemandParameters {
    double baseline_pain = 6.5;       ///< 0-10 scale at zero analgesia
    double analgesia_ec50_ng_ml = 20.0;  ///< concentration halving pain
    double max_press_rate_per_hour = 18.0;  ///< at pain 10
    double pain_press_threshold = 2.0;  ///< below this pain, no presses
    double sedation_cutoff = 0.45;  ///< drive suppression above which the
                                    ///< patient is too sedated to press
    bool proxy_presses = false;  ///< PCA-by-proxy: presses continue
                                 ///< regardless of sedation
    double proxy_rate_per_hour = 10.0;
};

/// Generates button presses. Sample next-press gaps with exponential
/// inter-arrival at the current intensity; callers re-evaluate the
/// intensity every tick (thinning is unnecessary at our tick rates).
class DemandModel {
public:
    DemandModel(DemandParameters params, mcps::sim::RngStream rng);

    /// Current pain score [0,10] given analgesic effect-site concentration.
    [[nodiscard]] double pain(Concentration effect_site) const noexcept;

    /// Whether a press occurs within the next \p dt_seconds, given the
    /// patient's current analgesic state and sedation level.
    /// \param drive_suppression fractional respiratory-drive suppression
    ///        (used as a sedation proxy — a deeply sedated patient cannot
    ///        press the button, which is PCA's intrinsic safety feature).
    [[nodiscard]] bool poll_press(double dt_seconds, Concentration effect_site,
                                  double drive_suppression);

    [[nodiscard]] const DemandParameters& parameters() const noexcept {
        return params_;
    }

private:
    DemandParameters params_;
    mcps::sim::RngStream rng_;
};

}  // namespace mcps::physio
