/// \file patient.hpp
/// \brief Whole-patient physiological model: PK/PD opioid response,
/// respiratory gas exchange, and cardiovascular reaction.
///
/// This is the "patient in the loop" the DAC'10 paper identifies as the
/// missing piece for validating closed-loop MCPS: a deterministic,
/// parameterizable virtual patient whose respiratory depression under
/// opioid load is what the PCA safety interlock must detect and arrest.
///
/// Structure (all first-order / RK4-integrated continuous dynamics):
///
///   drug input --> PkTwoCompartment --> effect-site Ce
///   Ce --> Hill PD --> respiratory drive suppression
///   drive (+ hypercapnic feedback) --> RR, tidal volume --> alveolar
///   ventilation --> PaCO2 dynamics --> alveolar O2 --> PaO2 --> SpO2
///   (Severinghaus); hypoxia/pain --> heart rate.
///
/// The model is intentionally *qualitative-fidelity*: parameter defaults
/// produce clinically plausible trajectories (apnea after large opioid
/// overshoot, SpO2 collapse over minutes not seconds, EtCO2 loss at
/// apnea), which is exactly what interlock/alarm logic must be exercised
/// against. It is not a predictive clinical model.

#pragma once

#include <optional>
#include <string>

#include "pk_model.hpp"
#include "units.hpp"

namespace mcps::physio {

/// Pharmacodynamic (Hill) parameters mapping effect-site concentration to
/// fractional respiratory-drive suppression in [0, emax].
struct PdParameters {
    double ec50_ng_ml = 50.0;  ///< concentration of half-maximal depression
    double gamma = 2.4;        ///< Hill steepness
    double emax = 1.0;         ///< maximal achievable suppression

    void validate() const;
};

/// Fractional drive suppression for a given effect-site concentration.
[[nodiscard]] double hill_effect(const PdParameters& pd, Concentration ce);

/// Respiratory / gas-exchange parameters.
struct RespiratoryParameters {
    double baseline_rr_per_min = 14.0;
    double baseline_tidal_ml = 480.0;
    double deadspace_ml = 150.0;
    double baseline_paco2_mmhg = 40.0;
    double fio2 = 0.21;              ///< inspired O2 fraction
    double aa_gradient_mmhg = 8.0;   ///< alveolar-arterial O2 gradient
    double tau_co2_s = 110.0;        ///< PaCO2 equilibration time constant
    double tau_o2_s = 35.0;          ///< PaO2 equilibration time constant
    double apnea_drive_threshold = 0.16;  ///< drive below this => apnea
    double co2_gain = 1.1;  ///< hypercapnic ventilatory feedback gain
    double apnea_paco2_rise_mmhg_per_s = 0.06;  ///< classic apneic CO2 rise

    void validate() const;
};

/// Cardiovascular parameters (heart-rate response only).
struct CardioParameters {
    double baseline_hr_bpm = 76.0;
    double hypoxia_tachycardia_gain = 0.9;  ///< HR rise per unit desaturation
    double severe_hypoxia_spo2 = 62.0;      ///< below this: bradycardia
    double tau_hr_s = 20.0;

    void validate() const;
};

/// Complete per-patient parameter set.
struct PatientParameters {
    std::string label = "adult-default";
    double weight_kg = 75.0;
    PkParameters pk{};
    PdParameters pd{};
    RespiratoryParameters resp{};
    CardioParameters cardio{};

    void validate() const;
};

/// Mechanical-ventilation override (ventilator scenario, E4): while
/// engaged the ventilator dictates RR and tidal volume and the intrinsic
/// respiratory drive is bypassed.
struct MechanicalVentilation {
    RespRate rate{RespRate::per_minute(12.0)};
    double tidal_ml = 500.0;
};

/// A snapshot of the vital signs a bedside monitor could observe.
struct Vitals {
    SpO2 spo2{};
    RespRate resp_rate{};
    EtCO2 etco2{};
    HeartRate heart_rate{};
    Concentration effect_site{};
    bool apneic = false;
};

/// The virtual patient. Deterministic: identical inputs yield identical
/// trajectories (all stochastics live in sensor/device models).
class Patient {
public:
    explicit Patient(PatientParameters params);

    /// Advance physiology by \p dt_seconds (> 0, recommended <= 0.5 s).
    void step(double dt_seconds);

    /// Drug inputs.
    void bolus(Dose d) { pk_.bolus(d); }
    void set_infusion_rate(InfusionRate r);
    [[nodiscard]] InfusionRate infusion_rate() const noexcept { return rate_; }

    /// Administer an opioid antagonist (naloxone-like rescue). While
    /// active it multiplies the effective PD EC50 by (1 + potency *
    /// level); the level starts at 1 and decays exponentially with the
    /// given half-life — the classic "naloxone wears off before the
    /// opioid does" renarcotization hazard is therefore reproduced.
    void give_antagonist(double potency, double half_life_s);
    /// Current antagonist level in [0, 1].
    [[nodiscard]] double antagonist_level() const noexcept {
        return antagonist_level_;
    }

    /// Engage/disengage mechanical ventilation. While engaged with a
    /// nonzero rate, the ventilator breathes for the patient; engaging with
    /// rate zero models a *paused* ventilator (apnea) on a patient who
    /// cannot breathe spontaneously.
    void set_mechanical_ventilation(std::optional<MechanicalVentilation> mv) {
        mech_vent_ = mv;
    }
    [[nodiscard]] bool on_ventilator() const noexcept {
        return mech_vent_.has_value();
    }

    /// Observables.
    [[nodiscard]] Vitals vitals() const;
    [[nodiscard]] SpO2 spo2() const noexcept { return SpO2::percent_clamped(spo2_); }
    [[nodiscard]] RespRate resp_rate() const noexcept {
        return RespRate::per_minute_clamped(rr_);
    }
    [[nodiscard]] EtCO2 etco2() const noexcept;
    [[nodiscard]] HeartRate heart_rate() const noexcept {
        return HeartRate::bpm_clamped(hr_);
    }
    [[nodiscard]] bool is_apneic() const noexcept { return rr_ <= 0.5; }
    /// Current respiratory drive in [0, 1+]; < apnea threshold means apnea.
    [[nodiscard]] double respiratory_drive() const noexcept { return drive_; }
    [[nodiscard]] double paco2_mmhg() const noexcept { return paco2_; }
    [[nodiscard]] double pao2_mmhg() const noexcept { return pao2_; }

    [[nodiscard]] const PkTwoCompartment& pk() const noexcept { return pk_; }
    [[nodiscard]] const PatientParameters& parameters() const noexcept {
        return params_;
    }

    /// Simulated elapsed time, seconds (sum of all steps).
    [[nodiscard]] double elapsed_seconds() const noexcept { return elapsed_s_; }

private:
    void step_respiration(double dt);
    void step_gas_exchange(double dt);
    void step_cardio(double dt);

    PatientParameters params_;
    PkTwoCompartment pk_;
    InfusionRate rate_{};
    std::optional<MechanicalVentilation> mech_vent_;
    double antagonist_level_{0};
    double antagonist_potency_{0};
    double antagonist_half_life_s_{1};

    double drive_{1.0};
    double rr_;      ///< breaths/min
    double tidal_ml_;
    double paco2_;   ///< mmHg
    double pao2_;    ///< mmHg
    double spo2_;    ///< percent
    double hr_;      ///< bpm
    double elapsed_s_{0};
};

/// Severinghaus (1979) oxyhemoglobin dissociation approximation:
/// SpO2(PaO2) = 100 / (1 + 23400 / (p^3 + 150 p)).
[[nodiscard]] double severinghaus_spo2(double pao2_mmhg) noexcept;

}  // namespace mcps::physio
