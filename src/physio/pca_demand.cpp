#include "pca_demand.hpp"

#include <algorithm>
#include <cmath>

namespace mcps::physio {

DemandModel::DemandModel(DemandParameters params, mcps::sim::RngStream rng)
    : params_{params}, rng_{rng} {}

double DemandModel::pain(Concentration effect_site) const noexcept {
    const double c = effect_site.as_ng_per_ml();
    const double relief = c / (c + params_.analgesia_ec50_ng_ml);
    return std::clamp(params_.baseline_pain * (1.0 - relief), 0.0, 10.0);
}

bool DemandModel::poll_press(double dt_seconds, Concentration effect_site,
                             double drive_suppression) {
    double rate_per_hour = 0.0;

    if (params_.proxy_presses) {
        // A proxy presser ignores both pain relief and sedation.
        rate_per_hour = params_.proxy_rate_per_hour;
    } else {
        if (drive_suppression >= params_.sedation_cutoff) {
            return false;  // too sedated to press: intrinsic PCA safety
        }
        const double p = pain(effect_site);
        if (p < params_.pain_press_threshold) return false;
        rate_per_hour = params_.max_press_rate_per_hour * (p / 10.0);
    }

    if (rate_per_hour <= 0.0) return false;
    const double p_press = 1.0 - std::exp(-rate_per_hour * dt_seconds / 3600.0);
    return rng_.bernoulli(p_press);
}

}  // namespace mcps::physio
