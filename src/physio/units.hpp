/// \file units.hpp
/// \brief Strong types for the physical/clinical quantities exchanged
/// between the patient model, devices and clinical apps.
///
/// Per Core Guideline I.4, values with units never travel as raw doubles
/// across public interfaces: a Dose cannot be accidentally passed where a
/// Concentration is expected.

#pragma once

#include <compare>
#include <stdexcept>

namespace mcps::physio {

/// Drug mass in milligrams.
class Dose {
public:
    constexpr Dose() = default;
    [[nodiscard]] static constexpr Dose mg(double v) { return Dose{v}; }
    [[nodiscard]] constexpr double as_mg() const noexcept { return mg_; }

    constexpr auto operator<=>(const Dose&) const = default;
    friend constexpr Dose operator+(Dose a, Dose b) { return Dose{a.mg_ + b.mg_}; }
    friend constexpr Dose operator-(Dose a, Dose b) { return Dose{a.mg_ - b.mg_}; }
    friend constexpr Dose operator*(Dose a, double k) { return Dose{a.mg_ * k}; }
    friend constexpr Dose operator*(double k, Dose a) { return Dose{a.mg_ * k}; }
    constexpr Dose& operator+=(Dose o) {
        mg_ += o.mg_;
        return *this;
    }
    constexpr Dose& operator-=(Dose o) {
        mg_ -= o.mg_;
        return *this;
    }
    [[nodiscard]] static constexpr Dose zero() { return {}; }

private:
    explicit constexpr Dose(double v) : mg_{v} {}
    double mg_{0};
};

/// Drug infusion rate in milligrams per hour.
class InfusionRate {
public:
    constexpr InfusionRate() = default;
    [[nodiscard]] static constexpr InfusionRate mg_per_hour(double v) {
        return InfusionRate{v};
    }
    [[nodiscard]] constexpr double as_mg_per_hour() const noexcept { return v_; }
    [[nodiscard]] constexpr double as_mg_per_second() const noexcept {
        return v_ / 3600.0;
    }
    constexpr auto operator<=>(const InfusionRate&) const = default;
    [[nodiscard]] static constexpr InfusionRate zero() { return {}; }

private:
    explicit constexpr InfusionRate(double v) : v_{v} {}
    double v_{0};
};

/// Blood plasma drug concentration in nanograms per milliliter.
class Concentration {
public:
    constexpr Concentration() = default;
    [[nodiscard]] static constexpr Concentration ng_per_ml(double v) {
        return Concentration{v};
    }
    [[nodiscard]] constexpr double as_ng_per_ml() const noexcept { return v_; }
    constexpr auto operator<=>(const Concentration&) const = default;
    [[nodiscard]] static constexpr Concentration zero() { return {}; }

private:
    explicit constexpr Concentration(double v) : v_{v} {}
    double v_{0};
};

/// Peripheral oxygen saturation, percent [0, 100].
class SpO2 {
public:
    constexpr SpO2() = default;
    /// \throws std::out_of_range outside [0, 100].
    [[nodiscard]] static constexpr SpO2 percent(double v) {
        if (v < 0.0 || v > 100.0) {
            throw std::out_of_range("SpO2 must be within [0, 100] percent");
        }
        return SpO2{v};
    }
    /// Clamping constructor for noisy sensor paths.
    [[nodiscard]] static constexpr SpO2 percent_clamped(double v) noexcept {
        return SpO2{v < 0.0 ? 0.0 : (v > 100.0 ? 100.0 : v)};
    }
    [[nodiscard]] constexpr double as_percent() const noexcept { return v_; }
    constexpr auto operator<=>(const SpO2&) const = default;

private:
    explicit constexpr SpO2(double v) : v_{v} {}
    double v_{100.0};
};

/// Respiratory rate in breaths per minute.
class RespRate {
public:
    constexpr RespRate() = default;
    [[nodiscard]] static constexpr RespRate per_minute(double v) {
        if (v < 0.0) throw std::out_of_range("RespRate cannot be negative");
        return RespRate{v};
    }
    [[nodiscard]] static constexpr RespRate per_minute_clamped(double v) noexcept {
        return RespRate{v < 0.0 ? 0.0 : v};
    }
    [[nodiscard]] constexpr double as_per_minute() const noexcept { return v_; }
    constexpr auto operator<=>(const RespRate&) const = default;

private:
    explicit constexpr RespRate(double v) : v_{v} {}
    double v_{12.0};
};

/// End-tidal CO2 partial pressure in mmHg.
class EtCO2 {
public:
    constexpr EtCO2() = default;
    [[nodiscard]] static constexpr EtCO2 mmhg(double v) {
        if (v < 0.0) throw std::out_of_range("EtCO2 cannot be negative");
        return EtCO2{v};
    }
    [[nodiscard]] static constexpr EtCO2 mmhg_clamped(double v) noexcept {
        return EtCO2{v < 0.0 ? 0.0 : v};
    }
    [[nodiscard]] constexpr double as_mmhg() const noexcept { return v_; }
    constexpr auto operator<=>(const EtCO2&) const = default;

private:
    explicit constexpr EtCO2(double v) : v_{v} {}
    double v_{38.0};
};

/// Heart rate in beats per minute.
class HeartRate {
public:
    constexpr HeartRate() = default;
    [[nodiscard]] static constexpr HeartRate bpm(double v) {
        if (v < 0.0) throw std::out_of_range("HeartRate cannot be negative");
        return HeartRate{v};
    }
    [[nodiscard]] static constexpr HeartRate bpm_clamped(double v) noexcept {
        return HeartRate{v < 0.0 ? 0.0 : v};
    }
    [[nodiscard]] constexpr double as_bpm() const noexcept { return v_; }
    constexpr auto operator<=>(const HeartRate&) const = default;

private:
    explicit constexpr HeartRate(double v) : v_{v} {}
    double v_{72.0};
};

}  // namespace mcps::physio
