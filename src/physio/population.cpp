#include "population.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mcps::physio {

std::string_view to_string(Archetype a) noexcept {
    switch (a) {
        case Archetype::kTypicalAdult: return "typical-adult";
        case Archetype::kOpioidSensitive: return "opioid-sensitive";
        case Archetype::kOpioidTolerant: return "opioid-tolerant";
        case Archetype::kElderly: return "elderly";
        case Archetype::kHighRisk: return "high-risk";
    }
    return "unknown";
}

const std::vector<Archetype>& all_archetypes() {
    static const std::vector<Archetype> kAll{
        Archetype::kTypicalAdult, Archetype::kOpioidSensitive,
        Archetype::kOpioidTolerant, Archetype::kElderly, Archetype::kHighRisk,
    };
    return kAll;
}

PatientParameters nominal_parameters(Archetype a) {
    PatientParameters p;  // defaults == typical adult
    p.label = std::string{to_string(a)};
    switch (a) {
        case Archetype::kTypicalAdult:
            break;
        case Archetype::kOpioidSensitive:
            p.pd.ec50_ng_ml = 28.0;
            p.pk.k10_per_min = 0.07;
            break;
        case Archetype::kOpioidTolerant:
            p.pd.ec50_ng_ml = 90.0;
            break;
        case Archetype::kElderly:
            p.weight_kg = 62.0;
            p.pk.k10_per_min = 0.065;
            p.pk.v1_liters = 13.0;
            p.resp.baseline_rr_per_min = 13.0;
            p.resp.baseline_tidal_ml = 420.0;
            p.pd.ec50_ng_ml = 38.0;
            break;
        case Archetype::kHighRisk:
            p.weight_kg = 98.0;
            p.pd.ec50_ng_ml = 32.0;
            p.pd.gamma = 3.0;
            p.resp.apnea_drive_threshold = 0.24;
            p.resp.aa_gradient_mmhg = 14.0;
            break;
    }
    p.validate();
    return p;
}

namespace {
/// Log-normal multiplier with unit median and coefficient of variation cv.
double ln_mult(mcps::sim::RngStream& rng, double cv) {
    if (cv <= 0) return 1.0;
    const double sigma = std::sqrt(std::log(1.0 + cv * cv));
    return rng.lognormal(0.0, sigma);
}
}  // namespace

PatientParameters sample_patient(Archetype a, mcps::sim::RngStream& rng,
                                 const VariabilitySpec& var) {
    PatientParameters p = nominal_parameters(a);
    p.weight_kg *= ln_mult(rng, 0.15);
    p.pk.v1_liters *= ln_mult(rng, var.cv_pk);
    p.pk.k10_per_min *= ln_mult(rng, var.cv_pk);
    p.pk.k12_per_min *= ln_mult(rng, var.cv_pk);
    p.pk.k21_per_min *= ln_mult(rng, var.cv_pk);
    p.pk.ke0_per_min *= ln_mult(rng, var.cv_pk);
    p.pd.ec50_ng_ml *= ln_mult(rng, var.cv_pd);
    p.pd.gamma *= ln_mult(rng, var.cv_pd * 0.5);
    p.resp.baseline_rr_per_min *= ln_mult(rng, var.cv_resp);
    p.resp.baseline_tidal_ml *= ln_mult(rng, var.cv_resp);
    // Keep anatomically required orderings intact after perturbation.
    if (p.resp.baseline_tidal_ml <= p.resp.deadspace_ml + 50.0) {
        p.resp.baseline_tidal_ml = p.resp.deadspace_ml + 50.0;
    }
    p.validate();
    return p;
}

PatientParameters sample_patient_indexed(Archetype a,
                                         std::uint64_t master_seed,
                                         std::uint64_t index,
                                         const VariabilitySpec& var) {
    char name[48];
    std::snprintf(name, sizeof name, "population.patient.%llu",
                  static_cast<unsigned long long>(index));
    mcps::sim::RngStream rng{master_seed, name};
    return sample_patient(a, rng, var);
}

std::vector<PatientParameters> sample_population(Archetype a, std::size_t n,
                                                 mcps::sim::RngStream& rng,
                                                 const VariabilitySpec& var) {
    std::vector<PatientParameters> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(sample_patient(a, rng, var));
    return out;
}

}  // namespace mcps::physio
