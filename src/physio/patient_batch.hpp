/// \file patient_batch.hpp
/// \brief Struct-of-arrays batched stepping for populations of patients.
///
/// `Patient` is the scalar reference model; `PatientBatch` holds the same
/// state for N patients in parallel arrays and advances any contiguous
/// lane range with one call. The per-lane arithmetic replicates the
/// scalar expression sequences *exactly* (same operations, same order,
/// same clamps), so under the project's default compile flags (no
/// -ffast-math, no FMA contraction on the generic x86-64 target) a batch
/// lane is bit-identical to a scalar `Patient` fed the same inputs — a
/// property the differential suite in tests/hospital pins.
///
/// What the batch buys is locality, not different math: stepping
/// thousands of scalar `Patient` objects walks heap-scattered objects
/// (each carrying a `std::string` label and an optional ventilator
/// block); the batch streams dense `double` arrays. Mechanical
/// ventilation is intentionally NOT supported here — it is an E4
/// single-patient scenario feature, and hospital-scale cohorts are
/// spontaneously breathing PCA patients. `add()` rejects nothing, but
/// there is simply no ventilator input on this API.
///
/// Thread-safety: disjoint lane ranges may be stepped from different
/// threads concurrently (no shared mutable state across lanes); the
/// hospital engine exploits this by giving each ward a contiguous range.

#pragma once

#include <cstddef>
#include <vector>

#include "patient.hpp"

namespace mcps::physio {

/// SoA state + parameters for a cohort of spontaneously breathing
/// patients. Lanes are append-only; indices are stable for the lifetime
/// of the batch.
class PatientBatch {
public:
    PatientBatch() = default;

    /// Append one patient initialized exactly like `Patient{params}`
    /// (baseline vitals, gas-exchange equilibrium PaO2). Returns the new
    /// lane index. \throws std::invalid_argument on invalid parameters.
    std::size_t add(const PatientParameters& params);

    void reserve(std::size_t n);
    [[nodiscard]] std::size_t size() const noexcept { return n_; }

    /// Advance lanes [first, last) by \p dt_seconds (> 0). Replicates
    /// `Patient::step` per lane. Ranges must be in-bounds.
    void step_range(std::size_t first, std::size_t last, double dt_seconds);
    /// Advance every lane.
    void step_all(double dt_seconds) { step_range(0, n_, dt_seconds); }

    /// Drug inputs (mirror the scalar API).
    void bolus(std::size_t i, Dose d);
    void set_infusion_rate(std::size_t i, InfusionRate r);
    [[nodiscard]] InfusionRate infusion_rate(std::size_t i) const noexcept {
        return InfusionRate::mg_per_hour(rate_mg_h_[i]);
    }
    void give_antagonist(std::size_t i, double potency, double half_life_s);
    [[nodiscard]] double antagonist_level(std::size_t i) const noexcept {
        return antag_level_[i];
    }

    /// Observables (same value types and clamps as `Patient`).
    [[nodiscard]] SpO2 spo2(std::size_t i) const noexcept {
        return SpO2::percent_clamped(spo2_[i]);
    }
    [[nodiscard]] RespRate resp_rate(std::size_t i) const noexcept {
        return RespRate::per_minute_clamped(rr_[i]);
    }
    [[nodiscard]] EtCO2 etco2(std::size_t i) const noexcept {
        if (is_apneic(i)) return EtCO2::mmhg_clamped(0.0);
        return EtCO2::mmhg_clamped(paco2_[i] - 4.0);
    }
    [[nodiscard]] HeartRate heart_rate(std::size_t i) const noexcept {
        return HeartRate::bpm_clamped(hr_[i]);
    }
    [[nodiscard]] bool is_apneic(std::size_t i) const noexcept {
        return rr_[i] <= 0.5;
    }
    [[nodiscard]] double respiratory_drive(std::size_t i) const noexcept {
        return drive_[i];
    }
    [[nodiscard]] double paco2_mmhg(std::size_t i) const noexcept {
        return paco2_[i];
    }
    [[nodiscard]] double pao2_mmhg(std::size_t i) const noexcept {
        return pao2_[i];
    }
    /// Raw (unclamped) SpO2 percent, for aggregation without quantization.
    [[nodiscard]] double spo2_raw(std::size_t i) const noexcept {
        return spo2_[i];
    }
    [[nodiscard]] Vitals vitals(std::size_t i) const {
        return Vitals{spo2(i),      resp_rate(i),  etco2(i),
                      heart_rate(i), effect_site(i), is_apneic(i)};
    }

    /// PK observables.
    [[nodiscard]] Concentration effect_site(std::size_t i) const noexcept {
        return Concentration::ng_per_ml(ce_[i]);
    }
    [[nodiscard]] Concentration plasma(std::size_t i) const noexcept {
        return Concentration::ng_per_ml(a1_[i] * 1000.0 / v1_[i]);
    }
    [[nodiscard]] Dose body_burden(std::size_t i) const noexcept {
        return Dose::mg(a1_[i] + a2_[i]);
    }
    [[nodiscard]] Dose total_delivered(std::size_t i) const noexcept {
        return Dose::mg(delivered_[i]);
    }
    [[nodiscard]] Dose total_eliminated(std::size_t i) const noexcept {
        return Dose::mg(eliminated_[i]);
    }

    [[nodiscard]] const PatientParameters& parameters(std::size_t i) const {
        return params_[i];
    }
    [[nodiscard]] double elapsed_seconds(std::size_t i) const noexcept {
        return elapsed_[i];
    }

    /// Approximate resident bytes of all lane arrays (capacity-based).
    /// The hospital flat-memory test asserts this scales with patients,
    /// never with simulated time.
    [[nodiscard]] std::size_t state_bytes() const noexcept;

private:
    std::size_t n_ = 0;

    // Parameters, hot (one entry per lane).
    std::vector<double> v1_, k10_, k12_, k21_, ke0_;
    std::vector<double> ec50_, gamma_, emax_;
    std::vector<double> base_rr_, base_vt_, deadspace_, base_paco2_, fio2_,
        aa_grad_, tau_co2_, tau_o2_, apnea_thresh_, co2_gain_, apnea_rise_;
    std::vector<double> base_hr_, hypox_gain_, severe_spo2_, tau_hr_;

    // State (one entry per lane).
    std::vector<double> a1_, a2_, ce_, delivered_, eliminated_;
    std::vector<double> rate_mg_h_;
    std::vector<double> antag_level_, antag_potency_, antag_hl_;
    std::vector<double> drive_, rr_, tidal_, paco2_, pao2_, spo2_, hr_,
        elapsed_;

    // Cold copy, only touched by parameters(i).
    std::vector<PatientParameters> params_;
};

}  // namespace mcps::physio
