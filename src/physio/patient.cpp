#include "patient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcps::physio {

void PdParameters::validate() const {
    if (ec50_ng_ml <= 0) throw std::invalid_argument("PdParameters: ec50 <= 0");
    if (gamma <= 0) throw std::invalid_argument("PdParameters: gamma <= 0");
    if (emax <= 0 || emax > 1.0) {
        throw std::invalid_argument("PdParameters: emax outside (0, 1]");
    }
}

double hill_effect(const PdParameters& pd, Concentration ce) {
    const double c = ce.as_ng_per_ml();
    if (c <= 0) return 0.0;
    const double num = std::pow(c, pd.gamma);
    return pd.emax * num / (num + std::pow(pd.ec50_ng_ml, pd.gamma));
}

void RespiratoryParameters::validate() const {
    if (baseline_rr_per_min <= 0) {
        throw std::invalid_argument("RespiratoryParameters: baseline RR <= 0");
    }
    if (baseline_tidal_ml <= deadspace_ml) {
        throw std::invalid_argument(
            "RespiratoryParameters: tidal volume must exceed deadspace");
    }
    if (fio2 <= 0 || fio2 > 1.0) {
        throw std::invalid_argument("RespiratoryParameters: fio2 outside (0, 1]");
    }
    if (tau_co2_s <= 0 || tau_o2_s <= 0) {
        throw std::invalid_argument("RespiratoryParameters: time constant <= 0");
    }
    if (apnea_drive_threshold < 0 || apnea_drive_threshold >= 1.0) {
        throw std::invalid_argument(
            "RespiratoryParameters: apnea threshold outside [0, 1)");
    }
}

void CardioParameters::validate() const {
    if (baseline_hr_bpm <= 0) {
        throw std::invalid_argument("CardioParameters: baseline HR <= 0");
    }
    if (tau_hr_s <= 0) throw std::invalid_argument("CardioParameters: tau <= 0");
}

void PatientParameters::validate() const {
    if (weight_kg <= 0) throw std::invalid_argument("PatientParameters: weight <= 0");
    pk.validate();
    pd.validate();
    resp.validate();
    cardio.validate();
}

double severinghaus_spo2(double pao2_mmhg) noexcept {
    if (pao2_mmhg <= 0) return 0.0;
    const double p = pao2_mmhg;
    const double s = 100.0 / (1.0 + 23400.0 / (p * p * p + 150.0 * p));
    return std::clamp(s, 0.0, 100.0);
}

Patient::Patient(PatientParameters params)
    : params_{std::move(params)},
      pk_{params_.pk},
      rr_{params_.resp.baseline_rr_per_min},
      tidal_ml_{params_.resp.baseline_tidal_ml},
      paco2_{params_.resp.baseline_paco2_mmhg},
      hr_{params_.cardio.baseline_hr_bpm} {
    params_.validate();
    // Start at gas-exchange equilibrium for the baseline ventilation.
    const double pao2_eq = params_.resp.fio2 * (760.0 - 47.0) -
                           paco2_ / 0.8 - params_.resp.aa_gradient_mmhg;
    pao2_ = pao2_eq;
    spo2_ = severinghaus_spo2(pao2_);
}

void Patient::set_infusion_rate(InfusionRate r) {
    if (r < InfusionRate::zero()) {
        throw std::invalid_argument("set_infusion_rate: negative rate");
    }
    rate_ = r;
}

void Patient::give_antagonist(double potency, double half_life_s) {
    if (potency <= 0 || half_life_s <= 0) {
        throw std::invalid_argument("give_antagonist: non-positive parameter");
    }
    antagonist_level_ = 1.0;
    antagonist_potency_ = potency;
    antagonist_half_life_s_ = half_life_s;
}

void Patient::step(double dt_seconds) {
    if (dt_seconds <= 0) throw std::invalid_argument("Patient::step: dt <= 0");
    pk_.step(dt_seconds, rate_);
    if (antagonist_level_ > 0) {
        antagonist_level_ *=
            std::exp(-dt_seconds * 0.6931471805599453 / antagonist_half_life_s_);
        if (antagonist_level_ < 1e-4) antagonist_level_ = 0.0;
    }
    step_respiration(dt_seconds);
    step_gas_exchange(dt_seconds);
    step_cardio(dt_seconds);
    elapsed_s_ += dt_seconds;
}

void Patient::step_respiration(double dt) {
    const auto& rp = params_.resp;

    if (mech_vent_) {
        // Ventilator dictates the breathing pattern outright.
        rr_ = mech_vent_->rate.as_per_minute();
        tidal_ml_ = mech_vent_->tidal_ml;
        drive_ = 1.0;  // drive is irrelevant while ventilated
        return;
    }

    // Drug suppression of central respiratory drive; an active
    // antagonist competitively raises the effective EC50.
    PdParameters pd = params_.pd;
    pd.ec50_ng_ml *= 1.0 + antagonist_potency_ * antagonist_level_;
    const double effect = hill_effect(pd, pk_.effect_site());
    double drive = 1.0 - effect;

    // Hypercapnic ventilatory response partially fights the depression
    // (the classic CO2 feedback loop); it cannot rescue a fully
    // suppressed drive, modeled by multiplying rather than adding.
    const double co2_excess =
        std::max(0.0, (paco2_ - rp.baseline_paco2_mmhg) / rp.baseline_paco2_mmhg);
    drive *= 1.0 + rp.co2_gain * co2_excess;
    drive = std::clamp(drive, 0.0, 1.5);
    drive_ = drive;

    if (drive < rp.apnea_drive_threshold) {
        // Apnea: no spontaneous breaths.
        rr_ = 0.0;
        tidal_ml_ = 0.0;
        return;
    }

    // Opioids depress rate more than depth; split the suppression with
    // exponents summing to 1 so minute ventilation scales ~linearly with
    // drive.
    const double target_rr = rp.baseline_rr_per_min * std::pow(drive, 0.7);
    const double target_vt = rp.baseline_tidal_ml * std::pow(drive, 0.3);
    // Breathing pattern adapts within a few breaths (~15 s time constant).
    const double alpha = 1.0 - std::exp(-dt / 15.0);
    rr_ += alpha * (target_rr - rr_);
    tidal_ml_ += alpha * (target_vt - tidal_ml_);
}

void Patient::step_gas_exchange(double dt) {
    const auto& rp = params_.resp;

    // Alveolar minute ventilation, L/min.
    const double va =
        rr_ * std::max(0.0, tidal_ml_ - rp.deadspace_ml) / 1000.0;
    const double va_base =
        rp.baseline_rr_per_min * (rp.baseline_tidal_ml - rp.deadspace_ml) /
        1000.0;

    if (va < 0.05 * va_base) {
        // Effective apnea: PaCO2 rises at the textbook apneic rate.
        paco2_ += rp.apnea_paco2_rise_mmhg_per_s * dt;
    } else {
        // Steady-state alveolar CO2 is inversely proportional to alveolar
        // ventilation (constant CO2 production); approach it first-order.
        const double paco2_eq = std::min(
            130.0, rp.baseline_paco2_mmhg * va_base / va);
        paco2_ += (paco2_eq - paco2_) * (1.0 - std::exp(-dt / rp.tau_co2_s));
    }
    paco2_ = std::clamp(paco2_, 15.0, 140.0);

    // Alveolar gas equation -> equilibrium arterial PO2.
    double pao2_eq =
        rp.fio2 * (760.0 - 47.0) - paco2_ / 0.8 - rp.aa_gradient_mmhg;
    if (va < 0.05 * va_base) {
        // During apnea the alveolar store is consumed; equilibrium drops
        // far below the alveolar-gas value. 30 mmHg is a floor representing
        // mixed-venous admixture.
        pao2_eq = 30.0;
    }
    pao2_eq = std::max(20.0, pao2_eq);
    pao2_ += (pao2_eq - pao2_) * (1.0 - std::exp(-dt / rp.tau_o2_s));

    spo2_ = severinghaus_spo2(pao2_);
}

void Patient::step_cardio(double dt) {
    const auto& cp = params_.cardio;
    double target = cp.baseline_hr_bpm;
    const double desat = std::max(0.0, 96.0 - spo2_);
    if (spo2_ > cp.severe_hypoxia_spo2) {
        // Compensatory tachycardia proportional to desaturation.
        target += cp.hypoxia_tachycardia_gain * desat;
    } else {
        // Severe hypoxia: decompensation into bradycardia.
        target = std::max(25.0, cp.baseline_hr_bpm - 1.5 * desat);
    }
    hr_ += (target - hr_) * (1.0 - std::exp(-dt / cp.tau_hr_s));
}

EtCO2 Patient::etco2() const noexcept {
    // A capnometer measures exhaled CO2 per breath; with no breaths there
    // is no waveform and the reading collapses toward zero.
    if (is_apneic()) return EtCO2::mmhg_clamped(0.0);
    // Normal arterial-to-end-tidal gradient ~4 mmHg.
    return EtCO2::mmhg_clamped(paco2_ - 4.0);
}

Vitals Patient::vitals() const {
    return Vitals{
        spo2(),          resp_rate(), etco2(),
        heart_rate(),    pk_.effect_site(),
        is_apneic(),
    };
}

}  // namespace mcps::physio
