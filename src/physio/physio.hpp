/// \file physio.hpp
/// \brief Umbrella header for the mcps_physio patient-model library.

#pragma once

#include "patient.hpp"     // IWYU pragma: export
#include "pca_demand.hpp"  // IWYU pragma: export
#include "pk_model.hpp"    // IWYU pragma: export
#include "population.hpp"  // IWYU pragma: export
#include "units.hpp"       // IWYU pragma: export
