/// \file pk_model.hpp
/// \brief Two-compartment pharmacokinetic model with an effect-site
/// compartment, used to simulate opioid disposition during PCA therapy.
///
/// This reproduces the standard mammillary two-compartment structure used
/// throughout the infusion-pump verification literature (the patient-model
/// side of the GPCA safety work the DAC'10 paper describes):
///
///   dA1/dt = u(t) - (k10 + k12) A1 + k21 A2      (central, mg)
///   dA2/dt = k12 A1 - k21 A2                      (peripheral, mg)
///   dCe/dt = ke0 (C1 - Ce)                        (effect site, ng/ml)
///
/// where C1 = A1 / V1 is the plasma concentration and u(t) the drug input
/// (infusion + boluses). Integration is classical RK4 with a caller-chosen
/// step; for the stiffness range of clinical opioid parameters, 100 ms
/// steps give ~1e-9 relative error (verified in tests against the analytic
/// one-compartment solution and conservation properties).

#pragma once

#include <stdexcept>

#include "units.hpp"

namespace mcps::physio {

/// Rate constants (1/min) and central volume (L) for the two-compartment
/// model. Defaults model a fentanyl-like synthetic opioid (fast
/// effect-site equilibration, minutes-scale redistribution): the agent
/// class for which closed-loop rescue is meaningful — stop the pump and
/// the effect recedes within tens of minutes. (Morphine's hours-scale
/// effect-site lag would make any interlock look useless and any
/// overdose irreversible within a shift; see DESIGN.md.)
struct PkParameters {
    double v1_liters = 16.0;  ///< central compartment volume
    double k10_per_min = 0.10;  ///< elimination from central
    double k12_per_min = 0.25;  ///< central -> peripheral
    double k21_per_min = 0.09;  ///< peripheral -> central
    double ke0_per_min = 0.35;  ///< plasma <-> effect-site equilibration

    /// \throws std::invalid_argument if any constant is non-positive.
    void validate() const;
};

/// The PK state integrator. A value type: copy it to branch trajectories.
class PkTwoCompartment {
public:
    explicit PkTwoCompartment(const PkParameters& params);

    /// Instantaneous IV bolus into the central compartment.
    void bolus(Dose d);

    /// Advance by \p dt_seconds (> 0) under a constant infusion \p rate.
    /// One RK4 step; call repeatedly with small dt for accuracy.
    void step(double dt_seconds, InfusionRate rate);

    /// Plasma (central) concentration, ng/ml.
    [[nodiscard]] Concentration plasma() const noexcept;
    /// Effect-site concentration, ng/ml — what the PD model consumes.
    [[nodiscard]] Concentration effect_site() const noexcept {
        return Concentration::ng_per_ml(ce_ng_ml_);
    }
    /// Total drug currently in the body (central + peripheral), mg.
    [[nodiscard]] Dose body_burden() const noexcept {
        return Dose::mg(a1_mg_ + a2_mg_);
    }
    /// Cumulative drug delivered (boluses + infusion), mg.
    [[nodiscard]] Dose total_delivered() const noexcept {
        return Dose::mg(delivered_mg_);
    }
    /// Cumulative drug eliminated, mg (for mass-balance checking).
    [[nodiscard]] Dose total_eliminated() const noexcept {
        return Dose::mg(eliminated_mg_);
    }

    [[nodiscard]] const PkParameters& parameters() const noexcept {
        return params_;
    }

private:
    PkParameters params_;
    double a1_mg_{0};
    double a2_mg_{0};
    double ce_ng_ml_{0};
    double delivered_mg_{0};
    double eliminated_mg_{0};
};

/// Analytic plasma concentration for a single bolus into a ONE-compartment
/// model (k12 = k21 = 0): C(t) = (D/V1) * exp(-k10 t). Used by tests and
/// the E7 bench to quantify integrator error.
[[nodiscard]] Concentration one_compartment_bolus_analytic(
    const PkParameters& params, Dose bolus, double t_seconds);

}  // namespace mcps::physio
