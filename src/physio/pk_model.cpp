#include "pk_model.hpp"

#include <array>
#include <cmath>

namespace mcps::physio {

void PkParameters::validate() const {
    if (v1_liters <= 0) throw std::invalid_argument("PkParameters: v1 <= 0");
    if (k10_per_min <= 0) throw std::invalid_argument("PkParameters: k10 <= 0");
    if (k12_per_min < 0) throw std::invalid_argument("PkParameters: k12 < 0");
    if (k21_per_min < 0) throw std::invalid_argument("PkParameters: k21 < 0");
    if (ke0_per_min <= 0) throw std::invalid_argument("PkParameters: ke0 <= 0");
}

PkTwoCompartment::PkTwoCompartment(const PkParameters& params)
    : params_{params} {
    params_.validate();
}

void PkTwoCompartment::bolus(Dose d) {
    if (d < Dose::zero()) throw std::invalid_argument("bolus: negative dose");
    a1_mg_ += d.as_mg();
    delivered_mg_ += d.as_mg();
}

namespace {
struct Deriv {
    double da1, da2, dce;
};
}  // namespace

void PkTwoCompartment::step(double dt_seconds, InfusionRate rate) {
    if (dt_seconds <= 0) throw std::invalid_argument("step: dt must be > 0");
    if (rate < InfusionRate::zero()) {
        throw std::invalid_argument("step: negative infusion rate");
    }
    const double dt_min = dt_seconds / 60.0;
    const double u_mg_per_min = rate.as_mg_per_hour() / 60.0;
    const double k10 = params_.k10_per_min;
    const double k12 = params_.k12_per_min;
    const double k21 = params_.k21_per_min;
    const double ke0 = params_.ke0_per_min;
    const double v1 = params_.v1_liters;

    auto f = [&](double a1, double a2, double ce) -> Deriv {
        // Plasma concentration in ng/ml == ug/L: a1 [mg] * 1000 / v1 [L].
        const double c1 = a1 * 1000.0 / v1;
        return Deriv{
            u_mg_per_min - (k10 + k12) * a1 + k21 * a2,
            k12 * a1 - k21 * a2,
            ke0 * (c1 - ce),
        };
    };

    const Deriv k1 = f(a1_mg_, a2_mg_, ce_ng_ml_);
    const Deriv k2 = f(a1_mg_ + 0.5 * dt_min * k1.da1,
                       a2_mg_ + 0.5 * dt_min * k1.da2,
                       ce_ng_ml_ + 0.5 * dt_min * k1.dce);
    const Deriv k3 = f(a1_mg_ + 0.5 * dt_min * k2.da1,
                       a2_mg_ + 0.5 * dt_min * k2.da2,
                       ce_ng_ml_ + 0.5 * dt_min * k2.dce);
    const Deriv k4 = f(a1_mg_ + dt_min * k3.da1, a2_mg_ + dt_min * k3.da2,
                       ce_ng_ml_ + dt_min * k3.dce);

    const double a1_before = a1_mg_;
    const double a2_before = a2_mg_;
    a1_mg_ += dt_min / 6.0 * (k1.da1 + 2 * k2.da1 + 2 * k3.da1 + k4.da1);
    a2_mg_ += dt_min / 6.0 * (k1.da2 + 2 * k2.da2 + 2 * k3.da2 + k4.da2);
    ce_ng_ml_ += dt_min / 6.0 * (k1.dce + 2 * k2.dce + 2 * k3.dce + k4.dce);
    if (a1_mg_ < 0) a1_mg_ = 0;
    if (a2_mg_ < 0) a2_mg_ = 0;
    if (ce_ng_ml_ < 0) ce_ng_ml_ = 0;

    const double input_mg = u_mg_per_min * dt_min;
    delivered_mg_ += input_mg;
    // Mass balance: whatever entered but is no longer in a body compartment
    // was eliminated (k10 path). Guard against tiny negative values from
    // the clamps above.
    const double eliminated =
        input_mg - ((a1_mg_ - a1_before) + (a2_mg_ - a2_before));
    if (eliminated > 0) eliminated_mg_ += eliminated;
}

Concentration PkTwoCompartment::plasma() const noexcept {
    return Concentration::ng_per_ml(a1_mg_ * 1000.0 / params_.v1_liters);
}

Concentration one_compartment_bolus_analytic(const PkParameters& params,
                                             Dose bolus, double t_seconds) {
    params.validate();
    const double c0 = bolus.as_mg() * 1000.0 / params.v1_liters;
    return Concentration::ng_per_ml(
        c0 * std::exp(-params.k10_per_min * t_seconds / 60.0));
}

}  // namespace mcps::physio
