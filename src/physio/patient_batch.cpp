#include "patient_batch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcps::physio {

std::size_t PatientBatch::add(const PatientParameters& params) {
    params.validate();
    const std::size_t i = n_;

    v1_.push_back(params.pk.v1_liters);
    k10_.push_back(params.pk.k10_per_min);
    k12_.push_back(params.pk.k12_per_min);
    k21_.push_back(params.pk.k21_per_min);
    ke0_.push_back(params.pk.ke0_per_min);

    ec50_.push_back(params.pd.ec50_ng_ml);
    gamma_.push_back(params.pd.gamma);
    emax_.push_back(params.pd.emax);

    base_rr_.push_back(params.resp.baseline_rr_per_min);
    base_vt_.push_back(params.resp.baseline_tidal_ml);
    deadspace_.push_back(params.resp.deadspace_ml);
    base_paco2_.push_back(params.resp.baseline_paco2_mmhg);
    fio2_.push_back(params.resp.fio2);
    aa_grad_.push_back(params.resp.aa_gradient_mmhg);
    tau_co2_.push_back(params.resp.tau_co2_s);
    tau_o2_.push_back(params.resp.tau_o2_s);
    apnea_thresh_.push_back(params.resp.apnea_drive_threshold);
    co2_gain_.push_back(params.resp.co2_gain);
    apnea_rise_.push_back(params.resp.apnea_paco2_rise_mmhg_per_s);

    base_hr_.push_back(params.cardio.baseline_hr_bpm);
    hypox_gain_.push_back(params.cardio.hypoxia_tachycardia_gain);
    severe_spo2_.push_back(params.cardio.severe_hypoxia_spo2);
    tau_hr_.push_back(params.cardio.tau_hr_s);

    a1_.push_back(0.0);
    a2_.push_back(0.0);
    ce_.push_back(0.0);
    delivered_.push_back(0.0);
    eliminated_.push_back(0.0);
    rate_mg_h_.push_back(0.0);
    antag_level_.push_back(0.0);
    antag_potency_.push_back(0.0);
    antag_hl_.push_back(1.0);

    drive_.push_back(1.0);
    rr_.push_back(params.resp.baseline_rr_per_min);
    tidal_.push_back(params.resp.baseline_tidal_ml);
    paco2_.push_back(params.resp.baseline_paco2_mmhg);
    // Same equilibrium initialization as the Patient constructor.
    const double pao2_eq = params.resp.fio2 * (760.0 - 47.0) -
                           params.resp.baseline_paco2_mmhg / 0.8 -
                           params.resp.aa_gradient_mmhg;
    pao2_.push_back(pao2_eq);
    spo2_.push_back(severinghaus_spo2(pao2_eq));
    hr_.push_back(params.cardio.baseline_hr_bpm);
    elapsed_.push_back(0.0);

    params_.push_back(params);
    ++n_;
    return i;
}

void PatientBatch::reserve(std::size_t n) {
    for (auto* v :
         {&v1_, &k10_, &k12_, &k21_, &ke0_, &ec50_, &gamma_, &emax_,
          &base_rr_, &base_vt_, &deadspace_, &base_paco2_, &fio2_, &aa_grad_,
          &tau_co2_, &tau_o2_, &apnea_thresh_, &co2_gain_, &apnea_rise_,
          &base_hr_, &hypox_gain_, &severe_spo2_, &tau_hr_, &a1_, &a2_, &ce_,
          &delivered_, &eliminated_, &rate_mg_h_, &antag_level_,
          &antag_potency_, &antag_hl_, &drive_, &rr_, &tidal_, &paco2_,
          &pao2_, &spo2_, &hr_, &elapsed_}) {
        v->reserve(n);
    }
    params_.reserve(n);
}

void PatientBatch::bolus(std::size_t i, Dose d) {
    if (d < Dose::zero()) throw std::invalid_argument("bolus: negative dose");
    a1_[i] += d.as_mg();
    delivered_[i] += d.as_mg();
}

void PatientBatch::set_infusion_rate(std::size_t i, InfusionRate r) {
    if (r < InfusionRate::zero()) {
        throw std::invalid_argument("set_infusion_rate: negative rate");
    }
    rate_mg_h_[i] = r.as_mg_per_hour();
}

void PatientBatch::give_antagonist(std::size_t i, double potency,
                                   double half_life_s) {
    if (potency <= 0 || half_life_s <= 0) {
        throw std::invalid_argument("give_antagonist: non-positive parameter");
    }
    antag_level_[i] = 1.0;
    antag_potency_[i] = potency;
    antag_hl_[i] = half_life_s;
}

namespace {
struct Deriv {
    double da1, da2, dce;
};
}  // namespace

void PatientBatch::step_range(std::size_t first, std::size_t last,
                              double dt_seconds) {
    if (dt_seconds <= 0) {
        throw std::invalid_argument("PatientBatch::step_range: dt <= 0");
    }
    if (first > last || last > n_) {
        throw std::out_of_range("PatientBatch::step_range: bad lane range");
    }
    const double dt = dt_seconds;
    const double dt_min = dt_seconds / 60.0;

    for (std::size_t i = first; i < last; ++i) {
        // --- PK: one RK4 step, expression-for-expression the scalar
        // PkTwoCompartment::step so lanes stay bit-identical.
        {
            const double u_mg_per_min = rate_mg_h_[i] / 60.0;
            const double k10 = k10_[i];
            const double k12 = k12_[i];
            const double k21 = k21_[i];
            const double ke0 = ke0_[i];
            const double v1 = v1_[i];

            auto f = [&](double a1, double a2, double ce) -> Deriv {
                const double c1 = a1 * 1000.0 / v1;
                return Deriv{
                    u_mg_per_min - (k10 + k12) * a1 + k21 * a2,
                    k12 * a1 - k21 * a2,
                    ke0 * (c1 - ce),
                };
            };

            const Deriv k1 = f(a1_[i], a2_[i], ce_[i]);
            const Deriv k2 = f(a1_[i] + 0.5 * dt_min * k1.da1,
                               a2_[i] + 0.5 * dt_min * k1.da2,
                               ce_[i] + 0.5 * dt_min * k1.dce);
            const Deriv k3 = f(a1_[i] + 0.5 * dt_min * k2.da1,
                               a2_[i] + 0.5 * dt_min * k2.da2,
                               ce_[i] + 0.5 * dt_min * k2.dce);
            const Deriv k4 = f(a1_[i] + dt_min * k3.da1,
                               a2_[i] + dt_min * k3.da2,
                               ce_[i] + dt_min * k3.dce);

            const double a1_before = a1_[i];
            const double a2_before = a2_[i];
            a1_[i] += dt_min / 6.0 * (k1.da1 + 2 * k2.da1 + 2 * k3.da1 + k4.da1);
            a2_[i] += dt_min / 6.0 * (k1.da2 + 2 * k2.da2 + 2 * k3.da2 + k4.da2);
            ce_[i] += dt_min / 6.0 * (k1.dce + 2 * k2.dce + 2 * k3.dce + k4.dce);
            if (a1_[i] < 0) a1_[i] = 0;
            if (a2_[i] < 0) a2_[i] = 0;
            if (ce_[i] < 0) ce_[i] = 0;

            const double input_mg = u_mg_per_min * dt_min;
            delivered_[i] += input_mg;
            const double eliminated =
                input_mg - ((a1_[i] - a1_before) + (a2_[i] - a2_before));
            if (eliminated > 0) eliminated_[i] += eliminated;
        }

        // --- Antagonist decay (Patient::step).
        if (antag_level_[i] > 0) {
            antag_level_[i] *=
                std::exp(-dt * 0.6931471805599453 / antag_hl_[i]);
            if (antag_level_[i] < 1e-4) antag_level_[i] = 0.0;
        }

        // --- Respiration (Patient::step_respiration, no ventilator path).
        {
            const double eff_ec50 =
                ec50_[i] * (1.0 + antag_potency_[i] * antag_level_[i]);
            // hill_effect inlined with the antagonist-scaled EC50.
            double effect = 0.0;
            const double c = ce_[i];
            if (c > 0) {
                const double num = std::pow(c, gamma_[i]);
                effect = emax_[i] * num / (num + std::pow(eff_ec50, gamma_[i]));
            }
            double drive = 1.0 - effect;
            const double co2_excess = std::max(
                0.0, (paco2_[i] - base_paco2_[i]) / base_paco2_[i]);
            drive *= 1.0 + co2_gain_[i] * co2_excess;
            drive = std::clamp(drive, 0.0, 1.5);
            drive_[i] = drive;

            if (drive < apnea_thresh_[i]) {
                rr_[i] = 0.0;
                tidal_[i] = 0.0;
            } else {
                const double target_rr = base_rr_[i] * std::pow(drive, 0.7);
                const double target_vt = base_vt_[i] * std::pow(drive, 0.3);
                const double alpha = 1.0 - std::exp(-dt / 15.0);
                rr_[i] += alpha * (target_rr - rr_[i]);
                tidal_[i] += alpha * (target_vt - tidal_[i]);
            }
        }

        // --- Gas exchange (Patient::step_gas_exchange).
        {
            const double va =
                rr_[i] * std::max(0.0, tidal_[i] - deadspace_[i]) / 1000.0;
            const double va_base =
                base_rr_[i] * (base_vt_[i] - deadspace_[i]) / 1000.0;

            if (va < 0.05 * va_base) {
                paco2_[i] += apnea_rise_[i] * dt;
            } else {
                const double paco2_eq =
                    std::min(130.0, base_paco2_[i] * va_base / va);
                paco2_[i] += (paco2_eq - paco2_[i]) *
                             (1.0 - std::exp(-dt / tau_co2_[i]));
            }
            paco2_[i] = std::clamp(paco2_[i], 15.0, 140.0);

            double pao2_eq =
                fio2_[i] * (760.0 - 47.0) - paco2_[i] / 0.8 - aa_grad_[i];
            if (va < 0.05 * va_base) pao2_eq = 30.0;
            pao2_eq = std::max(20.0, pao2_eq);
            pao2_[i] += (pao2_eq - pao2_[i]) *
                        (1.0 - std::exp(-dt / tau_o2_[i]));

            spo2_[i] = severinghaus_spo2(pao2_[i]);
        }

        // --- Cardio (Patient::step_cardio).
        {
            double target = base_hr_[i];
            const double desat = std::max(0.0, 96.0 - spo2_[i]);
            if (spo2_[i] > severe_spo2_[i]) {
                target += hypox_gain_[i] * desat;
            } else {
                target = std::max(25.0, base_hr_[i] - 1.5 * desat);
            }
            hr_[i] += (target - hr_[i]) * (1.0 - std::exp(-dt / tau_hr_[i]));
        }

        elapsed_[i] += dt;
    }
}

std::size_t PatientBatch::state_bytes() const noexcept {
    std::size_t bytes = 0;
    for (const auto* v :
         {&v1_, &k10_, &k12_, &k21_, &ke0_, &ec50_, &gamma_, &emax_,
          &base_rr_, &base_vt_, &deadspace_, &base_paco2_, &fio2_, &aa_grad_,
          &tau_co2_, &tau_o2_, &apnea_thresh_, &co2_gain_, &apnea_rise_,
          &base_hr_, &hypox_gain_, &severe_spo2_, &tau_hr_, &a1_, &a2_, &ce_,
          &delivered_, &eliminated_, &rate_mg_h_, &antag_level_,
          &antag_potency_, &antag_hl_, &drive_, &rr_, &tidal_, &paco2_,
          &pao2_, &spo2_, &hr_, &elapsed_}) {
        bytes += v->capacity() * sizeof(double);
    }
    bytes += params_.capacity() * sizeof(PatientParameters);
    return bytes;
}

}  // namespace mcps::physio
