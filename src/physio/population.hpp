/// \file population.hpp
/// \brief Patient archetypes and population sampling for validation sweeps.
///
/// Closed-loop MCPS validation (per the DAC'10 "patient modeling"
/// challenge) must cover inter-patient variability: the same PCA regimen
/// that is safe for an opioid-tolerant adult can kill an opioid-naive
/// elderly patient. Archetypes fix the systematic component; the sampler
/// adds log-normal biological variability on top.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "patient.hpp"
#include "sim/rng.hpp"

namespace mcps::physio {

/// Systematic patient classes used across experiments.
enum class Archetype {
    kTypicalAdult,
    kOpioidSensitive,  ///< low EC50, slow clearance (e.g. opioid-naive elderly)
    kOpioidTolerant,   ///< high EC50 (chronic opioid exposure)
    kElderly,          ///< reduced clearance & respiratory reserve
    kHighRisk,         ///< sleep apnea phenotype: low reserve + sensitivity
};

[[nodiscard]] std::string_view to_string(Archetype a) noexcept;
/// All archetypes in declaration order, for sweep loops.
[[nodiscard]] const std::vector<Archetype>& all_archetypes();

/// Deterministic nominal parameters for an archetype (no random spread).
[[nodiscard]] PatientParameters nominal_parameters(Archetype a);

/// Controls how much biological variability the sampler injects.
struct VariabilitySpec {
    double cv_pk = 0.25;  ///< coefficient of variation on PK constants
    double cv_pd = 0.30;  ///< on EC50/gamma
    double cv_resp = 0.12;  ///< on respiratory baselines
};

/// Sample one patient from an archetype with log-normal variability.
/// Deterministic given the stream state.
[[nodiscard]] PatientParameters sample_patient(Archetype a,
                                               mcps::sim::RngStream& rng,
                                               const VariabilitySpec& var = {});

/// Sample \p n patients (convenience for population sweeps).
[[nodiscard]] std::vector<PatientParameters> sample_population(
    Archetype a, std::size_t n, mcps::sim::RngStream& rng,
    const VariabilitySpec& var = {});

/// Sample the \p index-th patient of a cohort as a pure function of
/// (master_seed, index): each index gets its own named `RngStream`, so
/// the draw is independent of iteration order, ward grouping, or shard
/// assignment. Hospital-scale cohorts MUST use this instead of threading
/// one shared stream through a loop — a shared stream silently couples
/// every patient's parameters to the execution plan.
[[nodiscard]] PatientParameters sample_patient_indexed(
    Archetype a, std::uint64_t master_seed, std::uint64_t index,
    const VariabilitySpec& var = {});

}  // namespace mcps::physio
