/// \file sensor.hpp
/// \brief Shared machinery for vital-sign sensor devices.
///
/// Real bedside sensors are imperfect in ways that matter enormously for
/// interlock design (the paper's "context awareness" and certification
/// challenges): they average, they lag, they drop out (probe-off), and
/// they produce motion artifacts that look like clinical events. The
/// SensorChannel models all four so experiments E3/E8 can sweep them.

#pragma once

#include <deque>
#include <functional>
#include <string>

#include "device.hpp"
#include "sim/rng.hpp"

namespace mcps::devices {

/// Imperfection parameters for one measured metric.
struct SensorChannelConfig {
    std::string metric;  ///< e.g. "spo2"
    mcps::sim::SimDuration sample_period = mcps::sim::SimDuration::seconds(1);
    /// Moving-average window applied to the ground truth (pulse oximeters
    /// average over ~8 s, which delays desaturation detection).
    mcps::sim::SimDuration averaging_window = mcps::sim::SimDuration::zero();
    double noise_sd = 0.0;  ///< additive white measurement noise
    /// Per-sample probability that a motion artifact burst begins.
    double artifact_probability = 0.0;
    double artifact_magnitude = 0.0;  ///< additive bias during the burst
    mcps::sim::SimDuration artifact_duration = mcps::sim::SimDuration::seconds(5);
    /// Whether artifact samples carry valid=false (a high-quality sensor
    /// flags low signal quality; a cheap one does not).
    bool artifact_flagged = false;
    /// Per-sample probability that a dropout (probe-off) begins; during a
    /// dropout nothing is published at all.
    double dropout_probability = 0.0;
    mcps::sim::SimDuration dropout_duration = mcps::sim::SimDuration::seconds(20);
    /// Clamp range for published values.
    double clamp_lo = 0.0;
    double clamp_hi = 1e9;
};

/// One metric pipeline: ground truth -> average -> artifact -> noise ->
/// clamp -> publish. Owned by a sensor Device; not a Device itself.
class SensorChannel {
public:
    using GroundTruth = std::function<double()>;

    /// \param truth called at each sample instant for the true value.
    /// \param topic full topic to publish on (e.g. "vitals/bed1/spo2").
    SensorChannel(SensorChannelConfig cfg, GroundTruth truth, std::string topic,
                  mcps::sim::RngStream rng);

    /// Take one sample at time \p now. Returns the payload to publish, or
    /// nullopt during a dropout.
    [[nodiscard]] std::optional<mcps::net::VitalSignPayload> sample(
        mcps::sim::SimTime now);

    [[nodiscard]] const std::string& topic() const noexcept { return topic_; }
    [[nodiscard]] const SensorChannelConfig& config() const noexcept {
        return cfg_;
    }
    /// True while a dropout window is active.
    [[nodiscard]] bool in_dropout(mcps::sim::SimTime now) const noexcept {
        return now < dropout_until_;
    }
    /// Force a dropout window (fault-injection hook, E8).
    void force_dropout(mcps::sim::SimTime now, mcps::sim::SimDuration d) {
        dropout_until_ = now + d;
    }
    /// Force an artifact window (fault-injection hook, E8).
    void force_artifact(mcps::sim::SimTime now, mcps::sim::SimDuration d) {
        artifact_until_ = now + d;
    }

private:
    SensorChannelConfig cfg_;
    GroundTruth truth_;
    std::string topic_;
    mcps::sim::RngStream rng_;
    std::deque<std::pair<mcps::sim::SimTime, double>> window_;
    double window_sum_ = 0.0;
    mcps::sim::SimTime artifact_until_ = mcps::sim::SimTime::origin();
    mcps::sim::SimTime dropout_until_ = mcps::sim::SimTime::origin();
};

}  // namespace mcps::devices
