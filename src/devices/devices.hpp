/// \file devices.hpp
/// \brief Umbrella header for the mcps_devices simulated-device library.

#pragma once

#include "capnometer.hpp"      // IWYU pragma: export
#include "device.hpp"          // IWYU pragma: export
#include "drug_library.hpp"    // IWYU pragma: export
#include "gpca_pump.hpp"       // IWYU pragma: export
#include "monitor.hpp"         // IWYU pragma: export
#include "pulse_oximeter.hpp"  // IWYU pragma: export
#include "sensor.hpp"          // IWYU pragma: export
#include "ventilator.hpp"      // IWYU pragma: export
#include "xray.hpp"            // IWYU pragma: export
