#include "pulse_oximeter.hpp"

namespace mcps::devices {

PulseOximeter::PulseOximeter(DeviceContext ctx, std::string name,
                             const physio::Patient& patient,
                             PulseOximeterConfig cfg)
    : Device{ctx, std::move(name), DeviceKind::kPulseOximeter},
      patient_{patient},
      cfg_{std::move(cfg)} {
    add_capability("spo2");
    add_capability("pulse_rate");

    SensorChannelConfig spo2_cfg;
    spo2_cfg.metric = "spo2";
    spo2_cfg.sample_period = cfg_.sample_period;
    spo2_cfg.averaging_window = cfg_.averaging_window;
    spo2_cfg.noise_sd = cfg_.spo2_noise_sd;
    spo2_cfg.artifact_probability = cfg_.artifact_probability;
    spo2_cfg.artifact_magnitude = cfg_.artifact_magnitude;
    spo2_cfg.artifact_flagged = cfg_.artifact_flagged;
    spo2_cfg.dropout_probability = cfg_.dropout_probability;
    spo2_cfg.dropout_duration = cfg_.dropout_duration;
    spo2_cfg.clamp_lo = 0.0;
    spo2_cfg.clamp_hi = 100.0;
    spo2_ = std::make_unique<SensorChannel>(
        spo2_cfg, [this] { return patient_.spo2().as_percent(); },
        "vitals/" + cfg_.bed + "/spo2", sim().rng(this->name() + ".spo2"));

    SensorChannelConfig pr_cfg;
    pr_cfg.metric = "pulse_rate";
    pr_cfg.sample_period = cfg_.sample_period;
    pr_cfg.noise_sd = 1.5;
    // Pulse shares the probe: dropout handled jointly in sample_tick().
    pr_cfg.clamp_lo = 0.0;
    pr_cfg.clamp_hi = 300.0;
    pulse_ = std::make_unique<SensorChannel>(
        pr_cfg, [this] { return patient_.heart_rate().as_bpm(); },
        "vitals/" + cfg_.bed + "/pulse_rate", sim().rng(this->name() + ".pulse"));
}

void PulseOximeter::on_start() {
    tick_ = sim().schedule_periodic(cfg_.sample_period, [this] { sample_tick(); });
}

void PulseOximeter::on_stop() { tick_.cancel(); }

void PulseOximeter::sample_tick() {
    auto spo2_sample = spo2_->sample(sim().now());
    if (!spo2_sample) return;  // probe-off silences both channels
    publish(spo2_->topic(), *spo2_sample);
    trace().record("sensor/" + name() + "/spo2", sim().now(),
                   spo2_sample->value);
    if (auto pr = pulse_->sample(sim().now())) {
        publish(pulse_->topic(), *pr);
    }
}

void PulseOximeter::force_dropout(mcps::sim::SimDuration d) {
    spo2_->force_dropout(sim().now(), d);
}

void PulseOximeter::force_artifact(mcps::sim::SimDuration d) {
    spo2_->force_artifact(sim().now(), d);
}

bool PulseOximeter::in_dropout() const noexcept {
    return spo2_->in_dropout(sim().now());
}

}  // namespace mcps::devices
