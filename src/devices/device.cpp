#include "device.hpp"

namespace mcps::devices {

std::string_view to_string(DeviceKind k) noexcept {
    switch (k) {
        case DeviceKind::kInfusionPump: return "infusion-pump";
        case DeviceKind::kPulseOximeter: return "pulse-oximeter";
        case DeviceKind::kCapnometer: return "capnometer";
        case DeviceKind::kVentilator: return "ventilator";
        case DeviceKind::kXRay: return "x-ray";
        case DeviceKind::kMonitor: return "monitor";
        case DeviceKind::kSupervisor: return "supervisor";
    }
    return "unknown";
}

Device::Device(DeviceContext ctx, std::string name, DeviceKind kind)
    : ctx_{ctx}, name_{std::move(name)}, kind_{kind} {
    if (name_.empty()) throw std::invalid_argument("Device: empty name");
}

Device::~Device() {
    heartbeat_handle_.cancel();
}

void Device::set_heartbeat_period(mcps::sim::SimDuration period) {
    if (running_) {
        throw std::logic_error("set_heartbeat_period: device already started");
    }
    if (period < mcps::sim::SimDuration::zero()) {
        throw std::invalid_argument("set_heartbeat_period: negative period");
    }
    heartbeat_period_ = period;
}

void Device::start() {
    if (running_) return;
    running_ = true;
    crashed_ = false;
    publish_status("online");
    if (heartbeat_period_ > mcps::sim::SimDuration::zero()) {
        heartbeat_handle_ = ctx_.sim.schedule_periodic(
            heartbeat_period_, [this] {
                publish("heartbeat/" + name_,
                        mcps::net::HeartbeatPayload{heartbeat_count_++});
            });
    }
    on_start();
}

void Device::stop() {
    if (!running_) return;
    heartbeat_handle_.cancel();
    on_stop();
    publish_status("offline");
    running_ = false;
}

void Device::crash() {
    if (!running_) return;
    crashed_ = true;
    heartbeat_handle_.cancel();
    ctx_.trace.mark(ctx_.sim.now(), "crash/" + name_);
}

void Device::publish(const std::string& topic, mcps::net::Payload payload) {
    if (crashed_ || !running_) return;
    ctx_.bus.publish(name_, topic, std::move(payload));
}

void Device::publish_status(const std::string& state,
                            const std::string& detail) {
    publish("status/" + name_, mcps::net::StatusPayload{state, detail});
}

}  // namespace mcps::devices
