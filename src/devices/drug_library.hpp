/// \file drug_library.hpp
/// \brief Drug library with hard and soft dose limits — the GPCA
/// prescription-safety layer.
///
/// Real smart pumps refuse prescriptions outside a hospital-curated
/// drug library: *hard* limits can never be exceeded; *soft* limits
/// can be overridden by a clinician but are recorded. This module
/// provides the library, the checker, and the audit trail, and
/// GpcaPump::set_prescription_checked() wires it into the pump
/// (requirement R7: no prescription outside hard limits is ever
/// programmed).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gpca_pump.hpp"

namespace mcps::devices {

/// Limits for one drug at one care-area concentration.
struct DrugEntry {
    std::string name;  ///< e.g. "fentanyl-like (synthetic opioid)"

    // Hard limits: violations are rejected outright.
    physio::InfusionRate hard_max_basal = physio::InfusionRate::mg_per_hour(2.0);
    physio::Dose hard_max_bolus = physio::Dose::mg(1.0);
    physio::Dose hard_max_hourly = physio::Dose::mg(8.0);
    mcps::sim::SimDuration hard_min_lockout = mcps::sim::SimDuration::minutes(5);

    // Soft limits: violations need an explicit clinician override.
    physio::InfusionRate soft_max_basal = physio::InfusionRate::mg_per_hour(1.0);
    physio::Dose soft_max_bolus = physio::Dose::mg(0.6);
    physio::Dose soft_max_hourly = physio::Dose::mg(6.0);
    mcps::sim::SimDuration soft_min_lockout = mcps::sim::SimDuration::minutes(8);

    /// \throws std::invalid_argument if soft limits exceed hard limits.
    void validate() const;
};

/// One rule violation found by the checker.
struct LimitViolation {
    enum class Kind { kHard, kSoft };
    Kind kind = Kind::kHard;
    std::string field;   ///< "basal", "bolus_dose", "max_hourly", "lockout"
    std::string detail;  ///< human-readable comparison
};

/// Result of checking a prescription against a drug entry.
struct PrescriptionCheck {
    std::vector<LimitViolation> hard;  ///< must be empty to program
    std::vector<LimitViolation> soft;  ///< need clinician override
    [[nodiscard]] bool acceptable(bool clinician_override) const noexcept {
        return hard.empty() && (soft.empty() || clinician_override);
    }
};

/// Check \p rx against \p entry. Never throws on violations — callers
/// decide; throws only on invalid inputs.
[[nodiscard]] PrescriptionCheck check_prescription(const Prescription& rx,
                                                   const DrugEntry& entry);

/// The hospital-curated set of programmable drugs.
class DrugLibrary {
public:
    /// \throws std::invalid_argument on duplicate or invalid entries.
    void add(DrugEntry entry);
    [[nodiscard]] const DrugEntry* find(const std::string& name) const;
    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    [[nodiscard]] const std::vector<DrugEntry>& entries() const noexcept {
        return entries_;
    }

private:
    std::vector<DrugEntry> entries_;
};

/// An audited programming attempt (kept by the ProgrammingSession).
struct ProgrammingRecord {
    mcps::sim::SimTime at;
    std::string drug;
    bool accepted = false;
    bool overridden = false;  ///< soft limits were overridden
    std::size_t hard_violations = 0;
    std::size_t soft_violations = 0;
};

/// Mediates prescription programming on a pump against a drug library,
/// keeping the audit trail regulators expect.
class ProgrammingSession {
public:
    /// \param library must outlive the session.
    ProgrammingSession(const DrugLibrary& library, mcps::sim::Simulation& sim);

    /// Attempt to program \p pump with \p rx for drug \p drug_name.
    /// Hard violations always reject; soft violations reject unless
    /// \p clinician_override. The pump must be in a programmable state
    /// (idle/paused) or the attempt is rejected with a hard violation
    /// marked "pump-state".
    /// \returns the detailed check plus whether programming happened.
    PrescriptionCheck program(GpcaPump& pump, const std::string& drug_name,
                              const Prescription& rx, bool clinician_override);

    [[nodiscard]] const std::vector<ProgrammingRecord>& records()
        const noexcept {
        return records_;
    }

private:
    const DrugLibrary& library_;
    mcps::sim::Simulation& sim_;
    std::vector<ProgrammingRecord> records_;
};

/// The default opioid library used by examples/tests (matches the
/// defaults of the simulated fentanyl-like agent).
[[nodiscard]] DrugLibrary build_default_opioid_library();

}  // namespace mcps::devices
