#include "sensor.hpp"

#include <algorithm>

namespace mcps::devices {

using mcps::sim::SimDuration;
using mcps::sim::SimTime;

SensorChannel::SensorChannel(SensorChannelConfig cfg, GroundTruth truth,
                             std::string topic, mcps::sim::RngStream rng)
    : cfg_{std::move(cfg)},
      truth_{std::move(truth)},
      topic_{std::move(topic)},
      rng_{rng} {
    if (!truth_) throw std::invalid_argument("SensorChannel: null ground truth");
    if (cfg_.sample_period <= SimDuration::zero()) {
        throw std::invalid_argument("SensorChannel: sample period must be > 0");
    }
    if (cfg_.metric.empty()) {
        throw std::invalid_argument("SensorChannel: empty metric name");
    }
}

std::optional<mcps::net::VitalSignPayload> SensorChannel::sample(SimTime now) {
    // Dropout state machine.
    if (now < dropout_until_) return std::nullopt;
    if (rng_.bernoulli(cfg_.dropout_probability)) {
        dropout_until_ = now + cfg_.dropout_duration;
        return std::nullopt;
    }

    // Ground truth through the averaging window.
    const double raw = truth_();
    double value = raw;
    if (cfg_.averaging_window > SimDuration::zero()) {
        window_.emplace_back(now, raw);
        window_sum_ += raw;
        const SimTime cutoff = now - cfg_.averaging_window;
        while (!window_.empty() && window_.front().first < cutoff) {
            window_sum_ -= window_.front().second;
            window_.pop_front();
        }
        value = window_sum_ / static_cast<double>(window_.size());
    }

    // Artifact burst.
    bool artifact_active = now < artifact_until_;
    if (!artifact_active && rng_.bernoulli(cfg_.artifact_probability)) {
        artifact_until_ = now + cfg_.artifact_duration;
        artifact_active = true;
    }
    if (artifact_active) value += cfg_.artifact_magnitude;

    // Measurement noise + physical clamp.
    if (cfg_.noise_sd > 0) value += rng_.normal(0.0, cfg_.noise_sd);
    value = std::clamp(value, cfg_.clamp_lo, cfg_.clamp_hi);

    mcps::net::VitalSignPayload p;
    p.metric = cfg_.metric;
    p.value = value;
    p.valid = !(artifact_active && cfg_.artifact_flagged);
    return p;
}

}  // namespace mcps::devices
