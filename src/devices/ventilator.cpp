#include "ventilator.hpp"

#include <algorithm>

namespace mcps::devices {

using mcps::sim::SimDuration;

std::string_view to_string(VentMode m) noexcept {
    switch (m) {
        case VentMode::kStandby: return "standby";
        case VentMode::kVentilating: return "ventilating";
        case VentMode::kPaused: return "paused";
    }
    return "unknown";
}

Ventilator::Ventilator(DeviceContext ctx, std::string name,
                       physio::Patient& patient, VentilatorConfig cfg)
    : Device{ctx, std::move(name), DeviceKind::kVentilator},
      patient_{patient},
      cfg_{cfg} {
    if (cfg_.max_pause <= SimDuration::zero()) {
        throw std::invalid_argument("VentilatorConfig: max_pause must be > 0");
    }
    add_capability("ventilation");
    add_capability("remote-pause");
}

void Ventilator::on_start() {
    cmd_sub_ = bus().subscribe(name(), "cmd/" + name(),
                               [this](const mcps::net::Message& m) {
                                   handle_command(m);
                               });
    status_handle_ = sim().schedule_periodic(cfg_.status_period, [this] {
        publish_status(std::string{to_string(mode_)});
    });
    enter_mode(VentMode::kVentilating, "start");
}

void Ventilator::on_stop() {
    safety_timer_.cancel();
    status_handle_.cancel();
    bus().unsubscribe(cmd_sub_);
    enter_mode(VentMode::kStandby, "stop");
}

void Ventilator::enter_mode(VentMode m, const std::string& why) {
    if (mode_ == m) return;
    mode_ = m;
    switch (m) {
        case VentMode::kVentilating:
            patient_.set_mechanical_ventilation(
                physio::MechanicalVentilation{cfg_.rate, cfg_.tidal_ml});
            break;
        case VentMode::kPaused:
            // Inspiratory hold: mechanically ventilated at zero rate.
            patient_.set_mechanical_ventilation(physio::MechanicalVentilation{
                physio::RespRate::per_minute(0.0), 0.0});
            break;
        case VentMode::kStandby:
            patient_.set_mechanical_ventilation(std::nullopt);
            break;
    }
    trace().mark(sim().now(),
                 "vent/" + name() + "/" + std::string{to_string(m)});
    publish_status(std::string{to_string(m)}, why);
}

bool Ventilator::pause(SimDuration requested) {
    if (mode_ != VentMode::kVentilating) return false;
    if (requested <= SimDuration::zero()) return false;
    const SimDuration granted = std::min(requested, cfg_.max_pause);
    ++stats_.pauses;
    enter_mode(VentMode::kPaused, "pause");
    safety_timer_.cancel();
    // Safety requirement V1: a pause always ends, commanded or not.
    safety_timer_ = sim().schedule_after(granted, [this] {
        if (mode_ == VentMode::kPaused) {
            ++stats_.safety_auto_resumes;
            trace().mark(sim().now(), "vent/" + name() + "/auto-resume");
            publish("alarm/" + name(),
                    mcps::net::StatusPayload{"advisory", "safety-auto-resume"});
            enter_mode(VentMode::kVentilating, "safety-timeout");
        }
    });
    return true;
}

void Ventilator::resume() {
    if (mode_ != VentMode::kPaused) return;
    ++stats_.command_resumes;
    safety_timer_.cancel();
    enter_mode(VentMode::kVentilating, "resume");
}

bool Ventilator::chest_moving() const noexcept {
    if (mode_ == VentMode::kVentilating) return true;
    if (mode_ == VentMode::kPaused) return false;
    // Standby: the patient may be breathing spontaneously.
    return !patient_.is_apneic();
}

void Ventilator::handle_command(const mcps::net::Message& m) {
    const auto* cmd = mcps::net::payload_as<mcps::net::CommandPayload>(m);
    if (!cmd) return;
    bool ok = true;
    std::string detail;
    if (cmd->action == "pause") {
        double secs = cfg_.max_pause.to_seconds();
        if (auto it = cmd->args.find("duration_s"); it != cmd->args.end()) {
            secs = it->second;
        }
        ok = pause(SimDuration::from_seconds(secs));
        detail = ok ? "paused" : "pause-rejected";
    } else if (cmd->action == "resume") {
        resume();
        detail = "resumed";
    } else {
        ok = false;
        detail = "unknown-action:" + cmd->action;
    }
    publish("ack/" + name(), mcps::net::AckPayload{cmd->command_seq, ok, detail});
}

}  // namespace mcps::devices
