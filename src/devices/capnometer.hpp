/// \file capnometer.hpp
/// \brief Capnometer device: EtCO2 + respiratory-rate publisher.
///
/// The second sensor of the dual-sensor interlock. Capnography responds
/// to respiratory depression much faster than pulse oximetry (EtCO2
/// collapses at the first missed breath, while SpO2 can take minutes to
/// fall) — the dual-vs-single-sensor ablation in E1 quantifies exactly
/// this.

#pragma once

#include <memory>

#include "physio/patient.hpp"
#include "sensor.hpp"

namespace mcps::devices {

struct CapnometerConfig {
    std::string bed = "bed1";
    mcps::sim::SimDuration sample_period = mcps::sim::SimDuration::seconds(2);
    double etco2_noise_sd = 1.2;
    double rr_noise_sd = 0.6;
    double dropout_probability = 0.0;  ///< cannula displaced
    mcps::sim::SimDuration dropout_duration = mcps::sim::SimDuration::seconds(40);
};

class Capnometer : public Device {
public:
    Capnometer(DeviceContext ctx, std::string name,
               const physio::Patient& patient, CapnometerConfig cfg = {});

    void force_dropout(mcps::sim::SimDuration d);
    [[nodiscard]] const CapnometerConfig& config() const noexcept { return cfg_; }

protected:
    void on_start() override;
    void on_stop() override;

private:
    void sample_tick();

    const physio::Patient& patient_;
    CapnometerConfig cfg_;
    std::unique_ptr<SensorChannel> etco2_;
    std::unique_ptr<SensorChannel> rr_;
    mcps::sim::EventHandle tick_;
};

}  // namespace mcps::devices
