#include "drug_library.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcps::devices {

void DrugEntry::validate() const {
    if (name.empty()) throw std::invalid_argument("DrugEntry: empty name");
    if (soft_max_basal > hard_max_basal) {
        throw std::invalid_argument("DrugEntry: soft basal above hard basal");
    }
    if (soft_max_bolus > hard_max_bolus) {
        throw std::invalid_argument("DrugEntry: soft bolus above hard bolus");
    }
    if (soft_max_hourly > hard_max_hourly) {
        throw std::invalid_argument("DrugEntry: soft hourly above hard hourly");
    }
    if (soft_min_lockout < hard_min_lockout) {
        throw std::invalid_argument(
            "DrugEntry: soft lockout below hard lockout (soft must be the "
            "stricter, i.e. longer, minimum)");
    }
}

namespace {

void check_limit(std::vector<LimitViolation>& out, LimitViolation::Kind kind,
                 const std::string& field, bool violated,
                 const std::string& detail) {
    if (violated) out.push_back(LimitViolation{kind, field, detail});
}

std::string mg(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fmg", v);
    return buf;
}

}  // namespace

PrescriptionCheck check_prescription(const Prescription& rx,
                                     const DrugEntry& entry) {
    rx.validate();
    entry.validate();
    PrescriptionCheck c;
    using K = LimitViolation::Kind;

    check_limit(c.hard, K::kHard, "basal", rx.basal > entry.hard_max_basal,
                std::to_string(rx.basal.as_mg_per_hour()) + "mg/h > hard " +
                    std::to_string(entry.hard_max_basal.as_mg_per_hour()) +
                    "mg/h");
    check_limit(c.hard, K::kHard, "bolus_dose",
                rx.bolus_dose > entry.hard_max_bolus,
                mg(rx.bolus_dose.as_mg()) + " > hard " +
                    mg(entry.hard_max_bolus.as_mg()));
    check_limit(c.hard, K::kHard, "max_hourly",
                rx.max_hourly > entry.hard_max_hourly,
                mg(rx.max_hourly.as_mg()) + " > hard " +
                    mg(entry.hard_max_hourly.as_mg()));
    check_limit(c.hard, K::kHard, "lockout",
                rx.lockout < entry.hard_min_lockout,
                rx.lockout.to_string() + " < hard min " +
                    entry.hard_min_lockout.to_string());

    check_limit(c.soft, K::kSoft, "basal", rx.basal > entry.soft_max_basal,
                std::to_string(rx.basal.as_mg_per_hour()) + "mg/h > soft " +
                    std::to_string(entry.soft_max_basal.as_mg_per_hour()) +
                    "mg/h");
    check_limit(c.soft, K::kSoft, "bolus_dose",
                rx.bolus_dose > entry.soft_max_bolus,
                mg(rx.bolus_dose.as_mg()) + " > soft " +
                    mg(entry.soft_max_bolus.as_mg()));
    check_limit(c.soft, K::kSoft, "max_hourly",
                rx.max_hourly > entry.soft_max_hourly,
                mg(rx.max_hourly.as_mg()) + " > soft " +
                    mg(entry.soft_max_hourly.as_mg()));
    check_limit(c.soft, K::kSoft, "lockout",
                rx.lockout < entry.soft_min_lockout,
                rx.lockout.to_string() + " < soft min " +
                    entry.soft_min_lockout.to_string());
    return c;
}

void DrugLibrary::add(DrugEntry entry) {
    entry.validate();
    if (find(entry.name)) {
        throw std::invalid_argument("DrugLibrary: duplicate drug '" +
                                    entry.name + "'");
    }
    entries_.push_back(std::move(entry));
}

const DrugEntry* DrugLibrary::find(const std::string& name) const {
    const auto it =
        std::find_if(entries_.begin(), entries_.end(),
                     [&](const DrugEntry& e) { return e.name == name; });
    return it == entries_.end() ? nullptr : &*it;
}

ProgrammingSession::ProgrammingSession(const DrugLibrary& library,
                                       mcps::sim::Simulation& sim)
    : library_{library}, sim_{sim} {}

PrescriptionCheck ProgrammingSession::program(GpcaPump& pump,
                                              const std::string& drug_name,
                                              const Prescription& rx,
                                              bool clinician_override) {
    PrescriptionCheck check;
    ProgrammingRecord rec;
    rec.at = sim_.now();
    rec.drug = drug_name;

    const DrugEntry* entry = library_.find(drug_name);
    if (!entry) {
        check.hard.push_back(LimitViolation{LimitViolation::Kind::kHard,
                                            "drug",
                                            "'" + drug_name +
                                                "' not in library"});
    } else {
        check = check_prescription(rx, *entry);
    }

    // The pump must be programmable (R6-adjacent: never reprogram a
    // running infusion).
    const auto st = pump.state();
    if (st != PumpState::kIdle && st != PumpState::kPaused &&
        st != PumpState::kOff) {
        check.hard.push_back(
            LimitViolation{LimitViolation::Kind::kHard, "pump-state",
                           "pump is " + std::string{to_string(st)}});
    }

    rec.hard_violations = check.hard.size();
    rec.soft_violations = check.soft.size();
    rec.overridden = clinician_override && !check.soft.empty();
    if (check.acceptable(clinician_override)) {
        pump.set_prescription(rx);
        rec.accepted = true;
    }
    records_.push_back(rec);
    return check;
}

DrugLibrary build_default_opioid_library() {
    DrugLibrary lib;
    DrugEntry opioid;  // defaults match the simulated agent
    opioid.name = "synthetic-opioid";
    lib.add(opioid);

    DrugEntry conservative;
    conservative.name = "synthetic-opioid-elderly";
    conservative.hard_max_basal = physio::InfusionRate::mg_per_hour(1.0);
    conservative.hard_max_bolus = physio::Dose::mg(0.6);
    conservative.hard_max_hourly = physio::Dose::mg(5.0);
    conservative.hard_min_lockout = mcps::sim::SimDuration::minutes(8);
    conservative.soft_max_basal = physio::InfusionRate::mg_per_hour(0.5);
    conservative.soft_max_bolus = physio::Dose::mg(0.4);
    conservative.soft_max_hourly = physio::Dose::mg(3.0);
    conservative.soft_min_lockout = mcps::sim::SimDuration::minutes(10);
    lib.add(conservative);
    return lib;
}

}  // namespace mcps::devices
