#include "capnometer.hpp"

namespace mcps::devices {

Capnometer::Capnometer(DeviceContext ctx, std::string name,
                       const physio::Patient& patient, CapnometerConfig cfg)
    : Device{ctx, std::move(name), DeviceKind::kCapnometer},
      patient_{patient},
      cfg_{std::move(cfg)} {
    add_capability("etco2");
    add_capability("resp_rate");

    SensorChannelConfig et_cfg;
    et_cfg.metric = "etco2";
    et_cfg.sample_period = cfg_.sample_period;
    et_cfg.noise_sd = cfg_.etco2_noise_sd;
    et_cfg.dropout_probability = cfg_.dropout_probability;
    et_cfg.dropout_duration = cfg_.dropout_duration;
    et_cfg.clamp_lo = 0.0;
    et_cfg.clamp_hi = 150.0;
    etco2_ = std::make_unique<SensorChannel>(
        et_cfg, [this] { return patient_.etco2().as_mmhg(); },
        "vitals/" + cfg_.bed + "/etco2", sim().rng(this->name() + ".etco2"));

    SensorChannelConfig rr_cfg;
    rr_cfg.metric = "resp_rate";
    rr_cfg.sample_period = cfg_.sample_period;
    rr_cfg.noise_sd = cfg_.rr_noise_sd;
    rr_cfg.clamp_lo = 0.0;
    rr_cfg.clamp_hi = 80.0;
    rr_ = std::make_unique<SensorChannel>(
        rr_cfg, [this] { return patient_.resp_rate().as_per_minute(); },
        "vitals/" + cfg_.bed + "/resp_rate", sim().rng(this->name() + ".rr"));
}

void Capnometer::on_start() {
    tick_ = sim().schedule_periodic(cfg_.sample_period, [this] { sample_tick(); });
}

void Capnometer::on_stop() { tick_.cancel(); }

void Capnometer::sample_tick() {
    auto et = etco2_->sample(sim().now());
    if (!et) return;  // cannula displaced silences both channels
    publish(etco2_->topic(), *et);
    trace().record("sensor/" + name() + "/etco2", sim().now(), et->value);
    if (auto rr = rr_->sample(sim().now())) {
        publish(rr_->topic(), *rr);
        trace().record("sensor/" + name() + "/resp_rate", sim().now(),
                       rr->value);
    }
}

void Capnometer::force_dropout(mcps::sim::SimDuration d) {
    etco2_->force_dropout(sim().now(), d);
    rr_->force_dropout(sim().now(), d);
}

}  // namespace mcps::devices
