/// \file ventilator.hpp
/// \brief Mechanical ventilator with remotely commandable safe pause.
///
/// Half of the paper's on-demand coordination scenario: during a chest
/// X-ray the ventilator must hold breathing briefly so the image is not
/// motion-blurred, then resume — automatically, even if the coordinator
/// dies mid-pause. The built-in safety timeout (auto-resume) is the
/// device-local guarantee that makes the distributed scenario acceptable
/// to a regulator: no remote failure can leave the patient apneic.

#pragma once

#include "device.hpp"
#include "physio/patient.hpp"

namespace mcps::devices {

enum class VentMode {
    kStandby,      ///< not ventilating (patient breathes spontaneously)
    kVentilating,  ///< delivering breaths
    kPaused,       ///< inspiratory hold (no chest motion)
};

[[nodiscard]] std::string_view to_string(VentMode m) noexcept;

struct VentilatorConfig {
    physio::RespRate rate{physio::RespRate::per_minute(12.0)};
    double tidal_ml = 500.0;
    /// Hard ceiling on any pause; the ventilator auto-resumes at this
    /// point regardless of commands (safety requirement V1).
    mcps::sim::SimDuration max_pause = mcps::sim::SimDuration::seconds(30);
    mcps::sim::SimDuration status_period = mcps::sim::SimDuration::seconds(5);
};

/// Counters for the E4 experiment.
struct VentStats {
    std::uint64_t pauses = 0;
    std::uint64_t command_resumes = 0;
    std::uint64_t safety_auto_resumes = 0;  ///< pauses ended by the timeout
};

class Ventilator : public Device {
public:
    Ventilator(DeviceContext ctx, std::string name, physio::Patient& patient,
               VentilatorConfig cfg = {});

    /// Local/remote pause for at most min(requested, max_pause).
    /// Returns false (and stays ventilating) if not currently ventilating.
    bool pause(mcps::sim::SimDuration requested);
    /// End a pause early. No-op when not paused.
    void resume();

    [[nodiscard]] VentMode mode() const noexcept { return mode_; }
    /// True while the chest is moving (ventilation in progress or the
    /// patient is breathing spontaneously off the ventilator).
    [[nodiscard]] bool chest_moving() const noexcept;
    [[nodiscard]] const VentStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const VentilatorConfig& config() const noexcept { return cfg_; }

protected:
    void on_start() override;
    void on_stop() override;

private:
    void enter_mode(VentMode m, const std::string& why);
    void handle_command(const mcps::net::Message& m);

    physio::Patient& patient_;
    VentilatorConfig cfg_;
    VentMode mode_ = VentMode::kStandby;
    VentStats stats_;
    mcps::sim::EventHandle safety_timer_;
    mcps::sim::EventHandle status_handle_;
    mcps::net::SubscriptionId cmd_sub_;
};

}  // namespace mcps::devices
