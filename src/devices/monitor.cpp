#include "monitor.hpp"

namespace mcps::devices {

using mcps::sim::SimDuration;
using mcps::sim::SimTime;

MonitorConfig MonitorConfig::adult_defaults(std::string bed) {
    MonitorConfig cfg;
    cfg.bed = std::move(bed);
    cfg.rules = {
        ThresholdRule{"spo2", 90.0, 1e300, 1},
        ThresholdRule{"resp_rate", 8.0, 30.0, 1},
        ThresholdRule{"etco2", 15.0, 60.0, 1},
        ThresholdRule{"pulse_rate", 45.0, 130.0, 1},
    };
    return cfg;
}

BedsideMonitor::BedsideMonitor(DeviceContext ctx, std::string name,
                               MonitorConfig cfg)
    : Device{ctx, std::move(name), DeviceKind::kMonitor}, cfg_{std::move(cfg)} {
    add_capability("display");
    add_capability("threshold-alarms");
}

void BedsideMonitor::on_start() {
    sub_ = bus().subscribe(name(), "vitals/" + cfg_.bed + "/*",
                           [this](const mcps::net::Message& m) { on_vital(m); });
}

void BedsideMonitor::on_stop() { bus().unsubscribe(sub_); }

std::optional<MetricView> BedsideMonitor::latest(
    const std::string& metric) const {
    auto it = latest_.find(metric);
    if (it == latest_.end()) return std::nullopt;
    return it->second;
}

bool BedsideMonitor::is_stale(const std::string& metric) const {
    auto it = latest_.find(metric);
    if (it == latest_.end()) return true;
    return sim().now() - it->second.updated_at > cfg_.staleness_limit;
}

void BedsideMonitor::fire(const std::string& metric, double value,
                          const std::string& why) {
    if (auto it = last_fired_.find(metric); it != last_fired_.end()) {
        if (sim().now() - it->second < cfg_.rearm) return;
    }
    last_fired_[metric] = sim().now();
    alarms_.push_back(MonitorAlarm{sim().now(), metric, value, why});
    trace().mark(sim().now(), "monitor_alarm/" + metric + "/" + why);
    publish("alarm/" + name(),
            mcps::net::StatusPayload{"threshold", metric + ":" + why});
}

void BedsideMonitor::on_vital(const mcps::net::Message& m) {
    const auto* v = mcps::net::payload_as<mcps::net::VitalSignPayload>(m);
    if (!v) return;
    latest_[v->metric] = MetricView{v->value, v->valid, sim().now()};

    for (const auto& rule : cfg_.rules) {
        if (rule.metric != v->metric) continue;
        const bool low = v->value < rule.low;
        const bool high = v->value > rule.high;
        int& streak = violation_streak_[v->metric];
        if (low || high) {
            if (++streak >= rule.persistence) {
                fire(v->metric, v->value, low ? "low" : "high");
            }
        } else {
            streak = 0;
        }
    }
}

}  // namespace mcps::devices
