/// \file gpca_pump.hpp
/// \brief Generic PCA infusion pump model (GPCA-style state machine).
///
/// The DAC'10 paper's "high-confidence development" thread centers on the
/// Generic Patient-Controlled Analgesia (GPCA) pump reference model: a
/// hierarchical state machine whose safety requirements (lockout
/// enforcement, hourly dose cap, alarm-triggered infusion stop) can be
/// model-checked and then traced to code. This class is that reference
/// model implemented as an executable device:
///
///   Off -> SelfTest -> Idle -> Infusing <-> BolusActive
///                        ^        |   \------> Paused
///                        |        v
///                        +----- Alarm (critical alarms latch; infusion
///                                      stopped until operator clears)
///
/// Safety requirements enforced (tested in tests/test_gpca_pump.cpp):
///  R1 A bolus is never delivered during the lockout interval.
///  R2 Total drug delivered in any sliding 60-minute window never exceeds
///     the prescribed hourly cap (basal is throttled before violating it).
///  R3 A critical alarm stops all drug delivery within one tick.
///  R4 A remote stop command stops all delivery within one tick and is
///     acknowledged.
///  R5 The pump never delivers from an empty reservoir.
///  R6 Bolus requests while paused/alarmed/stopped are denied, not queued.

#pragma once

#include <deque>
#include <optional>

#include "device.hpp"
#include "physio/patient.hpp"
#include "physio/units.hpp"

namespace mcps::devices {

/// The clinician-programmed regimen.
struct Prescription {
    physio::InfusionRate basal = physio::InfusionRate::mg_per_hour(0.5);
    physio::Dose bolus_dose = physio::Dose::mg(0.5);
    mcps::sim::SimDuration lockout = mcps::sim::SimDuration::minutes(8);
    physio::Dose max_hourly = physio::Dose::mg(6.0);
    double bolus_rate_mg_per_min = 2.0;  ///< delivery speed of a bolus

    /// \throws std::invalid_argument on non-positive or inconsistent values.
    void validate() const;
};

/// Pump mechanical/behavioural configuration.
struct PumpConfig {
    mcps::sim::SimDuration tick = mcps::sim::SimDuration::seconds(1);
    mcps::sim::SimDuration selftest_duration = mcps::sim::SimDuration::seconds(2);
    physio::Dose reservoir = physio::Dose::mg(30.0);
    mcps::sim::SimDuration status_period = mcps::sim::SimDuration::seconds(5);
};

/// Pump operating states (GPCA top level).
enum class PumpState {
    kOff,
    kSelfTest,
    kIdle,
    kInfusing,     ///< basal running, no bolus in progress
    kBolusActive,  ///< bolus being delivered (basal continues)
    kPaused,       ///< operator/remote pause; no delivery
    kAlarm,        ///< critical alarm latched; no delivery
};

[[nodiscard]] std::string_view to_string(PumpState s) noexcept;

/// Alarm conditions the pump can raise.
enum class PumpAlarm {
    kNone,
    kOcclusion,
    kAirInLine,
    kReservoirEmpty,
    kHourlyLimit,  ///< advisory: cap reached, boluses denied
};

[[nodiscard]] std::string_view to_string(PumpAlarm a) noexcept;

/// Counters for experiment output.
struct PumpStats {
    std::uint64_t boluses_requested = 0;
    std::uint64_t boluses_delivered = 0;   ///< started delivery
    std::uint64_t denied_lockout = 0;
    std::uint64_t denied_hourly = 0;
    std::uint64_t denied_state = 0;        ///< paused/alarm/idle denials
    std::uint64_t remote_stops = 0;
    physio::Dose total_delivered;
};

/// The executable GPCA pump.
///
/// Drug reaches the patient as per-tick micro-boluses computed from the
/// basal rate plus any active bolus; the pump is the sole drug source for
/// its patient. Remote control arrives on topic "cmd/<name>" with actions
/// "stop_infusion" | "pause" | "resume" | "bolus_request"; every command
/// is acknowledged on "ack/<name>".
class GpcaPump : public Device {
public:
    GpcaPump(DeviceContext ctx, std::string name, physio::Patient& patient,
             Prescription rx, PumpConfig cfg = {});

    /// Patient presses the demand button. Applies R1/R2/R6 gating.
    /// Returns true if a bolus starts.
    bool press_button();

    /// Operator interactions.
    void operator_pause();
    void operator_resume();
    /// Clear a latched alarm; pump returns to Idle (operator must resume).
    void clear_alarm();

    /// Inject a hardware fault (test/E8 hook).
    void inject_fault(PumpAlarm fault);

    [[nodiscard]] PumpState state() const noexcept { return state_; }
    [[nodiscard]] PumpAlarm alarm() const noexcept { return alarm_; }
    [[nodiscard]] const PumpStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const Prescription& prescription() const noexcept {
        return rx_;
    }
    [[nodiscard]] physio::Dose reservoir_remaining() const noexcept {
        return reservoir_;
    }
    /// Drug delivered within the trailing 60-minute window.
    [[nodiscard]] physio::Dose delivered_last_hour() const;
    /// True while any drug is flowing (basal or bolus).
    [[nodiscard]] bool delivering() const noexcept {
        return state_ == PumpState::kInfusing || state_ == PumpState::kBolusActive;
    }
    /// Time at which the lockout window ends (never() if no bolus yet).
    [[nodiscard]] mcps::sim::SimTime lockout_until() const noexcept {
        return lockout_until_;
    }

    /// Reprogram the prescription; only allowed in Idle/Paused.
    void set_prescription(const Prescription& rx);

protected:
    void on_start() override;
    void on_stop() override;

private:
    void tick();
    void enter_state(PumpState s, const std::string& why);
    void raise_alarm(PumpAlarm a);
    void deliver(physio::Dose d);
    void prune_window();
    void handle_command(const mcps::net::Message& m);

    physio::Patient& patient_;
    Prescription rx_;
    PumpConfig cfg_;

    PumpState state_ = PumpState::kOff;
    PumpAlarm alarm_ = PumpAlarm::kNone;
    physio::Dose reservoir_;
    physio::Dose bolus_remaining_;
    mcps::sim::SimTime lockout_until_ = mcps::sim::SimTime::origin();
    std::deque<std::pair<mcps::sim::SimTime, double>> window_mg_;
    double window_total_mg_ = 0.0;
    PumpStats stats_;
    mcps::sim::EventHandle tick_handle_;
    mcps::sim::EventHandle status_handle_;
    mcps::net::SubscriptionId cmd_sub_;
};

}  // namespace mcps::devices
