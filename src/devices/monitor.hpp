/// \file monitor.hpp
/// \brief Bedside multi-parameter monitor with classic threshold alarms.
///
/// This is the *baseline* the paper's smart-alarm thread argues against:
/// each vital sign is compared against a static threshold in isolation,
/// so every motion artifact or brief dropout rings the room. Experiment
/// E3 pits this device against the core library's fused SmartAlarm.

#pragma once

#include <map>
#include <optional>
#include <vector>

#include "device.hpp"

namespace mcps::devices {

/// One per-metric threshold rule.
struct ThresholdRule {
    std::string metric;  ///< e.g. "spo2"
    double low = -1e300;   ///< alarm when value < low
    double high = 1e300;   ///< alarm when value > high
    /// Consecutive violating samples required before the alarm fires
    /// (1 = immediate, the common clinical default).
    int persistence = 1;
};

/// A fired alarm record.
struct MonitorAlarm {
    mcps::sim::SimTime at;
    std::string metric;
    double value;
    std::string reason;  ///< "low" or "high"
};

struct MonitorConfig {
    std::string bed = "bed1";
    /// A metric older than this is considered stale (sensor silent).
    mcps::sim::SimDuration staleness_limit = mcps::sim::SimDuration::seconds(10);
    /// Re-arm interval: after firing, an alarm for the same metric cannot
    /// re-fire within this period (prevents one event counting many times).
    mcps::sim::SimDuration rearm = mcps::sim::SimDuration::seconds(30);
    std::vector<ThresholdRule> rules;

    /// Conventional adult defaults for the three interlock vitals.
    [[nodiscard]] static MonitorConfig adult_defaults(std::string bed = "bed1");
};

/// Last-known view of one metric.
struct MetricView {
    double value = 0.0;
    bool valid = true;
    mcps::sim::SimTime updated_at;
};

class BedsideMonitor : public Device {
public:
    BedsideMonitor(DeviceContext ctx, std::string name, MonitorConfig cfg);

    /// Latest value for a metric (nullopt if never seen).
    [[nodiscard]] std::optional<MetricView> latest(
        const std::string& metric) const;
    /// True if the metric's last update is older than the staleness limit.
    [[nodiscard]] bool is_stale(const std::string& metric) const;

    [[nodiscard]] const std::vector<MonitorAlarm>& alarms() const noexcept {
        return alarms_;
    }
    [[nodiscard]] const MonitorConfig& config() const noexcept { return cfg_; }

protected:
    void on_start() override;
    void on_stop() override;

private:
    void on_vital(const mcps::net::Message& m);
    void fire(const std::string& metric, double value, const std::string& why);

    MonitorConfig cfg_;
    std::map<std::string, MetricView> latest_;
    std::map<std::string, int> violation_streak_;
    std::map<std::string, mcps::sim::SimTime> last_fired_;
    std::vector<MonitorAlarm> alarms_;
    mcps::net::SubscriptionId sub_;
};

}  // namespace mcps::devices
