#include "gpca_pump.hpp"

#include <algorithm>

namespace mcps::devices {

using mcps::sim::SimDuration;
using mcps::sim::SimTime;
using physio::Dose;

void Prescription::validate() const {
    if (basal < physio::InfusionRate::zero()) {
        throw std::invalid_argument("Prescription: negative basal rate");
    }
    if (bolus_dose <= Dose::zero()) {
        throw std::invalid_argument("Prescription: bolus dose must be positive");
    }
    if (lockout <= SimDuration::zero()) {
        throw std::invalid_argument("Prescription: lockout must be positive");
    }
    if (max_hourly <= Dose::zero()) {
        throw std::invalid_argument("Prescription: hourly cap must be positive");
    }
    if (bolus_rate_mg_per_min <= 0) {
        throw std::invalid_argument("Prescription: bolus rate must be positive");
    }
    if (bolus_dose > max_hourly) {
        throw std::invalid_argument(
            "Prescription: a single bolus exceeds the hourly cap");
    }
}

std::string_view to_string(PumpState s) noexcept {
    switch (s) {
        case PumpState::kOff: return "off";
        case PumpState::kSelfTest: return "selftest";
        case PumpState::kIdle: return "idle";
        case PumpState::kInfusing: return "infusing";
        case PumpState::kBolusActive: return "bolus";
        case PumpState::kPaused: return "paused";
        case PumpState::kAlarm: return "alarm";
    }
    return "unknown";
}

std::string_view to_string(PumpAlarm a) noexcept {
    switch (a) {
        case PumpAlarm::kNone: return "none";
        case PumpAlarm::kOcclusion: return "occlusion";
        case PumpAlarm::kAirInLine: return "air-in-line";
        case PumpAlarm::kReservoirEmpty: return "reservoir-empty";
        case PumpAlarm::kHourlyLimit: return "hourly-limit";
    }
    return "unknown";
}

GpcaPump::GpcaPump(DeviceContext ctx, std::string name,
                   physio::Patient& patient, Prescription rx, PumpConfig cfg)
    : Device{ctx, std::move(name), DeviceKind::kInfusionPump},
      patient_{patient},
      rx_{rx},
      cfg_{cfg},
      reservoir_{cfg.reservoir} {
    rx_.validate();
    if (cfg_.tick <= SimDuration::zero()) {
        throw std::invalid_argument("PumpConfig: tick must be positive");
    }
    add_capability("analgesia");
    add_capability("bolus");
    add_capability("remote-stop");
}

void GpcaPump::on_start() {
    enter_state(PumpState::kSelfTest, "power-on");
    // Remote command surface.
    cmd_sub_ = bus().subscribe(name(), "cmd/" + name(),
                               [this](const mcps::net::Message& m) {
                                   handle_command(m);
                               });
    sim().schedule_after(cfg_.selftest_duration, [this] {
        if (state_ == PumpState::kSelfTest) {
            enter_state(PumpState::kInfusing, "selftest-pass");
        }
    });
    tick_handle_ = sim().schedule_periodic(cfg_.tick, [this] { tick(); });
    status_handle_ = sim().schedule_periodic(cfg_.status_period, [this] {
        publish_status(std::string{to_string(state_)},
                       std::string{to_string(alarm_)});
    });
}

void GpcaPump::on_stop() {
    tick_handle_.cancel();
    status_handle_.cancel();
    bus().unsubscribe(cmd_sub_);
    enter_state(PumpState::kOff, "power-off");
}

void GpcaPump::enter_state(PumpState s, const std::string& why) {
    if (state_ == s) return;
    state_ = s;
    trace().mark(sim().now(),
                 "pump/" + name() + "/" + std::string{to_string(s)});
    publish_status(std::string{to_string(s)}, why);
}

void GpcaPump::raise_alarm(PumpAlarm a) {
    alarm_ = a;
    trace().mark(sim().now(),
                 "pump_alarm/" + name() + "/" + std::string{to_string(a)});
    if (a == PumpAlarm::kHourlyLimit) {
        // Advisory only: boluses are being denied but basal continues
        // (subject to the same cap check in tick()).
        publish("alarm/" + name(),
                mcps::net::StatusPayload{"advisory", std::string{to_string(a)}});
        return;
    }
    // Critical alarms latch and stop all delivery (R3).
    bolus_remaining_ = Dose::zero();
    enter_state(PumpState::kAlarm, std::string{to_string(a)});
    publish("alarm/" + name(),
            mcps::net::StatusPayload{"critical", std::string{to_string(a)}});
}

void GpcaPump::prune_window() {
    const SimTime cutoff = sim().now() - SimDuration::hours(1);
    while (!window_mg_.empty() && window_mg_.front().first < cutoff) {
        window_total_mg_ -= window_mg_.front().second;
        window_mg_.pop_front();
    }
    if (window_total_mg_ < 0) window_total_mg_ = 0;
}

Dose GpcaPump::delivered_last_hour() const {
    // Note: may include slightly stale entries between ticks; tick()
    // prunes before every delivery decision.
    return Dose::mg(window_total_mg_);
}

void GpcaPump::deliver(Dose d) {
    if (d <= Dose::zero()) return;
    const Dose actual = std::min(d, reservoir_);
    if (actual > Dose::zero()) {
        patient_.bolus(actual);
        reservoir_ -= actual;
        window_mg_.emplace_back(sim().now(), actual.as_mg());
        window_total_mg_ += actual.as_mg();
        stats_.total_delivered += actual;
    }
    if (reservoir_ <= Dose::zero()) {
        raise_alarm(PumpAlarm::kReservoirEmpty);  // R5
    }
}

void GpcaPump::tick() {
    if (!delivering()) return;
    prune_window();

    const double dt_min = cfg_.tick.to_seconds() / 60.0;
    const double cap_mg = rx_.max_hourly.as_mg();

    // Basal component, throttled so the sliding-window cap holds (R2).
    double basal_mg = rx_.basal.as_mg_per_hour() / 60.0 * dt_min;
    basal_mg = std::min(basal_mg, std::max(0.0, cap_mg - window_total_mg_));

    // Bolus component.
    double bolus_mg = 0.0;
    if (state_ == PumpState::kBolusActive) {
        bolus_mg = std::min(bolus_remaining_.as_mg(),
                            rx_.bolus_rate_mg_per_min * dt_min);
        bolus_mg = std::min(
            bolus_mg, std::max(0.0, cap_mg - window_total_mg_ - basal_mg));
        bolus_remaining_ -= Dose::mg(bolus_mg);
        if (bolus_remaining_ <= Dose::mg(1e-9)) {
            bolus_remaining_ = Dose::zero();
            enter_state(PumpState::kInfusing, "bolus-complete");
        }
    }

    deliver(Dose::mg(basal_mg + bolus_mg));
    trace().record("pump/" + name() + "/window_mg", sim().now(),
                   window_total_mg_);
}

bool GpcaPump::press_button() {
    ++stats_.boluses_requested;
    trace().mark(sim().now(), "pump/" + name() + "/button");

    if (state_ != PumpState::kInfusing && state_ != PumpState::kBolusActive) {
        ++stats_.denied_state;  // R6
        return false;
    }
    if (state_ == PumpState::kBolusActive || sim().now() < lockout_until_) {
        ++stats_.denied_lockout;  // R1
        return false;
    }
    prune_window();
    // Epsilon guards against accumulated per-tick rounding in the window
    // sum denying a bolus that exactly fits the cap.
    if (window_total_mg_ + rx_.bolus_dose.as_mg() >
        rx_.max_hourly.as_mg() + 1e-9) {
        ++stats_.denied_hourly;  // R2
        raise_alarm(PumpAlarm::kHourlyLimit);
        return false;
    }

    bolus_remaining_ = rx_.bolus_dose;
    lockout_until_ = sim().now() + rx_.lockout;
    ++stats_.boluses_delivered;
    enter_state(PumpState::kBolusActive, "bolus-start");
    return true;
}

void GpcaPump::operator_pause() {
    if (state_ == PumpState::kInfusing || state_ == PumpState::kBolusActive) {
        bolus_remaining_ = Dose::zero();
        enter_state(PumpState::kPaused, "operator-pause");
    }
}

void GpcaPump::operator_resume() {
    if (state_ == PumpState::kPaused || state_ == PumpState::kIdle) {
        enter_state(PumpState::kInfusing, "operator-resume");
    }
}

void GpcaPump::clear_alarm() {
    if (state_ != PumpState::kAlarm) {
        if (alarm_ == PumpAlarm::kHourlyLimit) alarm_ = PumpAlarm::kNone;
        return;
    }
    if (alarm_ == PumpAlarm::kReservoirEmpty && reservoir_ <= Dose::zero()) {
        return;  // cannot clear until the reservoir is replaced
    }
    alarm_ = PumpAlarm::kNone;
    enter_state(PumpState::kIdle, "alarm-cleared");
}

void GpcaPump::inject_fault(PumpAlarm fault) {
    if (fault == PumpAlarm::kNone) return;
    raise_alarm(fault);
}

void GpcaPump::set_prescription(const Prescription& rx) {
    if (state_ != PumpState::kIdle && state_ != PumpState::kPaused &&
        state_ != PumpState::kOff) {
        throw std::logic_error(
            "set_prescription: pump must be idle/paused, is " +
            std::string{to_string(state_)});
    }
    rx.validate();
    rx_ = rx;
}

void GpcaPump::handle_command(const mcps::net::Message& m) {
    const auto* cmd = mcps::net::payload_as<mcps::net::CommandPayload>(m);
    if (!cmd) return;

    bool ok = true;
    std::string detail;
    if (cmd->action == "stop_infusion") {
        // R4: unconditional, immediate stop of all delivery.
        bolus_remaining_ = Dose::zero();
        ++stats_.remote_stops;
        if (delivering()) enter_state(PumpState::kPaused, "remote-stop");
        detail = "stopped";
    } else if (cmd->action == "pause") {
        operator_pause();
        detail = "paused";
    } else if (cmd->action == "resume") {
        operator_resume();
        ok = state_ == PumpState::kInfusing;
        detail = ok ? "resumed" : "resume-rejected";
    } else if (cmd->action == "bolus_request") {
        ok = press_button();
        detail = ok ? "bolus-started" : "bolus-denied";
    } else {
        ok = false;
        detail = "unknown-action:" + cmd->action;
    }
    if (auto* log = events()) {
        log->emit(mcps::obs::EventKind::kPumpCommand, sim().now(), name(),
                  cmd->action + ":" + detail,
                  static_cast<double>(cmd->command_seq));
    }
    publish("ack/" + name(),
            mcps::net::AckPayload{cmd->command_seq, ok, detail});
}

}  // namespace mcps::devices
