/// \file pulse_oximeter.hpp
/// \brief Pulse oximeter device: SpO2 + pulse rate publisher.
///
/// The sensor half of the PCA safety interlock. Publishes
/// "vitals/<bed>/spo2" and "vitals/<bed>/pulse_rate" every sample period,
/// with the realistic ~8 s SpO2 averaging lag that delays desaturation
/// detection (a key latency budget item for the E1/E2 experiments).

#pragma once

#include <memory>

#include "physio/patient.hpp"
#include "sensor.hpp"

namespace mcps::devices {

struct PulseOximeterConfig {
    std::string bed = "bed1";
    mcps::sim::SimDuration sample_period = mcps::sim::SimDuration::seconds(1);
    mcps::sim::SimDuration averaging_window = mcps::sim::SimDuration::seconds(8);
    double spo2_noise_sd = 0.6;
    double artifact_probability = 0.0;   ///< per sample; motion artifacts
    double artifact_magnitude = -18.0;   ///< artifacts read falsely LOW
    bool artifact_flagged = false;
    double dropout_probability = 0.0;    ///< per sample; probe-off
    mcps::sim::SimDuration dropout_duration = mcps::sim::SimDuration::seconds(25);
};

/// The device. Ground truth comes from the attached Patient.
class PulseOximeter : public Device {
public:
    PulseOximeter(DeviceContext ctx, std::string name,
                  const physio::Patient& patient, PulseOximeterConfig cfg = {});

    [[nodiscard]] const PulseOximeterConfig& config() const noexcept {
        return cfg_;
    }
    /// Fault-injection hooks (E8).
    void force_dropout(mcps::sim::SimDuration d);
    void force_artifact(mcps::sim::SimDuration d);
    [[nodiscard]] bool in_dropout() const noexcept;

protected:
    void on_start() override;
    void on_stop() override;

private:
    void sample_tick();

    const physio::Patient& patient_;
    PulseOximeterConfig cfg_;
    std::unique_ptr<SensorChannel> spo2_;
    std::unique_ptr<SensorChannel> pulse_;
    mcps::sim::EventHandle tick_;
};

}  // namespace mcps::devices
