/// \file xray.hpp
/// \brief Portable X-ray machine for the ventilator-sync scenario (E4).
///
/// An exposure takes a fixed window; if the chest moves during more than
/// a small fraction of that window the film is motion-blurred and must be
/// retaken (extra radiation dose — the clinical cost the coordination
/// scenario eliminates). The machine itself knows nothing about
/// ventilators: it samples a motion probe wired up by the scenario,
/// mirroring the real separation of vendors the paper highlights.

#pragma once

#include <functional>
#include <vector>

#include "device.hpp"

namespace mcps::devices {

struct XRayConfig {
    /// Time from the expose command to the start of the exposure window
    /// (generator charge + positioning confirmation).
    mcps::sim::SimDuration prep_time = mcps::sim::SimDuration::millis(1500);
    mcps::sim::SimDuration exposure = mcps::sim::SimDuration::millis(600);
    /// Motion during more than this fraction of the window blurs the film.
    double blur_fraction_threshold = 0.15;
    /// Motion sampling resolution within the exposure window.
    mcps::sim::SimDuration motion_sample = mcps::sim::SimDuration::millis(50);
};

/// Outcome of one exposure.
struct ImageResult {
    mcps::sim::SimTime exposed_at;
    double motion_fraction = 0.0;
    bool sharp = false;
};

class XRayMachine : public Device {
public:
    /// \param motion_probe returns true when the chest is currently moving.
    using MotionProbe = std::function<bool()>;

    XRayMachine(DeviceContext ctx, std::string name, MotionProbe motion_probe,
                XRayConfig cfg = {});

    /// Begin an exposure sequence (prep, then the exposure window).
    /// Also triggered remotely by command action "expose".
    /// Returns false if an exposure is already in progress.
    bool expose();

    [[nodiscard]] bool busy() const noexcept { return busy_; }
    [[nodiscard]] const std::vector<ImageResult>& results() const noexcept {
        return results_;
    }
    [[nodiscard]] const XRayConfig& config() const noexcept { return cfg_; }

protected:
    void on_start() override;
    void on_stop() override;

private:
    void begin_window();
    void finish_window();
    void handle_command(const mcps::net::Message& m);

    MotionProbe motion_probe_;
    XRayConfig cfg_;
    bool busy_ = false;
    std::uint64_t motion_hits_ = 0;
    std::uint64_t motion_samples_ = 0;
    mcps::sim::EventHandle sampler_;
    mcps::net::SubscriptionId cmd_sub_;
    std::vector<ImageResult> results_;
};

}  // namespace mcps::devices
