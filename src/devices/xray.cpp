#include "xray.hpp"

namespace mcps::devices {

using mcps::sim::SimDuration;

XRayMachine::XRayMachine(DeviceContext ctx, std::string name,
                         MotionProbe motion_probe, XRayConfig cfg)
    : Device{ctx, std::move(name), DeviceKind::kXRay},
      motion_probe_{std::move(motion_probe)},
      cfg_{cfg} {
    if (!motion_probe_) {
        throw std::invalid_argument("XRayMachine: null motion probe");
    }
    if (cfg_.exposure <= SimDuration::zero() ||
        cfg_.motion_sample <= SimDuration::zero()) {
        throw std::invalid_argument("XRayConfig: non-positive durations");
    }
    add_capability("imaging");
}

void XRayMachine::on_start() {
    cmd_sub_ = bus().subscribe(name(), "cmd/" + name(),
                               [this](const mcps::net::Message& m) {
                                   handle_command(m);
                               });
}

void XRayMachine::on_stop() {
    sampler_.cancel();
    bus().unsubscribe(cmd_sub_);
    busy_ = false;
}

bool XRayMachine::expose() {
    if (busy_ || !running()) return false;
    busy_ = true;
    trace().mark(sim().now(), "xray/" + name() + "/prep");
    publish_status("prep");
    sim().schedule_after(cfg_.prep_time, [this] { begin_window(); });
    return true;
}

void XRayMachine::begin_window() {
    if (!running()) {
        busy_ = false;
        return;
    }
    motion_hits_ = 0;
    motion_samples_ = 0;
    trace().mark(sim().now(), "xray/" + name() + "/expose");
    publish_status("exposing");
    sampler_ = sim().schedule_periodic(cfg_.motion_sample, [this] {
        ++motion_samples_;
        if (motion_probe_()) ++motion_hits_;
    });
    sim().schedule_after(cfg_.exposure, [this] { finish_window(); });
}

void XRayMachine::finish_window() {
    sampler_.cancel();
    if (!running()) {
        busy_ = false;
        return;
    }
    ImageResult r;
    r.exposed_at = sim().now();
    r.motion_fraction =
        motion_samples_ == 0
            ? 0.0
            : static_cast<double>(motion_hits_) /
                  static_cast<double>(motion_samples_);
    r.sharp = r.motion_fraction <= cfg_.blur_fraction_threshold;
    results_.push_back(r);
    busy_ = false;
    trace().mark(sim().now(), std::string{"xray/"} + name() + "/" +
                                  (r.sharp ? "sharp" : "blurred"));
    publish("image/" + name(),
            mcps::net::StatusPayload{r.sharp ? "sharp" : "blurred",
                                     "motion=" +
                                         std::to_string(r.motion_fraction)});
}

void XRayMachine::handle_command(const mcps::net::Message& m) {
    const auto* cmd = mcps::net::payload_as<mcps::net::CommandPayload>(m);
    if (!cmd) return;
    bool ok = true;
    std::string detail;
    if (cmd->action == "expose") {
        ok = expose();
        detail = ok ? "exposing" : "busy";
    } else {
        ok = false;
        detail = "unknown-action:" + cmd->action;
    }
    publish("ack/" + name(), mcps::net::AckPayload{cmd->command_seq, ok, detail});
}

}  // namespace mcps::devices
