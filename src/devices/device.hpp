/// \file device.hpp
/// \brief Common base for simulated medical devices on the ICE bus.
///
/// Every device has a stable name, a declared DeviceKind and capability
/// list (used by the ICE registry for on-demand scenario assembly), a
/// lifecycle (start/stop), and an optional periodic heartbeat that
/// supervisors use for liveness monitoring — the paper's "devices from
/// several vendors assembled at the bedside" become instances of these
/// classes wired to one Bus.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/bus.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace mcps::devices {

/// Coarse device taxonomy used for capability matching.
enum class DeviceKind {
    kInfusionPump,
    kPulseOximeter,
    kCapnometer,
    kVentilator,
    kXRay,
    kMonitor,
    kSupervisor,
};

[[nodiscard]] std::string_view to_string(DeviceKind k) noexcept;

/// Shared wiring for a device: the simulation kernel, the data bus and
/// the trace recorder. All references must outlive the device. The
/// optional structured event log is shared by every component of a
/// scenario; nullptr (the default) disables event emission.
struct DeviceContext {
    mcps::sim::Simulation& sim;
    mcps::net::Bus& bus;
    mcps::sim::TraceRecorder& trace;
    mcps::obs::EventLog* events = nullptr;
};

/// Abstract device. Concrete devices implement on_start/on_stop and wire
/// their own subscriptions and periodic processes.
class Device {
public:
    /// \param ctx shared wiring (kernel/bus/trace; must outlive the device)
    /// \param name unique endpoint name, e.g. "pump1"
    /// \param kind taxonomy entry for registry matching
    Device(DeviceContext ctx, std::string name, DeviceKind kind);
    virtual ~Device();

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    /// Begin operating: emits a "online" status, starts heartbeats (if
    /// enabled via set_heartbeat_period) and calls on_start().
    void start();
    /// Stop operating: cancels heartbeats, calls on_stop(), emits
    /// "offline" status.
    void stop();
    [[nodiscard]] bool running() const noexcept { return running_; }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] DeviceKind kind() const noexcept { return kind_; }

    /// Capability tags advertised to the registry ("spo2", "bolus", ...).
    [[nodiscard]] const std::vector<std::string>& capabilities() const noexcept {
        return capabilities_;
    }

    /// Enable periodic heartbeats on topic "heartbeat/<name>".
    /// Must be called before start(); zero disables.
    void set_heartbeat_period(mcps::sim::SimDuration period);

    /// Simulate a crash: the device stops publishing everything
    /// (including heartbeats) without an "offline" status — the failure
    /// mode supervisors must detect by heartbeat loss.
    void crash();
    [[nodiscard]] bool crashed() const noexcept { return crashed_; }

protected:
    virtual void on_start() = 0;
    virtual void on_stop() = 0;

    /// Publish helper; silently swallowed when crashed.
    void publish(const std::string& topic, mcps::net::Payload payload);
    /// Publish "status/<name>" with the given state/detail.
    void publish_status(const std::string& state, const std::string& detail = "");

    [[nodiscard]] mcps::sim::Simulation& sim() noexcept { return ctx_.sim; }
    [[nodiscard]] const mcps::sim::Simulation& sim() const noexcept {
        return ctx_.sim;
    }
    [[nodiscard]] mcps::net::Bus& bus() noexcept { return ctx_.bus; }
    [[nodiscard]] mcps::sim::TraceRecorder& trace() noexcept { return ctx_.trace; }
    /// Structured event log; nullptr when observability is disabled.
    [[nodiscard]] mcps::obs::EventLog* events() noexcept { return ctx_.events; }

    void add_capability(std::string cap) {
        capabilities_.push_back(std::move(cap));
    }

private:
    DeviceContext ctx_;
    std::string name_;
    DeviceKind kind_;
    std::vector<std::string> capabilities_;
    bool running_ = false;
    bool crashed_ = false;
    mcps::sim::SimDuration heartbeat_period_ = mcps::sim::SimDuration::zero();
    mcps::sim::EventHandle heartbeat_handle_;
    std::uint64_t heartbeat_count_ = 0;
};

}  // namespace mcps::devices
