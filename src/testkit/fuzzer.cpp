#include "fuzzer.hpp"

#include <sstream>

namespace mcps::testkit {

namespace {

void emit(const FuzzOptions& opts, const std::string& line) {
    if (opts.log) opts.log(line);
}

}  // namespace

std::string describe_violations(const std::vector<Violation>& vs) {
    std::ostringstream os;
    for (std::size_t i = 0; i < vs.size(); ++i) {
        if (i) os << "; ";
        os << vs[i].invariant << " @" << vs[i].at_s << "s: " << vs[i].detail;
    }
    return os.str();
}

FuzzFailure capture_failure(const FuzzOptions& opts,
                            const InvariantChecker& checker, Repro repro,
                            std::vector<Violation> violations) {
    FuzzFailure f;
    f.original_fault_events = repro.faults.size();
    f.violations = std::move(violations);
    if (opts.shrink) {
        repro = shrink(repro, checker, &f.shrink_runs);
        // The shrunk plan is the canonical counterexample; report its
        // violations, not the original run's.
        f.violations = replay(repro, checker).violations;
        ++f.shrink_runs;
    }
    const auto verify = replay(repro, checker);
    f.replay_byte_identical = verify.byte_identical;
    f.repro = std::move(repro);
    if (!opts.repro_dir.empty()) {
        std::ostringstream name;
        name << opts.repro_dir << "/repro-" << f.repro.seed << "-"
             << f.repro.index << ".txt";
        f.repro_path = name.str();
        save_repro(f.repro_path, f.repro);
    }
    return f;
}

FuzzOutcome run_fuzz(const FuzzOptions& opts, const InvariantChecker& checker) {
    const ScenarioGenerator gen{opts.seed, opts.fault_intensity};
    FuzzOutcome out;

    for (std::uint64_t i = 0; i < opts.scenarios; ++i) {
        ++out.scenarios_run;
        const WorkloadKind kind =
            opts.weakened ? WorkloadKind::kPca
                          : gen.kind_of(i, opts.xray_fraction);

        Repro repro;
        repro.seed = opts.seed;
        repro.index = i;
        repro.kind = kind;
        repro.weakened = opts.weakened;

        std::vector<Violation> violations;
        if (kind == WorkloadKind::kXray) {
            ++out.xray_runs;
            const auto run = run_instrumented_xray(gen.xray(i).config);
            violations = run.violations;
            repro.fingerprint = run.fingerprint;
        } else {
            ++out.pca_runs;
            const auto g =
                opts.weakened ? gen.weakened_pca(i) : gen.pca(i);
            const auto run = run_instrumented_pca(g.config, g.faults, checker);
            violations = run.violations;
            repro.faults = g.faults;
            repro.fingerprint = run.fingerprint;
        }

        if (violations.empty()) continue;

        emit(opts, "scenario " + std::to_string(i) + " (" +
                       std::string{to_string(kind)} +
                       ") violated: " + describe_violations(violations));
        auto failure = capture_failure(opts, checker, std::move(repro),
                                       std::move(violations));
        if (opts.shrink) {
            emit(opts, "  shrunk " +
                           std::to_string(failure.original_fault_events) +
                           " -> " + std::to_string(failure.repro.faults.size()) +
                           " fault events in " +
                           std::to_string(failure.shrink_runs) + " runs");
        }
        emit(opts, std::string{"  replay byte-identical: "} +
                       (failure.replay_byte_identical ? "yes" : "NO"));
        if (!failure.repro_path.empty()) {
            emit(opts, "  repro saved: " + failure.repro_path);
        }
        out.failures.push_back(std::move(failure));
    }
    return out;
}

FuzzOutcome run_fuzz(const FuzzOptions& opts) {
    return run_fuzz(opts, InvariantChecker::with_defaults());
}

}  // namespace mcps::testkit
