#include "invariants.hpp"

#include <sstream>

namespace mcps::testkit {

using mcps::sim::Signal;
using mcps::sim::SimTime;

void InvariantChecker::add_pca(std::string name, PcaCheck check) {
    pca_checks_.emplace_back(std::move(name), std::move(check));
}

std::vector<Violation> InvariantChecker::check_pca(
    const PcaCheckContext& ctx) const {
    std::vector<Violation> out;
    for (const auto& [name, check] : pca_checks_) check(ctx, out);
    return out;
}

std::vector<std::string> InvariantChecker::names() const {
    std::vector<std::string> out;
    out.reserve(pca_checks_.size());
    for (const auto& [name, check] : pca_checks_) out.push_back(name);
    return out;
}

namespace {

std::string fmt(double v, int prec = 1) {
    std::ostringstream os;
    os.precision(prec);
    os << std::fixed << v;
    return os.str();
}

/// Pump never still delivering `deadline` after severe-hypoxemia onset.
/// Walks the 1 Hz ground-truth grid; one violation per hypoxemia episode.
void check_depression_interlock(const InvariantTolerances& tol,
                                const PcaCheckContext& ctx,
                                std::vector<Violation>& out) {
    if (!ctx.cfg.interlock) return;  // open loop claims nothing
    const Signal* spo2 = ctx.trace.find("truth/spo2");
    const Signal* deliv = ctx.trace.find("pump/delivering");
    if (!spo2 || !deliv) return;

    double below_since = -1.0;
    bool flagged_this_episode = false;
    for (const auto& s : spo2->samples()) {
        const double t = s.time.to_seconds();
        if (s.value < tol.severe_spo2) {
            if (below_since < 0) below_since = t;
        } else {
            below_since = -1.0;
            flagged_this_episode = false;
        }
        if (below_since >= 0 && !flagged_this_episode &&
            t - below_since > tol.interlock_deadline_s &&
            deliv->value_at(s.time).value_or(0.0) > 0.5) {
            out.push_back(Violation{
                "pca/respiratory-depression-interlock", t,
                "pump delivering " + fmt(t - below_since) +
                    "s after SpO2 fell below " + fmt(tol.severe_spo2) +
                    "% (deadline " + fmt(tol.interlock_deadline_s) + "s)"});
            flagged_this_episode = true;
        }
    }
}

/// Fail-safe policy: sustained oximeter silence must stop the pump within
/// staleness_limit + slack of dropout onset.
void check_data_loss_failsafe(const InvariantTolerances& tol,
                              const PcaCheckContext& ctx,
                              std::vector<Violation>& out) {
    if (!ctx.cfg.interlock ||
        ctx.cfg.interlock->data_loss != core::DataLossPolicy::kFailSafe) {
        return;
    }
    const Signal* drop = ctx.trace.find("testkit/oxi_dropout");
    const Signal* deliv = ctx.trace.find("pump/delivering");
    if (!drop || !deliv) return;

    const double limit =
        ctx.cfg.interlock->staleness_limit.to_seconds() + tol.data_loss_slack_s;
    double drop_since = -1.0;
    bool flagged_this_window = false;
    for (const auto& s : drop->samples()) {
        const double t = s.time.to_seconds();
        if (s.value > 0.5) {
            if (drop_since < 0) drop_since = t;
        } else {
            drop_since = -1.0;
            flagged_this_window = false;
        }
        if (drop_since >= 0 && !flagged_this_window && t - drop_since > limit &&
            deliv->value_at(s.time).value_or(0.0) > 0.5) {
            out.push_back(Violation{
                "pca/fail-safe-on-sensor-silence", t,
                "pump delivering " + fmt(t - drop_since) +
                    "s into an SpO2 dropout (fail-safe limit " + fmt(limit) +
                    "s)"});
            flagged_this_window = true;
        }
    }
}

/// GPCA R2 observed end-to-end: trailing-hour dose never exceeds the cap.
void check_hourly_cap(const InvariantTolerances& tol,
                      const PcaCheckContext& ctx,
                      std::vector<Violation>& out) {
    const Signal* hourly = ctx.trace.find("testkit/pump_hourly_mg");
    if (!hourly) return;
    const double cap =
        ctx.cfg.prescription.max_hourly.as_mg() * tol.hourly_cap_factor + 0.05;
    for (const auto& s : hourly->samples()) {
        if (s.value > cap) {
            out.push_back(Violation{
                "pca/hourly-dose-cap", s.time.to_seconds(),
                "trailing-hour dose " + fmt(s.value, 2) + " mg exceeds cap " +
                    fmt(ctx.cfg.prescription.max_hourly.as_mg(), 2) + " mg"});
            return;  // one report is enough; later samples are correlated
        }
    }
}

/// GPCA R5 observed end-to-end: no delivery from an empty reservoir.
void check_reservoir(const InvariantTolerances&, const PcaCheckContext& ctx,
                     std::vector<Violation>& out) {
    const Signal* res = ctx.trace.find("testkit/pump_reservoir_mg");
    const Signal* deliv = ctx.trace.find("pump/delivering");
    if (!res || !deliv) return;
    for (const auto& s : res->samples()) {
        if (s.value <= 1e-6 && deliv->value_at(s.time).value_or(0.0) > 0.5) {
            out.push_back(Violation{"pca/no-empty-reservoir-delivery",
                                    s.time.to_seconds(),
                                    "pump delivering with empty reservoir"});
            return;
        }
    }
}

/// Alarms are never silently dropped by the middleware: every alarm a
/// device raised was observed by the ideal-link probe.
void check_alarm_delivery(const InvariantTolerances&,
                          const PcaCheckContext& ctx,
                          std::vector<Violation>& out) {
    if (ctx.cfg.with_smart_alarm &&
        ctx.probe_smart_alarms != ctx.result.smart_alarm_count) {
        out.push_back(Violation{
            "pca/alarms-never-silently-dropped", 0.0,
            "smart alarm raised " + std::to_string(ctx.result.smart_alarm_count) +
                " alarms but the ideal-link probe observed " +
                std::to_string(ctx.probe_smart_alarms)});
    }
    if (ctx.cfg.with_monitor &&
        ctx.probe_monitor_alarms != ctx.result.monitor_alarm_count) {
        out.push_back(Violation{
            "pca/alarms-never-silently-dropped", 0.0,
            "monitor raised " + std::to_string(ctx.result.monitor_alarm_count) +
                " alarms but the ideal-link probe observed " +
                std::to_string(ctx.probe_monitor_alarms)});
    }
}

}  // namespace

InvariantChecker InvariantChecker::with_defaults(InvariantTolerances tol) {
    InvariantChecker c;
    c.add_pca("pca/respiratory-depression-interlock",
              [tol](const PcaCheckContext& ctx, std::vector<Violation>& out) {
                  check_depression_interlock(tol, ctx, out);
              });
    c.add_pca("pca/fail-safe-on-sensor-silence",
              [tol](const PcaCheckContext& ctx, std::vector<Violation>& out) {
                  check_data_loss_failsafe(tol, ctx, out);
              });
    c.add_pca("pca/hourly-dose-cap",
              [tol](const PcaCheckContext& ctx, std::vector<Violation>& out) {
                  check_hourly_cap(tol, ctx, out);
              });
    c.add_pca("pca/no-empty-reservoir-delivery",
              [tol](const PcaCheckContext& ctx, std::vector<Violation>& out) {
                  check_reservoir(tol, ctx, out);
              });
    c.add_pca("pca/alarms-never-silently-dropped",
              [tol](const PcaCheckContext& ctx, std::vector<Violation>& out) {
                  check_alarm_delivery(tol, ctx, out);
              });
    return c;
}

std::vector<Violation> InvariantChecker::check_xray(
    const core::XrayScenarioConfig& cfg, const core::XrayScenarioResult& result,
    InvariantTolerances tol) {
    std::vector<Violation> out;
    const double bound =
        cfg.ventilator.max_pause.to_seconds() + tol.pause_slack_s;
    if (result.max_apnea_s > bound) {
        out.push_back(Violation{
            "xray/vent-pause-bounded", 0.0,
            "imposed apnea " + fmt(result.max_apnea_s) +
                "s exceeds ventilator max_pause bound " + fmt(bound) + "s"});
    }
    return out;
}

}  // namespace mcps::testkit
