/// \file invariants.hpp
/// \brief Executable safety invariants checked over scenario traces.
///
/// Each invariant encodes one of the paper's safety properties as a
/// predicate over a completed run's trace and metrics. Invariants are
/// *clinical* requirements, deliberately independent of how any
/// particular interlock configuration claims to meet them: a correctly
/// functioning closed loop inside the claimed-safe configuration envelope
/// always satisfies them (with generous timing slack), while a weakened
/// or buggy loop does not. That asymmetry is what makes randomized
/// fault-injection meaningful.
///
/// Adding an invariant: write a `void(const PcaCheckContext&,
/// std::vector<Violation>&)` functor and register it with
/// InvariantChecker::add_pca (see with_defaults() for idiomatic walks
/// over the 1 Hz ground-truth signals).

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/pca_scenario.hpp"
#include "core/xray_scenario.hpp"

namespace mcps::testkit {

/// One observed safety violation.
struct Violation {
    std::string invariant;  ///< stable invariant name
    double at_s = 0.0;      ///< simulated time of the (first) offense
    std::string detail;     ///< human-readable specifics

    friend bool operator==(const Violation&, const Violation&) = default;
};

/// Clinical tolerances shared by the default invariants.
struct InvariantTolerances {
    /// SpO2 below this is severe hypoxemia — the hazard the interlock
    /// must bound.
    double severe_spo2 = 85.0;
    /// Hard deadline: the pump must not still be delivering this long
    /// after severe hypoxemia onset. Dominates worst-case detection
    /// (persistence + staleness + sensor averaging + the fault-plan
    /// denial budget + command retries) with margin.
    double interlock_deadline_s = 180.0;
    /// Extra reaction slack granted on top of the configured staleness
    /// limit before sensor silence must have stopped the pump.
    double data_loss_slack_s = 90.0;
    /// Tolerance on the hourly dose cap (integration granularity).
    double hourly_cap_factor = 1.02;
    /// Slack over the ventilator's max_pause for the imposed-apnea bound.
    double pause_slack_s = 3.0;
};

/// Everything the PCA invariants may inspect after an instrumented run.
struct PcaCheckContext {
    const core::PcaScenarioConfig& cfg;
    const core::PcaScenarioResult& result;
    const mcps::sim::TraceRecorder& trace;
    /// Alarm messages observed by the ideal-link probe, per source.
    std::uint64_t probe_smart_alarms = 0;
    std::uint64_t probe_monitor_alarms = 0;
};

/// Named invariant registry.
class InvariantChecker {
public:
    using PcaCheck =
        std::function<void(const PcaCheckContext&, std::vector<Violation>&)>;

    /// The default clinical invariant set (paper properties).
    [[nodiscard]] static InvariantChecker with_defaults(
        InvariantTolerances tol = {});

    void add_pca(std::string name, PcaCheck check);

    [[nodiscard]] std::vector<Violation> check_pca(
        const PcaCheckContext& ctx) const;

    /// X-ray workload invariants (result-level: the harness exposes no
    /// trace): imposed apnea is bounded by the ventilator's max_pause.
    [[nodiscard]] static std::vector<Violation> check_xray(
        const core::XrayScenarioConfig& cfg,
        const core::XrayScenarioResult& result, InvariantTolerances tol = {});

    [[nodiscard]] std::vector<std::string> names() const;

private:
    std::vector<std::pair<std::string, PcaCheck>> pca_checks_;
};

}  // namespace mcps::testkit
