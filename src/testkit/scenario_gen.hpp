/// \file scenario_gen.hpp
/// \brief Randomized scenario sampling for the fuzzer.
///
/// Every generated artifact is a pure function of (master seed, scenario
/// index): the generator draws all choices from one named RngStream per
/// scenario, so a failing run is fully identified by the (seed, index,
/// fault plan) triple in its repro file — no scenario state needs to be
/// serialized.
///
/// The sampled configuration space is the *claimed-safe* envelope: only
/// parameter combinations the framework promises to keep safe (fail-safe
/// data-loss policy, stop thresholds in the clinical band, bounded fault
/// windows). The weakened_pca() fixture deliberately steps outside that
/// envelope to prove the invariants can fail — the fuzzer's own
/// regression test.

#pragma once

#include <cstdint>

#include "core/pca_scenario.hpp"
#include "core/xray_scenario.hpp"
#include "fault_plan.hpp"

namespace mcps::testkit {

/// Which end-to-end workload a scenario index runs.
enum class WorkloadKind { kPca, kXray };

[[nodiscard]] std::string_view to_string(WorkloadKind k) noexcept;

/// A generated PCA scenario plus its adversarial fault plan.
struct GeneratedPca {
    core::PcaScenarioConfig config;
    FaultPlan faults;
};

/// A generated X-ray/ventilator scenario (channel-level stress only; the
/// harness does not expose live parts for timed injection).
struct GeneratedXray {
    core::XrayScenarioConfig config;
};

class ScenarioGenerator {
public:
    /// \param fault_intensity scales the expected number of fault events
    ///        per plan (0 disables injection, 1 is the default mix).
    explicit ScenarioGenerator(std::uint64_t master_seed,
                               double fault_intensity = 1.0);

    /// Deterministic workload choice for an index.
    [[nodiscard]] WorkloadKind kind_of(std::uint64_t index,
                                       double xray_fraction) const;

    [[nodiscard]] GeneratedPca pca(std::uint64_t index) const;
    [[nodiscard]] GeneratedXray xray(std::uint64_t index) const;

    /// Regression fixture: a deliberately unsafe interlock configuration
    /// (fail-operational, out-of-band thresholds, sluggish persistence and
    /// retries) on a high-risk patient with PCA-by-proxy demand. A correct
    /// fuzzer MUST find invariant violations here.
    [[nodiscard]] GeneratedPca weakened_pca(std::uint64_t index) const;

    [[nodiscard]] std::uint64_t master_seed() const noexcept { return seed_; }

private:
    [[nodiscard]] FaultPlan sample_faults(mcps::sim::RngStream& rng,
                                          mcps::sim::SimDuration horizon) const;

    std::uint64_t seed_;
    double fault_intensity_;
};

}  // namespace mcps::testkit
