/// \file runner.hpp
/// \brief Instrumented end-to-end scenario execution for the fuzzer.
///
/// Wraps the core scenario harnesses with the testkit's observation
/// plumbing: a fault injector armed from a FaultPlan, an ideal-link alarm
/// probe (so "was the alarm delivered" is decidable independently of the
/// lossy links under test), extra 1 Hz ground-truth recorders
/// (testkit/pump_hourly_mg, testkit/pump_reservoir_mg,
/// testkit/oxi_dropout), invariant checking, and a 64-bit fingerprint of
/// the full trace. Two runs are byte-identical iff their fingerprints
/// match: the fingerprint folds every signal sample and event mark, so it
/// is the replay facility's definition of "the same run".

#pragma once

#include "fault_plan.hpp"
#include "invariants.hpp"

namespace mcps::testkit {

/// Outcome of one instrumented PCA run.
struct PcaRunOutcome {
    core::PcaScenarioResult result;
    std::vector<Violation> violations;
    std::uint64_t fingerprint = 0;
    std::uint64_t probe_smart_alarms = 0;
    std::uint64_t probe_monitor_alarms = 0;
};

/// Outcome of one x-ray run (result-level invariants only).
struct XrayRunOutcome {
    core::XrayScenarioResult result;
    std::vector<Violation> violations;
    std::uint64_t fingerprint = 0;  ///< folded from the result fields
};

/// Fold a full trace into 64 bits (order- and value-exact).
[[nodiscard]] std::uint64_t trace_fingerprint(
    const mcps::sim::TraceRecorder& trace);

/// Fold an x-ray result into 64 bits (the x-ray harness doesn't expose
/// its trace, so the result fields ARE the byte-identity surface).
[[nodiscard]] std::uint64_t xray_result_fingerprint(
    const core::XrayScenarioResult& result);

/// Run one PCA scenario with faults injected and invariants checked.
[[nodiscard]] PcaRunOutcome run_instrumented_pca(
    const core::PcaScenarioConfig& cfg, const FaultPlan& faults,
    const InvariantChecker& checker);

/// Run one x-ray scenario and check its result-level invariants.
[[nodiscard]] XrayRunOutcome run_instrumented_xray(
    const core::XrayScenarioConfig& cfg, InvariantTolerances tol = {});

}  // namespace mcps::testkit
