/// \file replay.hpp
/// \brief Compact repro files, byte-identical replay, greedy shrinking.
///
/// A failing fuzz run is fully described by (master seed, scenario index,
/// fault plan): the ScenarioGenerator deterministically rebuilds the
/// scenario from the first two and the injector re-applies the third, so
/// the repro file stays a few hundred bytes no matter how large the run
/// was. Replaying verifies byte-identity through the trace fingerprint.
/// Shrinking greedily removes fault events while the violation persists,
/// leaving a minimal counterexample.

#pragma once

#include <cstddef>
#include <string>

#include "runner.hpp"
#include "scenario_gen.hpp"

namespace mcps::testkit {

/// Everything needed to re-run one failing scenario.
struct Repro {
    WorkloadKind kind = WorkloadKind::kPca;
    std::uint64_t seed = 0;
    std::uint64_t index = 0;
    bool weakened = false;  ///< came from the weakened-interlock fixture
    FaultPlan faults;       ///< explicit so shrinking can edit it
    /// Fingerprint of the canonical violating run (0 = unknown).
    std::uint64_t fingerprint = 0;
};

/// Text round-trip (the on-disk format; one "fault ..." line per event).
[[nodiscard]] std::string to_text(const Repro& r);
/// \throws std::runtime_error on a malformed or wrong-version file.
[[nodiscard]] Repro repro_from_text(const std::string& text);

void save_repro(const std::string& path, const Repro& r);
/// \throws std::runtime_error if the file is unreadable or malformed.
[[nodiscard]] Repro load_repro(const std::string& path);

struct ReplayResult {
    std::vector<Violation> violations;
    std::uint64_t fingerprint = 0;
    /// True iff the repro carried a fingerprint and this run matched it.
    bool byte_identical = false;
};

/// Re-run the repro's scenario with its fault plan.
[[nodiscard]] ReplayResult replay(const Repro& r,
                                  const InvariantChecker& checker);

/// Greedy shrink: repeatedly drop single fault events while the run still
/// violates some invariant. Returns the minimal repro with its
/// fingerprint updated to the shrunk run. \p runs (optional) reports how
/// many candidate runs were executed.
[[nodiscard]] Repro shrink(const Repro& r, const InvariantChecker& checker,
                           std::size_t* runs = nullptr);

}  // namespace mcps::testkit
