#include "scenario_gen.hpp"

#include <algorithm>
#include <string>

namespace mcps::testkit {

using mcps::sim::RngStream;
using mcps::sim::SimDuration;

std::string_view to_string(WorkloadKind k) noexcept {
    switch (k) {
        case WorkloadKind::kPca: return "pca";
        case WorkloadKind::kXray: return "xray";
    }
    return "unknown";
}

ScenarioGenerator::ScenarioGenerator(std::uint64_t master_seed,
                                     double fault_intensity)
    : seed_{master_seed}, fault_intensity_{std::max(0.0, fault_intensity)} {}

WorkloadKind ScenarioGenerator::kind_of(std::uint64_t index,
                                        double xray_fraction) const {
    RngStream rng{seed_, "fuzz/kind/" + std::to_string(index)};
    return rng.bernoulli(xray_fraction) ? WorkloadKind::kXray
                                        : WorkloadKind::kPca;
}

namespace {

SimDuration uniform_duration(RngStream& rng, SimDuration lo, SimDuration hi) {
    return SimDuration::micros(rng.uniform_int(lo.ticks(), hi.ticks()));
}

}  // namespace

FaultPlan ScenarioGenerator::sample_faults(RngStream& rng,
                                           SimDuration horizon) const {
    using namespace mcps::sim::literals;
    FaultPlan plan;
    const auto n = static_cast<std::size_t>(
        fault_intensity_ * static_cast<double>(rng.uniform_int(0, 6)) + 0.5);

    // Faults that deny or distort the data/command path delay the
    // interlock's reaction. Their combined duration is capped so that the
    // claimed-safe envelope stays provable: worst-case reaction is
    // persistence + staleness + sensor averaging + this budget + retry
    // slack, which the invariant deadline (180 s) dominates with margin.
    SimDuration denial_budget = 90_s;

    static constexpr FaultKind kinds[] = {
        FaultKind::kOutage,      FaultKind::kPartition,
        FaultKind::kLossBurst,   FaultKind::kDelaySpike,
        FaultKind::kDupBurst,    FaultKind::kReorderBurst,
        FaultKind::kCorruptBurst, FaultKind::kOxiDropout,
        FaultKind::kCapDropout,  FaultKind::kPumpCmdLoss,
    };
    static constexpr std::string_view net_targets[] = {"pca_interlock", "pump1",
                                                       "supervisor1"};

    for (std::size_t i = 0; i < n; ++i) {
        FaultEvent e;
        e.kind = kinds[rng.pick(std::size(kinds))];
        e.at = uniform_duration(rng, 60_s, horizon - 180_s);
        bool counts_against_budget = true;
        switch (e.kind) {
            case FaultKind::kOutage:
                e.duration = uniform_duration(rng, 5_s, 25_s);
                e.target = net_targets[rng.pick(std::size(net_targets))];
                break;
            case FaultKind::kPartition:
                e.duration = uniform_duration(rng, 3_s, 12_s);
                break;
            case FaultKind::kLossBurst:
                e.duration = uniform_duration(rng, 10_s, 40_s);
                e.target = net_targets[rng.pick(std::size(net_targets))];
                e.magnitude = rng.uniform(0.3, 0.9);
                break;
            case FaultKind::kDelaySpike:
                e.duration = uniform_duration(rng, 10_s, 40_s);
                e.target = net_targets[rng.pick(std::size(net_targets))];
                e.magnitude = rng.uniform(200.0, 3000.0);  // extra ms
                break;
            case FaultKind::kDupBurst:
                e.duration = uniform_duration(rng, 10_s, 60_s);
                e.target = net_targets[rng.pick(2)];
                e.magnitude = rng.uniform(0.2, 0.8);
                counts_against_budget = false;
                break;
            case FaultKind::kReorderBurst:
                e.duration = uniform_duration(rng, 10_s, 60_s);
                e.target = net_targets[rng.pick(2)];
                e.magnitude = rng.uniform(0.3, 0.9);
                counts_against_budget = false;
                break;
            case FaultKind::kCorruptBurst:
                e.duration = uniform_duration(rng, 5_s, 30_s);
                e.target = "pca_interlock";
                e.magnitude = rng.uniform(0.05, 0.5);
                break;
            case FaultKind::kOxiDropout:
                // Sensor silence triggers the fail-safe path (a stop), so
                // long dropouts don't extend the interlock's reaction time
                // and stay outside the denial budget.
                e.duration = uniform_duration(rng, 20_s, 120_s);
                counts_against_budget = false;
                break;
            case FaultKind::kCapDropout:
                e.duration = uniform_duration(rng, 20_s, 120_s);
                counts_against_budget = false;
                break;
            case FaultKind::kPumpCmdLoss:
                e.duration = uniform_duration(rng, 5_s, 20_s);
                break;
        }
        if (counts_against_budget) {
            if (e.duration > denial_budget) continue;  // over budget: skip
            denial_budget -= e.duration;
        }
        plan.events.push_back(std::move(e));
    }
    return plan;
}

GeneratedPca ScenarioGenerator::pca(std::uint64_t index) const {
    using namespace mcps::sim::literals;
    RngStream rng{seed_, "fuzz/pca/" + std::to_string(index)};

    GeneratedPca g;
    auto& c = g.config;
    c.seed = rng.next();
    c.duration = uniform_duration(rng, 45_min, 90_min);

    const auto& archetypes = physio::all_archetypes();
    const auto arch = archetypes[rng.pick(archetypes.size())];
    c.patient = physio::sample_patient(arch, rng);

    c.demand_mode =
        rng.bernoulli(0.5) ? core::DemandMode::kProxy : core::DemandMode::kNormal;
    c.demand.baseline_pain = rng.uniform(5.0, 8.0);
    c.demand.proxy_rate_per_hour = rng.uniform(6.0, 14.0);

    c.prescription.basal =
        physio::InfusionRate::mg_per_hour(rng.uniform(0.2, 1.5));
    c.prescription.bolus_dose = physio::Dose::mg(rng.uniform(0.3, 1.0));
    c.prescription.lockout = uniform_duration(rng, 5_min, 10_min);
    c.prescription.max_hourly = physio::Dose::mg(rng.uniform(4.0, 8.0));

    core::InterlockConfig il;
    il.mode = rng.bernoulli(0.5) ? core::InterlockMode::kDualSensor
                                 : core::InterlockMode::kSpO2Only;
    il.data_loss = core::DataLossPolicy::kFailSafe;  // the claimed-safe envelope
    il.spo2_stop = rng.uniform(88.0, 91.0);
    il.spo2_warn = il.spo2_stop + rng.uniform(2.0, 3.0);
    il.persistence = uniform_duration(rng, 5_s, 15_s);
    il.staleness_limit = uniform_duration(rng, 8_s, 15_s);
    il.command_retry = uniform_duration(rng, 1_s, 3_s);
    il.auto_resume = rng.bernoulli(0.7);
    il.recovery_hold = uniform_duration(rng, 2_min, 5_min);
    c.interlock = il;

    c.channel.base_latency = uniform_duration(rng, 1_ms, 40_ms);
    c.channel.jitter_sd = uniform_duration(rng, 0_ms, 8_ms);
    c.channel.loss_probability = rng.uniform(0.0, 0.05);
    c.channel.duplicate_probability = rng.uniform(0.0, 0.02);
    c.channel.reorder_probability = rng.uniform(0.0, 0.05);

    c.oximeter.spo2_noise_sd = rng.uniform(0.3, 1.0);
    c.oximeter.artifact_probability = rng.uniform(0.0, 0.004);
    c.oximeter.dropout_probability = rng.uniform(0.0, 0.001);
    c.oximeter.dropout_duration = uniform_duration(rng, 10_s, 30_s);
    c.capnometer.etco2_noise_sd = rng.uniform(0.5, 1.5);
    c.capnometer.dropout_probability = rng.uniform(0.0, 0.001);
    c.capnometer.dropout_duration = uniform_duration(rng, 10_s, 40_s);

    c.with_monitor = rng.bernoulli(0.3);
    c.with_smart_alarm = rng.bernoulli(0.5);

    g.faults = sample_faults(rng, c.duration);
    return g;
}

GeneratedPca ScenarioGenerator::weakened_pca(std::uint64_t index) const {
    using namespace mcps::sim::literals;
    RngStream rng{seed_, "fuzz/weak/" + std::to_string(index)};

    GeneratedPca g;
    auto& c = g.config;
    c.seed = rng.next();
    c.duration = 2_h;

    const auto arch = rng.bernoulli(0.5) ? physio::Archetype::kHighRisk
                                         : physio::Archetype::kOpioidSensitive;
    c.patient = physio::sample_patient(arch, rng);

    // PCA-by-proxy on an aggressive regimen: the exact hazard chain the
    // paper's interlock exists to break.
    c.demand_mode = core::DemandMode::kProxy;
    c.demand.proxy_rate_per_hour = rng.uniform(12.0, 18.0);
    c.prescription.basal =
        physio::InfusionRate::mg_per_hour(rng.uniform(2.0, 3.0));
    c.prescription.bolus_dose = physio::Dose::mg(rng.uniform(1.0, 1.5));
    c.prescription.lockout = 6_min;
    c.prescription.max_hourly = physio::Dose::mg(rng.uniform(14.0, 16.0));

    // The weakened interlock: single sensor, fail-operational, thresholds
    // far below the clinical band, glacial persistence and retry. It
    // "works" in the sense of eventually reacting, but far outside the
    // safety deadline — exactly what the invariants must flag.
    core::InterlockConfig il;
    il.mode = core::InterlockMode::kSpO2Only;
    il.data_loss = core::DataLossPolicy::kFailOperational;
    il.spo2_stop = 72.0;
    il.spo2_warn = 74.0;
    il.persistence = 240_s;
    il.staleness_limit = 600_s;
    il.command_retry = 30_s;
    il.auto_resume = false;
    c.interlock = il;

    g.faults = sample_faults(rng, c.duration);
    return g;
}

GeneratedXray ScenarioGenerator::xray(std::uint64_t index) const {
    using namespace mcps::sim::literals;
    RngStream rng{seed_, "fuzz/xray/" + std::to_string(index)};

    GeneratedXray g;
    auto& c = g.config;
    c.seed = rng.next();
    c.mode = rng.bernoulli(0.3) ? core::CoordinationMode::kManual
                                : core::CoordinationMode::kAutomated;
    c.procedures = static_cast<std::size_t>(rng.uniform_int(5, 15));
    c.procedure_gap = uniform_duration(rng, 1_min, 3_min);

    const auto arch = rng.bernoulli(0.5) ? physio::Archetype::kTypicalAdult
                                         : physio::Archetype::kElderly;
    c.patient = physio::sample_patient(arch, rng);

    c.ventilator.max_pause = uniform_duration(rng, 20_s, 30_s);

    // The x-ray harness takes no live fault plan, so network stress is
    // expressed through (heavier than PCA) static channel parameters.
    c.channel.base_latency = uniform_duration(rng, 1_ms, 80_ms);
    c.channel.jitter_sd = uniform_duration(rng, 0_ms, 15_ms);
    c.channel.loss_probability = rng.uniform(0.0, 0.2);
    c.channel.duplicate_probability = rng.uniform(0.0, 0.05);
    c.channel.reorder_probability = rng.uniform(0.0, 0.1);
    return g;
}

}  // namespace mcps::testkit
