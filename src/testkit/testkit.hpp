/// \file testkit.hpp
/// \brief Umbrella header for the scenario-fuzzing testkit.
///
/// The testkit closes the loop between the simulation framework and its
/// safety claims: a ScenarioGenerator samples the claimed-safe
/// configuration envelope, a FaultInjector replays adversarial network
/// and device faults against live runs, an InvariantChecker evaluates
/// the paper's safety properties over the recorded trace, and the
/// replay/shrink facilities turn any violation into a minimal,
/// byte-identically reproducible counterexample.

#pragma once

#include "fault_plan.hpp"
#include "fuzzer.hpp"
#include "invariants.hpp"
#include "replay.hpp"
#include "runner.hpp"
#include "scenario_gen.hpp"
