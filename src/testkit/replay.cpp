#include "replay.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mcps::testkit {

namespace {
constexpr std::string_view kHeader = "mcps-repro v1";
}

std::string to_text(const Repro& r) {
    std::ostringstream os;
    os << kHeader << "\n";
    os << "kind=" << to_string(r.kind) << "\n";
    os << "seed=" << r.seed << "\n";
    os << "index=" << r.index << "\n";
    os << "weakened=" << (r.weakened ? 1 : 0) << "\n";
    char fp[32];
    std::snprintf(fp, sizeof fp, "0x%016" PRIx64, r.fingerprint);
    os << "fingerprint=" << fp << "\n";
    for (const auto& e : r.faults.events) {
        char mag[64];
        std::snprintf(mag, sizeof mag, "%.17g", e.magnitude);
        os << "fault kind=" << to_string(e.kind) << " at_us=" << e.at.ticks()
           << " dur_us=" << e.duration.ticks() << " mag=" << mag
           << " target=" << e.target << "\n";
    }
    return os.str();
}

namespace {

[[noreturn]] void malformed(const std::string& why) {
    throw std::runtime_error("repro: malformed file: " + why);
}

/// "key=value" split; returns false if '=' is absent.
bool split_kv(std::string_view tok, std::string_view& key,
              std::string_view& value) {
    const auto eq = tok.find('=');
    if (eq == std::string_view::npos) return false;
    key = tok.substr(0, eq);
    value = tok.substr(eq + 1);
    return true;
}

std::uint64_t parse_u64(std::string_view v, const std::string& what) {
    try {
        return std::stoull(std::string{v}, nullptr, 0);
    } catch (const std::exception&) {
        malformed("bad integer for " + what);
    }
}

std::int64_t parse_i64(std::string_view v, const std::string& what) {
    try {
        return std::stoll(std::string{v}, nullptr, 0);
    } catch (const std::exception&) {
        malformed("bad integer for " + what);
    }
}

FaultEvent parse_fault_line(std::istringstream& line) {
    FaultEvent e;
    std::string tok;
    bool have_kind = false;
    while (line >> tok) {
        std::string_view key, value;
        if (!split_kv(tok, key, value)) malformed("fault token '" + tok + "'");
        if (key == "kind") {
            const auto k = fault_kind_from(value);
            if (!k) malformed("unknown fault kind '" + std::string{value} + "'");
            e.kind = *k;
            have_kind = true;
        } else if (key == "at_us") {
            e.at = mcps::sim::SimDuration::micros(parse_i64(value, "at_us"));
        } else if (key == "dur_us") {
            e.duration =
                mcps::sim::SimDuration::micros(parse_i64(value, "dur_us"));
        } else if (key == "mag") {
            e.magnitude = std::stod(std::string{value});
        } else if (key == "target") {
            e.target = std::string{value};
        } else {
            malformed("unknown fault field '" + std::string{key} + "'");
        }
    }
    if (!have_kind) malformed("fault line without kind");
    return e;
}

}  // namespace

Repro repro_from_text(const std::string& text) {
    std::istringstream is{text};
    std::string line;
    if (!std::getline(is, line) || line != kHeader) {
        malformed("missing '" + std::string{kHeader} + "' header");
    }
    Repro r;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        if (line.rfind("fault ", 0) == 0) {
            std::istringstream rest{line.substr(6)};
            r.faults.events.push_back(parse_fault_line(rest));
            continue;
        }
        std::string_view key, value;
        if (!split_kv(line, key, value)) malformed("line '" + line + "'");
        if (key == "kind") {
            if (value == "pca") {
                r.kind = WorkloadKind::kPca;
            } else if (value == "xray") {
                r.kind = WorkloadKind::kXray;
            } else {
                malformed("unknown workload '" + std::string{value} + "'");
            }
        } else if (key == "seed") {
            r.seed = parse_u64(value, "seed");
        } else if (key == "index") {
            r.index = parse_u64(value, "index");
        } else if (key == "weakened") {
            r.weakened = value == "1";
        } else if (key == "fingerprint") {
            r.fingerprint = parse_u64(value, "fingerprint");
        } else {
            malformed("unknown field '" + std::string{key} + "'");
        }
    }
    return r;
}

void save_repro(const std::string& path, const Repro& r) {
    std::ofstream os{path, std::ios::binary};
    if (!os) throw std::runtime_error("repro: cannot write " + path);
    os << to_text(r);
}

Repro load_repro(const std::string& path) {
    std::ifstream is{path, std::ios::binary};
    if (!is) throw std::runtime_error("repro: cannot read " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    return repro_from_text(buf.str());
}

ReplayResult replay(const Repro& r, const InvariantChecker& checker) {
    const ScenarioGenerator gen{r.seed};
    ReplayResult out;
    if (r.kind == WorkloadKind::kXray) {
        const auto run = run_instrumented_xray(gen.xray(r.index).config);
        out.violations = run.violations;
        out.fingerprint = run.fingerprint;
    } else {
        const auto cfg = r.weakened ? gen.weakened_pca(r.index).config
                                    : gen.pca(r.index).config;
        const auto run = run_instrumented_pca(cfg, r.faults, checker);
        out.violations = run.violations;
        out.fingerprint = run.fingerprint;
    }
    out.byte_identical =
        r.fingerprint != 0 && out.fingerprint == r.fingerprint;
    return out;
}

Repro shrink(const Repro& r, const InvariantChecker& checker,
             std::size_t* runs) {
    std::size_t executed = 0;
    Repro cur = r;
    if (cur.kind == WorkloadKind::kPca) {
        bool improved = true;
        while (improved && !cur.faults.empty()) {
            improved = false;
            for (std::size_t i = 0; i < cur.faults.size(); ++i) {
                Repro trial = cur;
                trial.faults = cur.faults.without(i);
                trial.fingerprint = 0;
                const auto res = replay(trial, checker);
                ++executed;
                if (!res.violations.empty()) {
                    trial.fingerprint = res.fingerprint;
                    cur = std::move(trial);
                    improved = true;
                    break;
                }
            }
        }
    }
    // Pin the canonical fingerprint to a run of exactly this repro.
    cur.fingerprint = replay(cur, checker).fingerprint;
    ++executed;
    if (runs) *runs = executed;
    return cur;
}

}  // namespace mcps::testkit
