/// \file fault_plan.hpp
/// \brief Declarative fault plans and their injector.
///
/// A FaultPlan is a list of timed adversarial events — network faults
/// layered on net::Channel/Bus (outage, partition, loss burst, delay
/// spike, duplicate burst, reorder burst, corrupt burst) and device
/// faults (sensor dropout, pump command loss). Plans are plain data:
/// they serialize to one line per event in a repro file, they shrink by
/// removing events, and re-applying the same plan to the same generated
/// scenario reproduces the run bit-for-bit. The FaultInjector turns a
/// plan into scheduled actions against a live simulation.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "devices/capnometer.hpp"
#include "devices/pulse_oximeter.hpp"
#include "net/bus.hpp"
#include "sim/simulation.hpp"

namespace mcps::testkit {

/// The closed set of injectable faults.
enum class FaultKind {
    kOutage,        ///< total loss on one endpoint's link for a window
    kPartition,     ///< total loss on every link (switch death)
    kLossBurst,     ///< elevated loss probability on one endpoint
    kDelaySpike,    ///< base latency raised by magnitude ms (stale data)
    kDupBurst,      ///< elevated duplicate probability on one endpoint
    kReorderBurst,  ///< elevated reorder probability on one endpoint
    kCorruptBurst,  ///< elevated corrupt probability on one endpoint
    kOxiDropout,    ///< pulse-oximeter probe-off for the window
    kCapDropout,    ///< capnometer cannula displaced for the window
    kPumpCmdLoss,   ///< outage on the pump's command link specifically
};

[[nodiscard]] std::string_view to_string(FaultKind k) noexcept;
/// Inverse of to_string; nullopt for unknown names (corrupt repro files).
[[nodiscard]] std::optional<FaultKind> fault_kind_from(std::string_view s);

/// One timed fault. `at` is relative to scenario start.
struct FaultEvent {
    FaultKind kind = FaultKind::kOutage;
    mcps::sim::SimDuration at;
    mcps::sim::SimDuration duration;
    /// Endpoint name for network faults; ignored for device faults.
    std::string target;
    /// Kind-specific intensity: probability for loss/dup/reorder/corrupt
    /// bursts, extra latency in ms for delay spikes; unused otherwise.
    double magnitude = 0.0;
};

/// An ordered collection of fault events. Order is not semantically
/// meaningful (all windows are absolute) but is preserved for stable
/// serialization and shrinking.
struct FaultPlan {
    std::vector<FaultEvent> events;

    [[nodiscard]] bool empty() const noexcept { return events.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return events.size(); }

    /// The plan minus the event at \p index (for greedy shrinking).
    [[nodiscard]] FaultPlan without(std::size_t index) const;
};

/// Applies a FaultPlan to a live scenario. Construct with the scenario's
/// kernel and bus, attach the devices the plan may target, then arm()
/// before running. Events targeting unattached devices are skipped (and
/// counted) rather than failing — a shrunk plan stays valid even if the
/// scenario variant lacks a device.
class FaultInjector {
public:
    FaultInjector(mcps::sim::Simulation& sim, net::Bus& bus);

    void attach_oximeter(devices::PulseOximeter& d) { oximeter_ = &d; }
    void attach_capnometer(devices::Capnometer& d) { capnometer_ = &d; }
    /// Endpoint name of the pump (for kPumpCmdLoss).
    void set_pump_endpoint(std::string name) { pump_endpoint_ = std::move(name); }

    /// Attach a structured event log: every armed fault emits a
    /// kFaultInject event at its window start. nullptr disables.
    void set_event_log(mcps::obs::EventLog* log) noexcept { events_ = log; }

    /// Schedule/apply every event. Call once, before the run begins.
    void arm(const FaultPlan& plan);

    [[nodiscard]] std::size_t armed() const noexcept { return armed_; }
    [[nodiscard]] std::size_t skipped() const noexcept { return skipped_; }

private:
    void apply(const FaultEvent& e);
    /// Temporarily mutate an endpoint's channel parameters for a window.
    void window_burst(const FaultEvent& e,
                      void (*mutate)(net::ChannelParameters&, double));

    mcps::sim::Simulation& sim_;
    net::Bus& bus_;
    devices::PulseOximeter* oximeter_ = nullptr;
    devices::Capnometer* capnometer_ = nullptr;
    std::string pump_endpoint_ = "pump1";
    mcps::obs::EventLog* events_ = nullptr;
    std::size_t armed_ = 0;
    std::size_t skipped_ = 0;
};

}  // namespace mcps::testkit
