#include "fault_plan.hpp"

namespace mcps::testkit {

using mcps::sim::SimTime;

std::string_view to_string(FaultKind k) noexcept {
    switch (k) {
        case FaultKind::kOutage: return "outage";
        case FaultKind::kPartition: return "partition";
        case FaultKind::kLossBurst: return "loss_burst";
        case FaultKind::kDelaySpike: return "delay_spike";
        case FaultKind::kDupBurst: return "dup_burst";
        case FaultKind::kReorderBurst: return "reorder_burst";
        case FaultKind::kCorruptBurst: return "corrupt_burst";
        case FaultKind::kOxiDropout: return "oxi_dropout";
        case FaultKind::kCapDropout: return "cap_dropout";
        case FaultKind::kPumpCmdLoss: return "pump_cmd_loss";
    }
    return "unknown";
}

std::optional<FaultKind> fault_kind_from(std::string_view s) {
    for (auto k : {FaultKind::kOutage, FaultKind::kPartition,
                   FaultKind::kLossBurst, FaultKind::kDelaySpike,
                   FaultKind::kDupBurst, FaultKind::kReorderBurst,
                   FaultKind::kCorruptBurst, FaultKind::kOxiDropout,
                   FaultKind::kCapDropout, FaultKind::kPumpCmdLoss}) {
        if (to_string(k) == s) return k;
    }
    return std::nullopt;
}

FaultPlan FaultPlan::without(std::size_t index) const {
    FaultPlan p;
    p.events.reserve(events.size() - 1);
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i != index) p.events.push_back(events[i]);
    }
    return p;
}

FaultInjector::FaultInjector(mcps::sim::Simulation& sim, net::Bus& bus)
    : sim_{sim}, bus_{bus} {}

void FaultInjector::arm(const FaultPlan& plan) {
    for (const auto& e : plan.events) apply(e);
}

void FaultInjector::window_burst(const FaultEvent& e,
                                 void (*mutate)(net::ChannelParameters&,
                                                double)) {
    // Mutate the target link at window start, restore the parameters that
    // were live at that instant at window end. Windows on the same
    // endpoint should not overlap (the generator guarantees it); if they
    // do, the later restore wins.
    const SimTime from = SimTime::at(e.at);
    const std::string target = e.target;
    const double mag = e.magnitude;
    sim_.schedule_at(from, [this, target, mag, mutate, dur = e.duration] {
        net::Channel& ch = bus_.endpoint_channel(target);
        const net::ChannelParameters saved = ch.parameters();
        net::ChannelParameters burst = saved;
        mutate(burst, mag);
        ch.set_parameters(burst);
        sim_.schedule_after(dur, [this, target, saved] {
            bus_.endpoint_channel(target).set_parameters(saved);
        });
    });
}

void FaultInjector::apply(const FaultEvent& e) {
    const SimTime from = SimTime::at(e.at);
    const SimTime to = from + e.duration;
    switch (e.kind) {
        case FaultKind::kOutage:
            bus_.endpoint_channel(e.target).add_outage(from, to);
            break;
        case FaultKind::kPartition:
            bus_.add_partition(from, to);
            break;
        case FaultKind::kPumpCmdLoss:
            bus_.endpoint_channel(pump_endpoint_).add_outage(from, to);
            break;
        case FaultKind::kLossBurst:
            window_burst(e, [](net::ChannelParameters& p, double m) {
                p.loss_probability = m;
            });
            break;
        case FaultKind::kDelaySpike:
            window_burst(e, [](net::ChannelParameters& p, double m) {
                p.base_latency += mcps::sim::SimDuration::millis(
                    static_cast<std::int64_t>(m));
            });
            break;
        case FaultKind::kDupBurst:
            window_burst(e, [](net::ChannelParameters& p, double m) {
                p.duplicate_probability = m;
            });
            break;
        case FaultKind::kReorderBurst:
            window_burst(e, [](net::ChannelParameters& p, double m) {
                p.reorder_probability = m;
                p.reorder_window = mcps::sim::SimDuration::millis(1500);
            });
            break;
        case FaultKind::kCorruptBurst:
            window_burst(e, [](net::ChannelParameters& p, double m) {
                p.corrupt_probability = m;
            });
            break;
        case FaultKind::kOxiDropout:
            if (!oximeter_) {
                ++skipped_;
                return;
            }
            sim_.schedule_at(from, [this, dur = e.duration] {
                oximeter_->force_dropout(dur);
            });
            break;
        case FaultKind::kCapDropout:
            if (!capnometer_) {
                ++skipped_;
                return;
            }
            sim_.schedule_at(from, [this, dur = e.duration] {
                capnometer_->force_dropout(dur);
            });
            break;
    }
    ++armed_;
    if (events_) {
        events_->emit(mcps::obs::EventKind::kFaultInject, SimTime::at(e.at),
                      e.target.empty() ? std::string{to_string(e.kind)}
                                       : e.target,
                      std::string{to_string(e.kind)}, e.magnitude);
    }
}

}  // namespace mcps::testkit
