/// \file fuzzer.hpp
/// \brief The scenario-fuzzing loop: generate, run, check, shrink, save.
///
/// Drives N scenarios from a ScenarioGenerator through the instrumented
/// runners. Every scenario whose run violates an invariant is captured as
/// a Repro, greedily shrunk to a minimal fault plan, verified to replay
/// byte-identically, and written to the repro directory. The loop itself
/// is deterministic: the same (seed, scenarios, options) always visits
/// the same runs in the same order.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "replay.hpp"

namespace mcps::testkit {

struct FuzzOptions {
    std::uint64_t seed = 42;
    std::uint64_t scenarios = 200;
    double fault_intensity = 1.0;
    /// Fraction of indices routed to the x-ray workload.
    double xray_fraction = 0.15;
    /// Use the weakened-interlock fixture instead of the safe envelope.
    bool weakened = false;
    /// Where failing repro files land ("" = don't write files).
    std::string repro_dir;
    bool shrink = true;
    /// Progress/diagnostic sink ("" lines are never sent). Null = silent.
    std::function<void(const std::string&)> log;
};

/// One failing scenario, post-shrink, with its replay verification.
struct FuzzFailure {
    Repro repro;               ///< shrunk (if enabled), fingerprint pinned
    std::vector<Violation> violations;  ///< from the canonical shrunk run
    std::string repro_path;    ///< "" if no repro_dir was configured
    bool replay_byte_identical = false;
    std::size_t original_fault_events = 0;
    std::size_t shrink_runs = 0;
};

struct FuzzOutcome {
    std::uint64_t scenarios_run = 0;
    std::uint64_t pca_runs = 0;
    std::uint64_t xray_runs = 0;
    std::vector<FuzzFailure> failures;

    [[nodiscard]] bool clean() const noexcept { return failures.empty(); }
};

/// Run the fuzz loop. Never throws on invariant violations — they are
/// data in the outcome; throws only on internal errors (e.g. an
/// unwritable repro directory).
[[nodiscard]] FuzzOutcome run_fuzz(const FuzzOptions& opts,
                                   const InvariantChecker& checker);

/// Convenience: run_fuzz with InvariantChecker::with_defaults().
[[nodiscard]] FuzzOutcome run_fuzz(const FuzzOptions& opts);

/// "name @t: detail; ..." rendering shared by the fuzz loop's log lines
/// and external drivers (e.g. the ward engine's parallel fuzz).
[[nodiscard]] std::string describe_violations(const std::vector<Violation>& vs);

/// Turn one violating run into a finished FuzzFailure: shrink (if
/// enabled), pin the canonical violations, verify byte-identical replay,
/// and write the repro file. Factored out so parallel drivers can run
/// scenarios concurrently yet capture failures in canonical index order.
[[nodiscard]] FuzzFailure capture_failure(const FuzzOptions& opts,
                                          const InvariantChecker& checker,
                                          Repro repro,
                                          std::vector<Violation> violations);

}  // namespace mcps::testkit
