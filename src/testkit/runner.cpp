#include "runner.hpp"

#include <bit>

namespace mcps::testkit {

using mcps::sim::SimDuration;

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

constexpr std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
    h ^= v;
    h *= 1099511628211ULL;
    h ^= h >> 29;
    return h;
}

std::uint64_t mix_string(std::uint64_t h, std::string_view s) noexcept {
    h = mix(h, s.size());
    for (char c : s) h = mix(h, static_cast<std::uint8_t>(c));
    return h;
}

}  // namespace

std::uint64_t trace_fingerprint(const mcps::sim::TraceRecorder& trace) {
    std::uint64_t h = kFnvOffset;
    for (const auto& name : trace.signal_names()) {
        const auto* sig = trace.find(name);
        h = mix_string(h, name);
        for (const auto& s : sig->samples()) {
            h = mix(h, static_cast<std::uint64_t>(s.time.ticks()));
            h = mix(h, std::bit_cast<std::uint64_t>(s.value));
        }
    }
    for (const auto& m : trace.marks()) {
        h = mix(h, static_cast<std::uint64_t>(m.time.ticks()));
        h = mix_string(h, m.label);
    }
    return h;
}

PcaRunOutcome run_instrumented_pca(const core::PcaScenarioConfig& cfg,
                                   const FaultPlan& faults,
                                   const InvariantChecker& checker) {
    PcaRunOutcome out;
    core::PcaScenario scenario{cfg};

    // Ideal-link alarm probe: decides "was this alarm ever delivered"
    // without riding the lossy links under test.
    std::uint64_t probe_smart = 0, probe_monitor = 0;
    scenario.bus().set_endpoint_channel("testkit.alarm_probe",
                                        net::ChannelParameters::ideal());
    scenario.bus().subscribe("testkit.alarm_probe", "alarm/*",
                             [&](const net::Message& m) {
                                 if (m.sender == "smart1") ++probe_smart;
                                 if (m.sender == "monitor1") ++probe_monitor;
                             });

    // 1 Hz ground-truth recorders for invariants the core trace doesn't
    // already cover.
    scenario.simulation().schedule_periodic(
        SimDuration::seconds(1),
        [&scenario] {
            const auto now = scenario.simulation().now();
            auto& tr = scenario.trace();
            tr.record("testkit/pump_hourly_mg", now,
                      scenario.pump().delivered_last_hour().as_mg());
            tr.record("testkit/pump_reservoir_mg", now,
                      scenario.pump().reservoir_remaining().as_mg());
            tr.record("testkit/oxi_dropout", now,
                      scenario.oximeter().in_dropout() ? 1.0 : 0.0);
        },
        mcps::sim::EventPriority::kLate);

    FaultInjector injector{scenario.simulation(), scenario.bus()};
    injector.attach_oximeter(scenario.oximeter());
    injector.attach_capnometer(scenario.capnometer());
    injector.set_event_log(cfg.events);
    injector.arm(faults);

    out.result = scenario.run();
    out.probe_smart_alarms = probe_smart;
    out.probe_monitor_alarms = probe_monitor;

    const PcaCheckContext ctx{cfg, out.result, scenario.trace(), probe_smart,
                              probe_monitor};
    out.violations = checker.check_pca(ctx);
    out.fingerprint = trace_fingerprint(scenario.trace());
    return out;
}

std::uint64_t xray_result_fingerprint(const core::XrayScenarioResult& r) {
    std::uint64_t h = kFnvOffset;
    h = mix(h, r.procedures);
    h = mix(h, r.completed);
    h = mix(h, r.sharp_images);
    h = mix(h, r.total_retries);
    h = mix(h, r.safety_auto_resumes);
    h = mix(h, std::bit_cast<std::uint64_t>(r.mean_apnea_s));
    h = mix(h, std::bit_cast<std::uint64_t>(r.max_apnea_s));
    h = mix(h, std::bit_cast<std::uint64_t>(r.min_spo2));
    return h;
}

XrayRunOutcome run_instrumented_xray(const core::XrayScenarioConfig& cfg,
                                     InvariantTolerances tol) {
    XrayRunOutcome out;
    out.result = core::run_xray_scenario(cfg);
    out.violations = InvariantChecker::check_xray(cfg, out.result, tol);
    out.fingerprint = xray_result_fingerprint(out.result);
    return out;
}

}  // namespace mcps::testkit
