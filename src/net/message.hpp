/// \file message.hpp
/// \brief Typed messages exchanged over the simulated ICE data bus.
///
/// The DAC'10 interoperability challenge is about devices from different
/// vendors exchanging clinical data and control commands over a shared
/// network. We model that traffic with a small closed set of payload
/// kinds — vitals, commands, acks, heartbeats, status — carried by a
/// common envelope. A closed std::variant keeps dispatch exhaustive at
/// compile time (Core Guidelines ES.tip: prefer variant over class
/// hierarchies for closed sets).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "sim/time.hpp"

namespace mcps::net {

/// A periodic vital-sign sample from a sensor device.
struct VitalSignPayload {
    std::string metric;  ///< e.g. "spo2", "etco2", "resp_rate", "heart_rate"
    double value = 0.0;
    bool valid = true;  ///< false => sensor reports a degraded/artifact value
};

/// A control command to an actuator device ("stop_infusion", "pause", ...).
struct CommandPayload {
    std::string action;
    std::map<std::string, double> args;
    std::uint64_t command_seq = 0;  ///< for ack correlation
};

/// Acknowledgement of a command.
struct AckPayload {
    std::uint64_t command_seq = 0;
    bool success = true;
    std::string detail;
};

/// Liveness heartbeat from a device or supervisor.
struct HeartbeatPayload {
    std::uint64_t count = 0;
};

/// Coarse device status broadcast ("infusing", "alarm", "paused", ...).
struct StatusPayload {
    std::string state;
    std::string detail;
};

using Payload = std::variant<VitalSignPayload, CommandPayload, AckPayload,
                             HeartbeatPayload, StatusPayload>;

/// The message envelope delivered to subscribers.
struct Message {
    std::uint64_t seq = 0;        ///< bus-assigned, globally unique
    std::string topic;            ///< e.g. "vitals/bed1/spo2"
    std::string sender;           ///< publishing endpoint name
    mcps::sim::SimTime sent_at;   ///< publication instant
    Payload payload;
};

/// Payload accessors returning nullptr when the alternative doesn't match.
template <typename T>
[[nodiscard]] const T* payload_as(const Message& m) noexcept {
    return std::get_if<T>(&m.payload);
}

/// Human-readable payload kind ("vital", "command", ...), for logs/tests.
[[nodiscard]] std::string_view payload_kind(const Message& m) noexcept;

/// True if \p topic matches \p pattern. Patterns are exact strings or a
/// prefix followed by "/*" which matches any suffix (one level or more):
/// "vitals/*" matches "vitals/bed1/spo2". A lone "*" matches everything.
[[nodiscard]] bool topic_matches(std::string_view pattern,
                                 std::string_view topic) noexcept;

}  // namespace mcps::net
