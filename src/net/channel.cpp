#include "channel.hpp"

#include <algorithm>

namespace mcps::net {

using mcps::sim::SimDuration;
using mcps::sim::SimTime;

Channel::Channel(ChannelParameters params, mcps::sim::RngStream rng)
    : params_{params}, rng_{rng} {
    params_.validate();
}

void Channel::set_parameters(const ChannelParameters& p) {
    p.validate();
    params_ = p;
}

void Channel::add_outage(SimTime from, SimTime to) {
    if (to <= from) {
        throw std::invalid_argument("add_outage: empty/negative window");
    }
    outages_.emplace_back(from, to);
}

bool Channel::in_outage(SimTime t) const noexcept {
    return std::any_of(outages_.begin(), outages_.end(), [t](const auto& w) {
        return t >= w.first && t < w.second;
    });
}

DeliveryPlan Channel::plan_delivery(SimTime now) {
    DeliveryPlan plan;
    if (in_outage(now) || rng_.bernoulli(params_.loss_probability)) {
        plan.dropped = true;
        return plan;
    }
    auto sample_delay = [&]() -> SimDuration {
        const double jit =
            rng_.normal(0.0, static_cast<double>(params_.jitter_sd.ticks()));
        const auto d = params_.base_latency +
                       SimDuration::micros(static_cast<std::int64_t>(jit));
        return std::max(SimDuration::zero(), d);
    };
    plan.delay = sample_delay();
    // The extra reorder holdback and the corruption draw each consume rng
    // only when their probability is non-zero (bernoulli(0) short-circuits),
    // so enabling one fault mode never perturbs the others' sequences.
    if (rng_.bernoulli(params_.reorder_probability)) {
        plan.delay += SimDuration::micros(static_cast<std::int64_t>(
            rng_.uniform(0.0,
                         static_cast<double>(params_.reorder_window.ticks()))));
    }
    if (rng_.bernoulli(params_.duplicate_probability)) {
        plan.duplicated = true;
        plan.dup_delay = sample_delay();
    }
    plan.corrupted = rng_.bernoulli(params_.corrupt_probability);
    return plan;
}

}  // namespace mcps::net
