#include "flow_monitor.hpp"

#include <stdexcept>

namespace mcps::net {

using mcps::sim::SimDuration;
using mcps::sim::SimTime;

FlowMonitor::FlowMonitor(mcps::sim::Simulation& sim, Bus& bus, FlowConfig cfg)
    : sim_{sim}, bus_{bus}, cfg_{std::move(cfg)} {
    if (cfg_.deadline <= SimDuration::zero() ||
        cfg_.check_period <= SimDuration::zero()) {
        throw std::invalid_argument("FlowConfig: non-positive duration");
    }
}

void FlowMonitor::start() {
    if (running_) return;
    running_ = true;
    // The monitor's own subscription rides an ideal dedicated endpoint
    // so it observes the flow as delivered, not additionally degraded.
    bus_.set_endpoint_channel("flow_monitor", ChannelParameters::ideal());
    sub_ = bus_.subscribe("flow_monitor", cfg_.topic_pattern,
                          [this](const Message& m) { on_message(m); });
    check_handle_ =
        sim_.schedule_periodic(cfg_.check_period, [this] { check(); });
}

void FlowMonitor::stop() {
    if (!running_) return;
    running_ = false;
    check_handle_.cancel();
    bus_.unsubscribe(sub_);
}

bool FlowMonitor::currently_late() const {
    if (last_arrival_.is_never()) return false;
    return sim_.now() - last_arrival_ > cfg_.deadline;
}

void FlowMonitor::on_message(const Message& m) {
    ++stats_.messages;
    const SimTime now = sim_.now();
    if (!last_arrival_.is_never()) {
        stats_.gaps_ms.add((now - last_arrival_).to_millis());
    }
    last_arrival_ = now;
    miss_flagged_ = false;

    // Reordering detection per sender (bus seq is global & increasing).
    auto [it, inserted] = last_seq_.try_emplace(m.sender, m.seq);
    if (!inserted) {
        if (m.seq < it->second) ++stats_.reordered;
        it->second = std::max(it->second, m.seq);
    }
}

void FlowMonitor::check() {
    if (last_arrival_.is_never() || miss_flagged_) return;
    if (sim_.now() - last_arrival_ > cfg_.deadline) {
        ++stats_.deadline_misses;
        miss_flagged_ = true;  // one miss per silent window
    }
}

}  // namespace mcps::net
