/// \file channel.hpp
/// \brief Link-quality models: latency, jitter, loss, and outage windows.
///
/// The DAC'10 paper flags network failure as a first-class hazard for
/// closed-loop MCPS ("communication within a MCPS introduces network
/// failure concerns"). The E2 experiment sweeps these parameters to show
/// how interlock efficacy degrades; the fault-injection experiment (E8)
/// uses scheduled outages.

#pragma once

#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mcps::net {

/// Stochastic link parameters.
struct ChannelParameters {
    mcps::sim::SimDuration base_latency = mcps::sim::SimDuration::millis(5);
    mcps::sim::SimDuration jitter_sd = mcps::sim::SimDuration::millis(1);
    double loss_probability = 0.0;       ///< independent per message
    double duplicate_probability = 0.0;  ///< message delivered twice
    /// Probability the message arrives with a corrupted payload (a bit
    /// error that slips past the link CRC). The Bus decides what
    /// corruption means per payload kind.
    double corrupt_probability = 0.0;
    /// Probability the message is held back by an extra uniform delay in
    /// [0, reorder_window], letting later messages overtake it.
    double reorder_probability = 0.0;
    mcps::sim::SimDuration reorder_window = mcps::sim::SimDuration::millis(200);

    void validate() const {
        if (base_latency < mcps::sim::SimDuration::zero()) {
            throw std::invalid_argument("ChannelParameters: negative latency");
        }
        if (jitter_sd < mcps::sim::SimDuration::zero()) {
            throw std::invalid_argument("ChannelParameters: negative jitter");
        }
        if (loss_probability < 0 || loss_probability > 1) {
            throw std::invalid_argument("ChannelParameters: loss outside [0,1]");
        }
        if (duplicate_probability < 0 || duplicate_probability > 1) {
            throw std::invalid_argument(
                "ChannelParameters: duplicate outside [0,1]");
        }
        if (corrupt_probability < 0 || corrupt_probability > 1) {
            throw std::invalid_argument(
                "ChannelParameters: corrupt outside [0,1]");
        }
        if (reorder_probability < 0 || reorder_probability > 1) {
            throw std::invalid_argument(
                "ChannelParameters: reorder outside [0,1]");
        }
        if (reorder_window < mcps::sim::SimDuration::zero()) {
            throw std::invalid_argument(
                "ChannelParameters: negative reorder window");
        }
    }

    /// An ideal channel: zero latency, no loss. Useful in unit tests.
    [[nodiscard]] static ChannelParameters ideal() {
        return ChannelParameters{mcps::sim::SimDuration::zero(),
                                 mcps::sim::SimDuration::zero(), 0.0, 0.0};
    }
};

/// Per-delivery outcome decided by a Channel.
struct DeliveryPlan {
    bool dropped = false;
    bool duplicated = false;
    bool corrupted = false;              ///< first copy arrives corrupted
    mcps::sim::SimDuration delay;        ///< first copy
    mcps::sim::SimDuration dup_delay;    ///< second copy, if duplicated
};

/// A stochastic link with optional scheduled outage windows. During an
/// outage every message is dropped (models gateway reboot, WiFi roam,
/// cable pull — the bedside realities the paper worries about).
class Channel {
public:
    Channel(ChannelParameters params, mcps::sim::RngStream rng);

    /// Decide fate and timing of a message sent at \p now.
    [[nodiscard]] DeliveryPlan plan_delivery(mcps::sim::SimTime now);

    /// Replace the link parameters (e.g. degradation mid-scenario).
    void set_parameters(const ChannelParameters& p);
    [[nodiscard]] const ChannelParameters& parameters() const noexcept {
        return params_;
    }

    /// Schedule a total outage during [from, to).
    void add_outage(mcps::sim::SimTime from, mcps::sim::SimTime to);
    [[nodiscard]] bool in_outage(mcps::sim::SimTime t) const noexcept;

private:
    ChannelParameters params_;
    mcps::sim::RngStream rng_;
    std::vector<std::pair<mcps::sim::SimTime, mcps::sim::SimTime>> outages_;
};

}  // namespace mcps::net
