/// \file message_pool.hpp
/// \brief Slot-recycled allocation for in-flight bus messages.
///
/// Bus::publish used to heap-allocate a shared_ptr<Message> per publish
/// (plus a control block, plus fresh std::string buffers for the
/// envelope), and every delivery lambda paid two atomic refcount ops.
/// The pool removes all of that from the steady-state path:
///  - Message slots live in a std::deque (stable addresses) and are
///    recycled through a free list, so after warm-up a publish performs
///    no slot allocation and envelope strings reuse their old capacity;
///  - MessageRef is a NON-ATOMIC intrusive refcount (same contract as
///    the sim kernel's SlabRef: one bus per simulation thread, refs
///    never cross threads), so handing the message to 64 delivery
///    events costs 64 plain increments;
///  - the pool state is itself refcounted by the outstanding refs, so
///    deliveries still in the kernel's queue stay valid even if the Bus
///    is destroyed before the Simulation drains.
///
/// MessagePoolStats mirrors the kernel's ArenaStats: benches assert
/// that steady-state publishing recycles slots instead of allocating.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "message.hpp"

namespace mcps::net {

/// Allocation counters for bench --json reports.
struct MessagePoolStats {
    std::uint64_t acquired = 0;     ///< total acquire() calls
    std::uint64_t recycled = 0;     ///< acquires served by the free list
    std::uint64_t slot_allocs = 0;  ///< new slots constructed
};

class MessagePool;

namespace detail {
/// One pooled message plus its (non-atomic) per-slot refcount.
struct MessageSlot {
    Message msg;
    std::uint32_t refs = 0;
};
/// Pool storage, co-owned by the pool and every outstanding ref.
struct MessagePoolState {
    std::deque<MessageSlot> slots;  ///< stable addresses for live refs
    std::vector<MessageSlot*> free;
    MessagePoolStats stats;
    std::uint64_t refs = 1;  ///< the pool itself + every live MessageRef
};
}  // namespace detail

/// Shared handle to a pooled Message. Copy/move are cheap (non-atomic
/// refcounts); the slot returns to the pool's free list when the last
/// ref drops. Not thread-safe by design — see file comment.
class MessageRef {
public:
    MessageRef() noexcept = default;
    MessageRef(const MessageRef& o) noexcept : state_{o.state_}, slot_{o.slot_} {
        retain();
    }
    MessageRef(MessageRef&& o) noexcept : state_{o.state_}, slot_{o.slot_} {
        o.state_ = nullptr;
        o.slot_ = nullptr;
    }
    MessageRef& operator=(const MessageRef& o) noexcept {
        if (this != &o) {
            release();
            state_ = o.state_;
            slot_ = o.slot_;
            retain();
        }
        return *this;
    }
    MessageRef& operator=(MessageRef&& o) noexcept {
        if (this != &o) {
            release();
            state_ = o.state_;
            slot_ = o.slot_;
            o.state_ = nullptr;
            o.slot_ = nullptr;
        }
        return *this;
    }
    ~MessageRef() { release(); }

    [[nodiscard]] explicit operator bool() const noexcept {
        return slot_ != nullptr;
    }
    [[nodiscard]] Message& operator*() const noexcept { return slot_->msg; }
    [[nodiscard]] Message* operator->() const noexcept { return &slot_->msg; }

private:
    friend class MessagePool;
    MessageRef(detail::MessagePoolState* state,
               detail::MessageSlot* slot) noexcept
        : state_{state}, slot_{slot} {}

    void retain() noexcept {
        if (state_ != nullptr) {
            ++state_->refs;
            ++slot_->refs;
        }
    }
    void release() noexcept {
        if (state_ == nullptr) return;
        if (--slot_->refs == 0) state_->free.push_back(slot_);
        if (--state_->refs == 0) delete state_;
        state_ = nullptr;
        slot_ = nullptr;
    }

    detail::MessagePoolState* state_ = nullptr;
    detail::MessageSlot* slot_ = nullptr;
};

/// The slot store. One per Bus; acquire() hands out refs whose slots
/// recycle when the last copy drops.
class MessagePool {
public:
    MessagePool() : state_{new detail::MessagePoolState} {}
    MessagePool(const MessagePool&) = delete;
    MessagePool& operator=(const MessagePool&) = delete;
    ~MessagePool() {
        if (--state_->refs == 0) delete state_;
    }

    /// Returns a ref (refcount 1) to a slot whose Message holds stale
    /// field values from its previous use — the caller overwrites every
    /// field (string assignment reuses the old buffers' capacity).
    [[nodiscard]] MessageRef acquire() {
        auto& st = *state_;
        ++st.stats.acquired;
        detail::MessageSlot* slot;
        if (!st.free.empty()) {
            ++st.stats.recycled;
            slot = st.free.back();
            st.free.pop_back();
        } else {
            ++st.stats.slot_allocs;
            slot = &st.slots.emplace_back();
        }
        slot->refs = 1;
        ++st.refs;
        return MessageRef{state_, slot};
    }

    [[nodiscard]] const MessagePoolStats& stats() const noexcept {
        return state_->stats;
    }
    /// Slots currently held by live refs (0 once the kernel drained).
    [[nodiscard]] std::size_t slots_in_flight() const noexcept {
        return state_->slots.size() - state_->free.size();
    }

private:
    detail::MessagePoolState* state_;
};

}  // namespace mcps::net
