/// \file flow_monitor.hpp
/// \brief Per-topic QoS monitoring: inter-arrival gaps, deadline misses,
/// reordering.
///
/// Clinical data flows have implicit QoS contracts ("SpO2 every second").
/// A consumer that silently tolerates gaps is how data-loss hazards hide;
/// the FlowMonitor makes the contract explicit and observable — the same
/// information the interlock's staleness logic acts on, but exposed as a
/// reusable network-health instrument for experiments and dashboards.

#pragma once

#include <map>
#include <string>

#include "bus.hpp"
#include "sim/stats.hpp"

namespace mcps::net {

struct FlowConfig {
    /// Topic pattern to watch (topic_matches syntax).
    std::string topic_pattern = "vitals/*";
    /// The flow's contract: a gap longer than this is a deadline miss.
    mcps::sim::SimDuration deadline = mcps::sim::SimDuration::seconds(3);
    /// How often ongoing silence is checked for a miss.
    mcps::sim::SimDuration check_period = mcps::sim::SimDuration::seconds(1);
};

struct FlowStats {
    std::uint64_t messages = 0;
    std::uint64_t deadline_misses = 0;  ///< distinct silent windows
    std::uint64_t reordered = 0;        ///< seq went backwards per sender
    mcps::sim::SampleSet gaps_ms;       ///< inter-arrival gaps
};

/// Watches one flow on the bus. Not a Device; infrastructure telemetry.
class FlowMonitor {
public:
    FlowMonitor(mcps::sim::Simulation& sim, Bus& bus, FlowConfig cfg);

    void start();
    void stop();

    [[nodiscard]] const FlowStats& stats() const noexcept { return stats_; }
    /// True while the flow is currently past its deadline.
    [[nodiscard]] bool currently_late() const;
    [[nodiscard]] const FlowConfig& config() const noexcept { return cfg_; }

private:
    void on_message(const Message& m);
    void check();

    mcps::sim::Simulation& sim_;
    Bus& bus_;
    FlowConfig cfg_;
    FlowStats stats_;
    mcps::sim::SimTime last_arrival_ = mcps::sim::SimTime::never();
    bool miss_flagged_ = false;
    std::map<std::string, std::uint64_t> last_seq_;
    mcps::sim::EventHandle check_handle_;
    SubscriptionId sub_{};
    bool running_ = false;
};

}  // namespace mcps::net
