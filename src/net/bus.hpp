/// \file bus.hpp
/// \brief Topic-based publish/subscribe data bus over simulated channels.
///
/// The Bus is the framework's stand-in for an ICE network controller's
/// data plane: endpoints (devices, supervisor apps) publish typed
/// messages to hierarchical topics; subscribers receive them after the
/// subscriber's link channel applies latency/jitter/loss. Delivery is
/// scheduled on the shared Simulation kernel, so everything stays
/// deterministic.
///
/// Ordering note: messages on one (publisher, subscriber) pair can
/// reorder if jitter exceeds the publish spacing — exactly like UDP-based
/// medical device protocols; consumers needing order use Message::seq.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "channel.hpp"
#include "message.hpp"
#include "message_pool.hpp"
#include "obs/event_log.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace mcps::net {

/// Unsubscribe token. Destroying it does NOT unsubscribe (explicit
/// lifetime, so tests can drop tokens freely); call Bus::unsubscribe.
struct SubscriptionId {
    std::uint64_t value = 0;
    [[nodiscard]] bool valid() const noexcept { return value != 0; }
};

/// Aggregate traffic counters (benchmark E6 output).
struct BusStats {
    std::uint64_t published = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
    mcps::sim::SampleSet delivery_latency_ms;
};

/// The pub/sub bus. One per scenario; endpoints register a link channel
/// (or inherit the default).
class Bus {
public:
    using Handler = std::function<void(const Message&)>;

    /// \param sim kernel used for delivery scheduling; must outlive the bus.
    /// \param default_channel link model for endpoints without an override.
    Bus(mcps::sim::Simulation& sim, ChannelParameters default_channel = {});

    Bus(const Bus&) = delete;
    Bus& operator=(const Bus&) = delete;

    /// Subscribe \p endpoint to all topics matching \p pattern (see
    /// topic_matches). The handler runs at delivery time (after the
    /// endpoint's channel delay).
    SubscriptionId subscribe(const std::string& endpoint,
                             const std::string& pattern, Handler handler);

    /// Remove a subscription; returns false if the id was already gone.
    bool unsubscribe(SubscriptionId id);

    /// Publish a message from \p sender on \p topic at the current
    /// simulation instant. Returns the assigned sequence number.
    std::uint64_t publish(const std::string& sender, const std::string& topic,
                          Payload payload);

    /// Give \p endpoint a dedicated link model (otherwise the default
    /// channel parameters apply). Returns a reference usable to inject
    /// outages or degrade the link mid-run.
    Channel& endpoint_channel(const std::string& endpoint);
    /// Set/replace the parameters for an endpoint's dedicated link.
    void set_endpoint_channel(const std::string& endpoint,
                              const ChannelParameters& params);

    /// Network partition: every endpoint link (existing and future) drops
    /// all messages sent during [from, to). Models a switch/gateway dying
    /// under the whole device ensemble at once.
    void add_partition(mcps::sim::SimTime from, mcps::sim::SimTime to);

    [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }
    [[nodiscard]] std::size_t subscription_count() const noexcept {
        return subs_.size();
    }

    /// Message-slot recycling counters (bench --json hooks): steady-state
    /// publishing must serve slots from the free list, not the heap.
    [[nodiscard]] const MessagePoolStats& pool_stats() const noexcept {
        return pool_.stats();
    }

    /// Attach a structured event log (publish/deliver/drop events).
    /// nullptr (the default) disables bus tracing at one-branch cost.
    /// The log must outlive the bus.
    void set_event_log(mcps::obs::EventLog* log) noexcept { events_ = log; }
    [[nodiscard]] mcps::obs::EventLog* event_log() const noexcept {
        return events_;
    }

private:
    struct Subscription {
        SubscriptionId id;
        std::string endpoint;
        std::string pattern;
        Handler handler;
        /// Resolved at subscribe time: channels are never destroyed while
        /// the bus lives, so publish skips the per-delivery map lookup.
        Channel* channel = nullptr;
    };

    Channel& channel_for(const std::string& endpoint);

    mcps::sim::Simulation& sim_;
    ChannelParameters default_params_;
    std::uint64_t next_seq_{1};
    std::uint64_t next_sub_{1};
    std::vector<Subscription> subs_;
    std::map<std::string, std::unique_ptr<Channel>> channels_;
    std::vector<std::pair<mcps::sim::SimTime, mcps::sim::SimTime>> partitions_;
    MessagePool pool_;
    BusStats stats_;
    mcps::obs::EventLog* events_ = nullptr;
};

}  // namespace mcps::net
