/// \file net.hpp
/// \brief Umbrella header for the mcps_net simulated-network library.

#pragma once

#include "bus.hpp"      // IWYU pragma: export
#include "channel.hpp"       // IWYU pragma: export
#include "flow_monitor.hpp"  // IWYU pragma: export
#include "message.hpp"  // IWYU pragma: export
#include "message_pool.hpp"  // IWYU pragma: export
