#include "message.hpp"

namespace mcps::net {

std::string_view payload_kind(const Message& m) noexcept {
    struct Visitor {
        std::string_view operator()(const VitalSignPayload&) const {
            return "vital";
        }
        std::string_view operator()(const CommandPayload&) const {
            return "command";
        }
        std::string_view operator()(const AckPayload&) const { return "ack"; }
        std::string_view operator()(const HeartbeatPayload&) const {
            return "heartbeat";
        }
        std::string_view operator()(const StatusPayload&) const {
            return "status";
        }
    };
    return std::visit(Visitor{}, m.payload);
}

bool topic_matches(std::string_view pattern, std::string_view topic) noexcept {
    if (pattern == "*") return true;
    if (pattern.size() >= 2 && pattern.ends_with("/*")) {
        const auto prefix = pattern.substr(0, pattern.size() - 1);  // keep '/'
        return topic.size() > prefix.size() && topic.starts_with(prefix);
    }
    return pattern == topic;
}

}  // namespace mcps::net
