#include "bus.hpp"

#include <algorithm>

namespace mcps::net {

using mcps::sim::SimTime;

namespace {
/// Deterministic garbling for a corrupted delivery: the vital value is
/// replaced by a bounded nonsense reading derived from the message
/// sequence number, and the quality flag is cleared. Only vital streams
/// corrupt — commands and acks are modeled as end-to-end CRC-protected
/// (a corrupted command is indistinguishable from a lost one).
double garbled_vital(std::uint64_t seq) {
    std::uint64_t s = seq ^ 0xC0FFEE; // any fixed tweak; determinism is the point
    const std::uint64_t h = mcps::sim::splitmix64(s);
    return static_cast<double>(h >> 11) * 0x1.0p-53 * 250.0;
}
}  // namespace

Bus::Bus(mcps::sim::Simulation& sim, ChannelParameters default_channel)
    : sim_{sim}, default_params_{default_channel} {
    default_params_.validate();
}

SubscriptionId Bus::subscribe(const std::string& endpoint,
                              const std::string& pattern, Handler handler) {
    if (!handler) throw std::invalid_argument("subscribe: empty handler");
    const SubscriptionId id{next_sub_++};
    subs_.push_back(Subscription{id, endpoint, pattern, std::move(handler),
                                 &channel_for(endpoint)});
    return id;
}

bool Bus::unsubscribe(SubscriptionId id) {
    const auto it = std::find_if(
        subs_.begin(), subs_.end(),
        [id](const Subscription& s) { return s.id.value == id.value; });
    if (it == subs_.end()) return false;
    subs_.erase(it);
    return true;
}

Channel& Bus::channel_for(const std::string& endpoint) {
    auto it = channels_.find(endpoint);
    if (it == channels_.end()) {
        it = channels_
                 .emplace(endpoint, std::make_unique<Channel>(
                                        default_params_,
                                        sim_.rng("bus.channel." + endpoint)))
                 .first;
        // Lazily-created links inherit any partition windows already
        // declared, so partition semantics don't depend on first-publish
        // order.
        for (const auto& w : partitions_) {
            it->second->add_outage(w.first, w.second);
        }
    }
    return *it->second;
}

void Bus::add_partition(SimTime from, SimTime to) {
    if (to <= from) {
        throw std::invalid_argument("add_partition: empty/negative window");
    }
    for (auto& [name, ch] : channels_) ch->add_outage(from, to);
    partitions_.emplace_back(from, to);
}

Channel& Bus::endpoint_channel(const std::string& endpoint) {
    return channel_for(endpoint);
}

void Bus::set_endpoint_channel(const std::string& endpoint,
                               const ChannelParameters& params) {
    channel_for(endpoint).set_parameters(params);
}

std::uint64_t Bus::publish(const std::string& sender, const std::string& topic,
                           Payload payload) {
    const std::uint64_t seq = next_seq_++;
    ++stats_.published;
    const SimTime now = sim_.now();

    // Pooled slot: strings reuse the recycled slot's capacity, and the
    // refs handed to delivery events are non-atomic increments.
    MessageRef msg = pool_.acquire();
    {
        Message& m = *msg;
        m.seq = seq;
        m.topic.assign(topic);
        m.sender.assign(sender);
        m.sent_at = now;
        m.payload = std::move(payload);
    }
    if (events_) {
        events_->emit(mcps::obs::EventKind::kBusPublish, now, sender, topic,
                      static_cast<double>(seq));
    }

    // Snapshot matching subscriptions now; a subscriber added after
    // publication must not receive an in-flight message.
    for (const auto& sub : subs_) {
        if (!topic_matches(sub.pattern, topic)) continue;
        DeliveryPlan plan = sub.channel->plan_delivery(now);
        if (plan.dropped) {
            ++stats_.dropped;
            if (events_) {
                events_->emit(mcps::obs::EventKind::kBusDrop, now,
                              sub.endpoint, topic, static_cast<double>(seq));
            }
            continue;
        }
        MessageRef out = msg;
        if (plan.corrupted) {
            if (const auto* v = payload_as<VitalSignPayload>(*msg)) {
                ++stats_.corrupted;
                out = pool_.acquire();
                Message& o = *out;
                o.seq = msg->seq;
                o.topic.assign(msg->topic);
                o.sender.assign(msg->sender);
                o.sent_at = msg->sent_at;
                o.payload = VitalSignPayload{v->metric,
                                             garbled_vital(msg->seq), false};
            }
        }
        const SubscriptionId sub_id = sub.id;
        auto deliver = [this, msg = std::move(out), sub_id]() {
            // Re-check liveness at delivery time: unsubscribing cancels
            // in-flight deliveries, as a real middleware detach would.
            const auto it = std::find_if(subs_.begin(), subs_.end(),
                                         [sub_id](const Subscription& s) {
                                             return s.id.value == sub_id.value;
                                         });
            if (it == subs_.end()) return;
            ++stats_.delivered;
            stats_.delivery_latency_ms.add(
                (sim_.now() - msg->sent_at).to_millis());
            if (events_) {
                events_->emit(mcps::obs::EventKind::kBusDeliver, sim_.now(),
                              it->endpoint, msg->topic,
                              static_cast<double>(msg->seq));
            }
            it->handler(*msg);
        };
        sim_.schedule_after(plan.delay, deliver);
        if (plan.duplicated) {
            ++stats_.duplicated;
            sim_.schedule_after(plan.dup_delay, deliver);
        }
    }
    return seq;
}

}  // namespace mcps::net
