/// \file pipeline.hpp
/// \brief Umbrella header for the composable pass/pipeline layer.
///
/// The pipeline layer (ROADMAP item 5) turns the repo's stages —
/// scenario execution, trace export, model-level analysis, ward
/// campaigns — into registered passes over content-addressed artifacts:
///
///   Artifact       a named (kind, payload) blob; digest = fnv1a64
///   ArtifactCache  key -> artifact, in-memory + optional disk snapshot
///   Pass           declared inputs/outputs + a pure body
///   PipelineGraph  validation, topo scheduling (serial or ThreadPool),
///                  cache lookup/insert around every cacheable pass
///   std_passes     the built-in stage registry (run/trace/analyze/ward)
///
/// See DESIGN.md ("Pass/pipeline architecture") for the invalidation
/// and determinism contracts.

#pragma once

#include "artifact.hpp"    // IWYU pragma: export
#include "cache.hpp"       // IWYU pragma: export
#include "findings_io.hpp" // IWYU pragma: export
#include "graph.hpp"       // IWYU pragma: export
#include "pass.hpp"        // IWYU pragma: export
#include "std_passes.hpp"  // IWYU pragma: export
