/// \file graph.hpp
/// \brief PipelineGraph: topological pass scheduling over cached,
/// invalidatable artifacts.
///
/// A graph holds source artifacts (provide()) and passes (add());
/// run() validates the graph — unique outputs, every input produced by
/// exactly one pass or provided, no cycles — and executes it either
/// serially in deterministic topological order (jobs <= 1) or in
/// parallel on a ward::ThreadPool with dependency counting: a pass is
/// submitted the moment its last input is ready, independent subgraphs
/// overlap freely.
///
/// Determinism contract: the produced artifacts are byte-identical
/// whether the run is serial, parallel (any job count), cold, or
/// replayed from an ArtifactCache — because each pass is a pure
/// function of its declared inputs + params, the cache is keyed by a
/// content hash of exactly those, and the result's pass list is
/// reported in topological order regardless of execution order. Only
/// wall-time fields vary run to run, and they are never folded into an
/// artifact.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "cache.hpp"
#include "obs/metrics.hpp"
#include "pass.hpp"

namespace mcps::pipeline {

struct PipelineOptions {
    /// Worker threads; <= 1 runs serially in topological order.
    unsigned jobs = 1;
    /// Artifact cache; null = always cold (every pass executes).
    ArtifactCache* cache = nullptr;
    /// When set, run() records per-pass wall time and cache hit/miss
    /// counters here after the run completes ("pipeline/*" names).
    obs::MetricsRegistry* metrics = nullptr;
};

/// What happened to one pass during a run.
struct PassOutcome {
    std::string name;
    bool from_cache = false;  ///< replayed: body never executed
    double wall_us = 0.0;     ///< run-varying; excluded from artifacts
};

/// Everything a run produced, in deterministic shape.
struct PipelineResult {
    /// One entry per pass, in topological order (not execution order).
    std::vector<PassOutcome> passes;
    /// Every artifact by name: the provided sources plus each pass's
    /// outputs (map iteration = sorted name order, so exports are
    /// deterministic).
    std::map<std::string, Artifact> artifacts;
    /// Output artifact name -> the content-hash cache key it was
    /// stored/looked up under.
    std::map<std::string, std::string> keys;
    /// This run's cache traffic (counted per pass output).
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;

    /// Artifact lookup. \throws PipelineError when absent.
    [[nodiscard]] const Artifact& at(const std::string& name) const;

    /// One line per artifact, sorted by name:
    /// `name<TAB>kind<TAB>0x<digest>\n`. Byte-identical across serial /
    /// parallel / cold / cached runs — the handle the determinism suite
    /// compares.
    [[nodiscard]] std::string manifest() const;

    /// 64-bit digest of manifest().
    [[nodiscard]] std::uint64_t digest() const;
};

class PipelineGraph {
public:
    /// Add a source artifact (an external input: a spec, a config).
    /// \throws PipelineError on a duplicate name.
    void provide(const std::string& name, Artifact artifact);

    /// Register a pass. \throws PipelineError on a duplicate pass name,
    /// a duplicate output, or an output colliding with a source.
    void add(Pass pass);

    [[nodiscard]] std::size_t pass_count() const noexcept {
        return passes_.size();
    }

    /// Pass names in the deterministic topological order run() uses
    /// (registration order among ready passes). Validates the graph.
    /// \throws PipelineError on unknown inputs or a dependency cycle.
    [[nodiscard]] std::vector<std::string> topo_order() const;

    /// Pass names (in topological order) that a change to artifact
    /// \p name invalidates: its direct consumers and everything
    /// downstream of them. The structural ground truth the
    /// invalidation property test compares cache behavior against.
    [[nodiscard]] std::vector<std::string> dependents_of(
        const std::string& name) const;

    /// Execute. \throws PipelineError on an invalid graph or the first
    /// failing pass body (message names the pass).
    [[nodiscard]] PipelineResult run(const PipelineOptions& opts = {}) const;

private:
    struct Node {
        Pass pass;
        std::vector<std::size_t> deps;        ///< pass indices
        std::vector<std::size_t> dependents;  ///< pass indices
    };

    /// Resolve edges and topo-sort. \throws PipelineError.
    [[nodiscard]] std::vector<std::size_t> plan(
        std::vector<Node>& nodes) const;

    void run_serial(const std::vector<Node>& nodes,
                    const std::vector<std::size_t>& order,
                    const PipelineOptions& opts, PipelineResult& result) const;
    void run_parallel(const std::vector<Node>& nodes,
                      const std::vector<std::size_t>& order,
                      const PipelineOptions& opts,
                      PipelineResult& result) const;

    std::map<std::string, Artifact> sources_;
    std::vector<Pass> passes_;
};

/// Fold a completed run into \p metrics: per-pass wall gauges
/// ("pipeline/pass/<name>/wall_us"), hit/run counters, and pipeline
/// totals. Called by run() when PipelineOptions::metrics is set; public
/// so drivers can aggregate multiple runs into one registry.
void record_metrics(const PipelineResult& result,
                    obs::MetricsRegistry& metrics);

}  // namespace mcps::pipeline
