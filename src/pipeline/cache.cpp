#include "cache.hpp"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <utility>
#include <vector>

namespace mcps::pipeline {

namespace {
constexpr std::string_view kSnapshotHeader = "mcps-artifact-cache v1";
}  // namespace

ArtifactCache::ArtifactCache(std::size_t max_entries,
                             obs::SharedMetrics* metrics)
    : max_entries_{max_entries}, metrics_{metrics} {}

std::optional<Artifact> ArtifactCache::lookup(const std::string& key) {
    std::lock_guard lk{mu_};
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        mirror_locked();
        return std::nullopt;
    }
    ++hits_;
    mirror_locked();
    return it->second;
}

void ArtifactCache::insert(const std::string& key, Artifact artifact) {
    std::lock_guard lk{mu_};
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        it->second = std::move(artifact);
    } else {
        if (max_entries_ != 0 && entries_.size() >= max_entries_) return;
        entries_.emplace(key, std::move(artifact));
    }
    ++inserts_;
    mirror_locked();
}

std::size_t ArtifactCache::size() const {
    std::lock_guard lk{mu_};
    return entries_.size();
}

std::uint64_t ArtifactCache::hits() const {
    std::lock_guard lk{mu_};
    return hits_;
}

std::uint64_t ArtifactCache::misses() const {
    std::lock_guard lk{mu_};
    return misses_;
}

std::uint64_t ArtifactCache::inserts() const {
    std::lock_guard lk{mu_};
    return inserts_;
}

void ArtifactCache::clear() {
    std::lock_guard lk{mu_};
    entries_.clear();
    mirror_locked();
}

void ArtifactCache::mirror_locked() {
    if (metrics_ == nullptr) return;
    metrics_->set_gauge("pipeline/cache/entries",
                        static_cast<double>(entries_.size()));
    metrics_->set_gauge("pipeline/cache/hits", static_cast<double>(hits_));
    metrics_->set_gauge("pipeline/cache/misses",
                        static_cast<double>(misses_));
}

bool ArtifactCache::save(const std::string& path) const {
    std::vector<std::pair<std::string, const Artifact*>> sorted;
    {
        std::lock_guard lk{mu_};
        sorted.reserve(entries_.size());
        for (const auto& [key, art] : entries_) {
            sorted.emplace_back(key, &art);
        }
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        // Serialize under the lock: the Artifact pointers stay valid and
        // the snapshot is a consistent point-in-time view.
        std::ofstream out{path, std::ios::binary | std::ios::trunc};
        if (!out) return false;
        out << kSnapshotHeader << "\n";
        for (const auto& [key, art] : sorted) {
            out << key << "\t" << snapshot_escape(art->kind) << "\t"
                << snapshot_escape(art->payload) << "\n";
        }
        return static_cast<bool>(out);
    }
}

std::size_t ArtifactCache::load(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) return 0;
    std::string line;
    if (!std::getline(in, line) || line != kSnapshotHeader) return 0;
    std::size_t inserted = 0;
    while (std::getline(in, line)) {
        const std::size_t t1 = line.find('\t');
        if (t1 == std::string::npos) continue;
        const std::size_t t2 = line.find('\t', t1 + 1);
        if (t2 == std::string::npos) continue;
        Artifact art;
        if (!snapshot_unescape(
                std::string_view{line}.substr(t1 + 1, t2 - t1 - 1),
                art.kind)) {
            continue;
        }
        if (!snapshot_unescape(std::string_view{line}.substr(t2 + 1),
                               art.payload)) {
            continue;
        }
        insert(line.substr(0, t1), std::move(art));
        ++inserted;
    }
    return inserted;
}

std::string snapshot_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '\t': out += "\\t"; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    return out;
}

bool snapshot_unescape(std::string_view s, std::string& out) {
    out.clear();
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        if (++i >= s.size()) return false;
        switch (s[i]) {
            case '\\': out += '\\'; break;
            case 't': out += '\t'; break;
            case 'n': out += '\n'; break;
            default: return false;
        }
    }
    return true;
}

}  // namespace mcps::pipeline
