#include "graph.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <utility>

#include "ward/thread_pool.hpp"

namespace mcps::pipeline {

namespace {

/// PassContext over an in-memory input map; collects outputs locally so
/// pass bodies never touch shared state.
class LocalContext final : public PassContext {
public:
    LocalContext(const Pass& pass,
                 const std::map<std::string, Artifact>& inputs)
        : pass_{pass}, inputs_{inputs} {}

    [[nodiscard]] const Artifact& input(
        const std::string& name) const override {
        const bool declared =
            std::find(pass_.inputs.begin(), pass_.inputs.end(), name) !=
            pass_.inputs.end();
        if (!declared) {
            throw PipelineError{"pass '" + pass_.name +
                                "' reads undeclared input '" + name + "'"};
        }
        const auto it = inputs_.find(name);
        if (it == inputs_.end()) {
            throw PipelineError{"pass '" + pass_.name + "': input '" + name +
                                "' was not materialized"};
        }
        return it->second;
    }

    void emit(const std::string& name, Artifact artifact) override {
        const bool declared =
            std::find(pass_.outputs.begin(), pass_.outputs.end(), name) !=
            pass_.outputs.end();
        if (!declared) {
            throw PipelineError{"pass '" + pass_.name +
                                "' emits undeclared output '" + name + "'"};
        }
        if (!outputs_.emplace(name, std::move(artifact)).second) {
            throw PipelineError{"pass '" + pass_.name + "' emitted '" + name +
                                "' twice"};
        }
    }

    /// All outputs; verifies every declared output was emitted.
    std::map<std::string, Artifact> take_outputs() {
        for (const auto& name : pass_.outputs) {
            if (outputs_.find(name) == outputs_.end()) {
                throw PipelineError{"pass '" + pass_.name +
                                    "' did not emit declared output '" +
                                    name + "'"};
            }
        }
        return std::move(outputs_);
    }

private:
    const Pass& pass_;
    const std::map<std::string, Artifact>& inputs_;
    std::map<std::string, Artifact> outputs_;
};

/// The result of executing (or replaying) one pass.
struct ExecOutcome {
    std::map<std::string, Artifact> outputs;
    std::map<std::string, std::string> keys;  ///< output -> cache key
    bool from_cache = false;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    double wall_us = 0.0;
};

/// Run one pass as a pure function of \p inputs. Tries a full cache
/// replay first (all outputs present under their content keys); on any
/// miss executes the body and stores the outputs.
ExecOutcome execute_pass(const Pass& pass,
                         const std::map<std::string, Artifact>& inputs,
                         ArtifactCache* cache) {
    ExecOutcome out;
    std::vector<std::uint64_t> digests;
    digests.reserve(pass.inputs.size());
    for (const auto& name : pass.inputs) {
        digests.push_back(inputs.at(name).digest());
    }
    for (const auto& name : pass.outputs) {
        out.keys.emplace(name,
                         artifact_key(pass.name, pass.params, digests, name));
    }

    if (cache != nullptr && pass.cacheable) {
        std::map<std::string, Artifact> cached;
        for (const auto& [name, key] : out.keys) {
            auto hit = cache->lookup(key);
            if (!hit) break;
            cached.emplace(name, std::move(*hit));
        }
        if (cached.size() == pass.outputs.size()) {
            out.outputs = std::move(cached);
            out.from_cache = true;
            out.hits = pass.outputs.size();
            return out;
        }
        // Partial hits (a bounded cache dropped some entries) count as
        // a miss for the whole pass: the body re-executes.
        out.misses = pass.outputs.size();
    }

    // mcps-analyze: allow(SIM1): wall-clock perf metric only
    const auto t0 = std::chrono::steady_clock::now();
    LocalContext ctx{pass, inputs};
    try {
        pass.run(ctx);
    } catch (const PipelineError&) {
        throw;
    } catch (const std::exception& e) {
        throw PipelineError{"pass '" + pass.name + "' failed: " + e.what()};
    }
    out.outputs = ctx.take_outputs();
    // mcps-analyze: allow(SIM1): wall-clock perf metric only (see above).
    const auto t1 = std::chrono::steady_clock::now();
    out.wall_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();

    if (cache != nullptr && pass.cacheable) {
        for (const auto& [name, art] : out.outputs) {
            cache->insert(out.keys.at(name), art);
        }
    }
    return out;
}

/// Dependency-counting parallel executor. Guarded state is confined to
/// this class; pass bodies run lock-free on copies of their inputs.
class ParallelRunner {
public:
    ParallelRunner(const std::vector<Pass>& passes,
                   const std::vector<std::vector<std::size_t>>& dependents,
                   const std::vector<std::size_t>& missing,
                   std::map<std::string, Artifact> sources,
                   ArtifactCache* cache, ward::ThreadPool& pool)
        : passes_{passes},
          dependents_{dependents},
          pool_{pool},
          cache_{cache},
          artifacts_{std::move(sources)},
          missing_{missing} {
        std::lock_guard lk{mu_};
        outcomes_.resize(passes.size());
    }

    void start() {
        std::vector<std::size_t> ready;
        {
            std::lock_guard lk{mu_};
            for (std::size_t i = 0; i < missing_.size(); ++i) {
                if (missing_[i] == 0) ready.push_back(i);
            }
        }
        submit(ready);
    }

    /// Move the accumulated state into \p result (pass outcomes in
    /// \p order). Rethrows the first pass failure.
    void finish(const std::vector<std::size_t>& order,
                PipelineResult& result) {
        std::lock_guard lk{mu_};
        if (error_) std::rethrow_exception(error_);
        result.artifacts = std::move(artifacts_);
        result.keys = std::move(keys_);
        result.cache_hits = hits_;
        result.cache_misses = misses_;
        result.passes.reserve(order.size());
        for (const std::size_t i : order) {
            result.passes.push_back(std::move(outcomes_[i]));
        }
    }

private:
    void submit(const std::vector<std::size_t>& ready) {
        for (const std::size_t i : ready) {
            pool_.submit([this, i] { run_node(i); });
        }
    }

    void run_node(std::size_t i) {
        const Pass& pass = passes_[i];
        std::map<std::string, Artifact> inputs;
        {
            std::lock_guard lk{mu_};
            if (error_) return;  // fail fast: stop expanding the frontier
            for (const auto& name : pass.inputs) {
                inputs.emplace(name, artifacts_.at(name));
            }
        }
        std::vector<std::size_t> ready;
        try {
            ExecOutcome exec = execute_pass(pass, inputs, cache_);
            std::lock_guard lk{mu_};
            outcomes_[i] = PassOutcome{pass.name, exec.from_cache,
                                       exec.wall_us};
            hits_ += exec.hits;
            misses_ += exec.misses;
            for (auto& [name, key] : exec.keys) {
                keys_.emplace(name, std::move(key));
            }
            for (auto& [name, art] : exec.outputs) {
                artifacts_.emplace(name, std::move(art));
            }
            for (const std::size_t dep : dependents_[i]) {
                if (--missing_[dep] == 0) ready.push_back(dep);
            }
        } catch (...) {
            std::lock_guard lk{mu_};
            if (!error_) error_ = std::current_exception();
            return;
        }
        // Submit outside mu_: ThreadPool::submit takes its own lock and
        // the DAG stays free of a pipeline->pool lock-order edge.
        submit(ready);
    }

    const std::vector<Pass>& passes_;
    const std::vector<std::vector<std::size_t>>& dependents_;
    ward::ThreadPool& pool_;
    ArtifactCache* cache_;

    std::mutex mu_;
    std::map<std::string, Artifact> artifacts_ MCPS_GUARDED_BY(mu_);
    std::vector<std::size_t> missing_ MCPS_GUARDED_BY(mu_);
    std::vector<PassOutcome> outcomes_ MCPS_GUARDED_BY(mu_);
    std::map<std::string, std::string> keys_ MCPS_GUARDED_BY(mu_);
    std::uint64_t hits_ MCPS_GUARDED_BY(mu_) = 0;
    std::uint64_t misses_ MCPS_GUARDED_BY(mu_) = 0;
    std::exception_ptr error_ MCPS_GUARDED_BY(mu_);
};

}  // namespace

// ---- PipelineResult ---------------------------------------------------

const Artifact& PipelineResult::at(const std::string& name) const {
    const auto it = artifacts.find(name);
    if (it == artifacts.end()) {
        throw PipelineError{"no artifact named '" + name + "'"};
    }
    return it->second;
}

std::string PipelineResult::manifest() const {
    std::string out;
    for (const auto& [name, art] : artifacts) {
        out += name;
        out += '\t';
        out += art.kind;
        out += '\t';
        out += art.digest_hex();
        out += '\n';
    }
    return out;
}

std::uint64_t PipelineResult::digest() const {
    return Artifact{"manifest", manifest()}.digest();
}

// ---- PipelineGraph ----------------------------------------------------

void PipelineGraph::provide(const std::string& name, Artifact artifact) {
    if (!sources_.emplace(name, std::move(artifact)).second) {
        throw PipelineError{"duplicate source artifact '" + name + "'"};
    }
}

void PipelineGraph::add(Pass pass) {
    if (!pass.run) {
        throw PipelineError{"pass '" + pass.name + "' has no body"};
    }
    for (const Pass& existing : passes_) {
        if (existing.name == pass.name) {
            throw PipelineError{"duplicate pass '" + pass.name + "'"};
        }
    }
    for (const auto& out : pass.outputs) {
        if (sources_.count(out) != 0) {
            throw PipelineError{"pass '" + pass.name + "' output '" + out +
                                "' collides with a source artifact"};
        }
        for (const Pass& existing : passes_) {
            for (const auto& other : existing.outputs) {
                if (other == out) {
                    throw PipelineError{
                        "output '" + out + "' produced by both '" +
                        existing.name + "' and '" + pass.name + "'"};
                }
            }
        }
    }
    passes_.push_back(std::move(pass));
}

std::vector<std::size_t> PipelineGraph::plan(std::vector<Node>& nodes) const {
    // Map each artifact to its producing pass.
    std::map<std::string, std::size_t> producer;
    nodes.clear();
    nodes.reserve(passes_.size());
    for (std::size_t i = 0; i < passes_.size(); ++i) {
        nodes.push_back(Node{passes_[i], {}, {}});
        for (const auto& out : passes_[i].outputs) {
            producer.emplace(out, i);
        }
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (const auto& in : nodes[i].pass.inputs) {
            const auto p = producer.find(in);
            if (p != producer.end()) {
                nodes[i].deps.push_back(p->second);
                nodes[p->second].dependents.push_back(i);
            } else if (sources_.find(in) == sources_.end()) {
                throw PipelineError{"pass '" + nodes[i].pass.name +
                                    "' input '" + in +
                                    "' is neither a source nor any "
                                    "pass's output"};
            }
        }
    }

    // Kahn's algorithm; among ready passes the lowest registration
    // index goes first, so the serial order is deterministic.
    std::vector<std::size_t> missing(nodes.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        missing[i] = nodes[i].deps.size();
    }
    std::vector<std::size_t> order;
    order.reserve(nodes.size());
    std::vector<bool> done(nodes.size(), false);
    for (std::size_t step = 0; step < nodes.size(); ++step) {
        std::size_t pick = nodes.size();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (!done[i] && missing[i] == 0) {
                pick = i;
                break;
            }
        }
        if (pick == nodes.size()) {
            std::string cycle;
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                if (!done[i]) {
                    if (!cycle.empty()) cycle += ", ";
                    cycle += nodes[i].pass.name;
                }
            }
            throw PipelineError{"dependency cycle among passes: " + cycle};
        }
        done[pick] = true;
        order.push_back(pick);
        for (const std::size_t dep : nodes[pick].dependents) {
            --missing[dep];
        }
    }
    return order;
}

std::vector<std::string> PipelineGraph::topo_order() const {
    std::vector<Node> nodes;
    const auto order = plan(nodes);
    std::vector<std::string> names;
    names.reserve(order.size());
    for (const std::size_t i : order) names.push_back(nodes[i].pass.name);
    return names;
}

std::vector<std::string> PipelineGraph::dependents_of(
    const std::string& name) const {
    std::vector<Node> nodes;
    const auto order = plan(nodes);

    std::vector<bool> hit(nodes.size(), false);
    // Seed: passes that consume the artifact directly.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (const auto& in : nodes[i].pass.inputs) {
            if (in == name) hit[i] = true;
        }
    }
    // Walking in topological order propagates the taint in one sweep.
    for (const std::size_t i : order) {
        if (!hit[i]) continue;
        for (const std::size_t dep : nodes[i].dependents) hit[dep] = true;
    }
    std::vector<std::string> out;
    for (const std::size_t i : order) {
        if (hit[i]) out.push_back(nodes[i].pass.name);
    }
    return out;
}

void PipelineGraph::run_serial(const std::vector<Node>& nodes,
                               const std::vector<std::size_t>& order,
                               const PipelineOptions& opts,
                               PipelineResult& result) const {
    result.artifacts = sources_;
    result.passes.reserve(order.size());
    for (const std::size_t i : order) {
        const Pass& pass = nodes[i].pass;
        ExecOutcome exec = execute_pass(pass, result.artifacts, opts.cache);
        result.passes.push_back(
            PassOutcome{pass.name, exec.from_cache, exec.wall_us});
        result.cache_hits += exec.hits;
        result.cache_misses += exec.misses;
        for (auto& [name, key] : exec.keys) {
            result.keys.emplace(name, std::move(key));
        }
        for (auto& [name, art] : exec.outputs) {
            result.artifacts.emplace(name, std::move(art));
        }
    }
}

void PipelineGraph::run_parallel(const std::vector<Node>& nodes,
                                 const std::vector<std::size_t>& order,
                                 const PipelineOptions& opts,
                                 PipelineResult& result) const {
    std::vector<Pass> passes;
    std::vector<std::vector<std::size_t>> dependents;
    std::vector<std::size_t> missing;
    passes.reserve(nodes.size());
    dependents.reserve(nodes.size());
    missing.reserve(nodes.size());
    for (const Node& n : nodes) {
        passes.push_back(n.pass);
        dependents.push_back(n.dependents);
        missing.push_back(n.deps.size());
    }

    const unsigned workers = std::min<unsigned>(
        opts.jobs, static_cast<unsigned>(std::max<std::size_t>(
                       1, nodes.size())));
    ward::ThreadPool pool{workers};
    ParallelRunner runner{passes,        dependents, missing,
                          sources_,      opts.cache, pool};
    runner.start();
    pool.wait_idle();
    runner.finish(order, result);
}

PipelineResult PipelineGraph::run(const PipelineOptions& opts) const {
    std::vector<Node> nodes;
    const auto order = plan(nodes);

    PipelineResult result;
    if (opts.jobs <= 1 || nodes.size() <= 1) {
        run_serial(nodes, order, opts, result);
    } else {
        run_parallel(nodes, order, opts, result);
    }
    if (opts.metrics != nullptr) record_metrics(result, *opts.metrics);
    return result;
}

void record_metrics(const PipelineResult& result,
                    obs::MetricsRegistry& metrics) {
    metrics.counter("pipeline/runs").add(1);
    metrics.counter("pipeline/cache/hits").add(result.cache_hits);
    metrics.counter("pipeline/cache/misses").add(result.cache_misses);
    for (const PassOutcome& p : result.passes) {
        const std::string base = "pipeline/pass/" + p.name;
        metrics.gauge(base + "/wall_us").set(p.wall_us);
        metrics.counter(p.from_cache ? base + "/replays" : base + "/runs")
            .add(1);
    }
}

}  // namespace mcps::pipeline
