/// \file cache.hpp
/// \brief ArtifactCache: content-keyed store of pass outputs.
///
/// The cache maps artifact keys (artifact.hpp: a content hash of the
/// producing pass + its input digests) to finished Artifacts. A pass
/// whose every output key hits is *replayed* from the cache without
/// executing; a key changes exactly when an upstream input changed, so
/// invalidation is structural — there is nothing to expire by hand.
///
/// Follows the serve ResultCache conventions: mutex-guarded and safe to
/// share across pipeline worker threads; hit/miss/insert counters
/// mirrored into an optional obs::SharedMetrics under
/// "pipeline/cache/*"; and a versioned, line-oriented disk snapshot
/// (`key<TAB>kind<TAB>escaped-payload` per line) whose load() skips
/// malformed lines so a stale or truncated snapshot degrades to a
/// smaller cache, never a crash. Unlike the serve cache there is no LRU
/// bound by default (pipeline artifact sets are small and enumerable);
/// \p max_entries caps it when a bound is wanted.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "artifact.hpp"
#include "obs/shared_metrics.hpp"
#include "sim/guarded.hpp"

namespace mcps::pipeline {

/// mirror_locked() calls into SharedMetrics while holding the cache
/// mutex — same audited nesting as serve::ResultCache; declared so the
/// CONC1 lock-order DAG covers the pipeline layer too.
MCPS_LOCK_ORDER(ArtifactCache::mu_, obs::SharedMetrics::mu_);

class ArtifactCache {
public:
    /// \p max_entries of 0 means unbounded. \p metrics may be null;
    /// when set it must outlive the cache.
    explicit ArtifactCache(std::size_t max_entries = 0,
                           obs::SharedMetrics* metrics = nullptr);

    /// Returns the cached artifact, or nullopt on a miss.
    [[nodiscard]] std::optional<Artifact> lookup(const std::string& key);

    /// Insert (or overwrite) an entry. When a max_entries bound is set
    /// and reached, further *new* keys are dropped (pipeline keys are
    /// content hashes: overwriting an existing key stores the same
    /// bytes, so there is no recency to track).
    void insert(const std::string& key, Artifact artifact);

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t max_entries() const noexcept {
        return max_entries_;
    }
    [[nodiscard]] std::uint64_t hits() const;
    [[nodiscard]] std::uint64_t misses() const;
    [[nodiscard]] std::uint64_t inserts() const;

    void clear();

    /// Write a snapshot to \p path (keys in sorted order, so snapshots
    /// of equal caches are byte-identical). Returns false on I/O error.
    [[nodiscard]] bool save(const std::string& path) const;

    /// Load a snapshot written by save(), inserting entries (subject to
    /// the capacity bound; counters are not restored). Malformed lines
    /// are skipped. Returns the number of entries inserted; 0 when the
    /// file is missing or unreadable.
    std::size_t load(const std::string& path);

private:
    void mirror_locked() MCPS_REQUIRES(mu_);

    const std::size_t max_entries_;
    obs::SharedMetrics* metrics_;

    mutable std::mutex mu_;
    std::unordered_map<std::string, Artifact> entries_ MCPS_GUARDED_BY(mu_);
    std::uint64_t hits_ MCPS_GUARDED_BY(mu_) = 0;
    std::uint64_t misses_ MCPS_GUARDED_BY(mu_) = 0;
    std::uint64_t inserts_ MCPS_GUARDED_BY(mu_) = 0;
};

/// Escape a payload for the one-line snapshot format: backslash,
/// tab and newline become \\, \t, \n.
[[nodiscard]] std::string snapshot_escape(std::string_view s);
/// Inverse of snapshot_escape. Returns false on a dangling backslash
/// or unknown escape (the malformed-line signal).
[[nodiscard]] bool snapshot_unescape(std::string_view s, std::string& out);

}  // namespace mcps::pipeline
