/// \file std_passes.hpp
/// \brief The built-in pass registry: every existing mcps stage as a
/// pipeline pass.
///
/// These builders migrate the repo's stages onto the Pass/PipelineGraph
/// substrate:
///
///   scenario execution   spec/<id>        -> run/<id>/{artifacts,events,
///                                            fingerprint}
///   trace export         run/<id>/events  -> trace/<id>/chrome
///   analysis stages      (pure / scans)   -> analysis/<stage> findings
///   analysis merge       stage findings   -> analysis/{report,sarif}
///   ward campaign        ward/<id>/config -> ward/<id>/{report,
///                                            fingerprint}
///   ward report merge    fingerprints     -> ward/summary
///
/// Every body is a pure function of its input artifacts + params (the
/// two filesystem scans are registered non-cacheable instead), so the
/// graph's determinism and invalidation contracts hold end to end:
/// editing one scenario knob re-keys exactly that spec's run pass and
/// its downstream passes, nothing else.

#pragma once

#include <string>
#include <vector>

#include "graph.hpp"
#include "scenario/scenario.hpp"
#include "ward/ward_config.hpp"

namespace mcps::pipeline {

// ---- scenario execution ----------------------------------------------

/// Provide source artifact "spec/<id>" (kind "spec", canonical spec
/// text) and register pass "run:<id>" producing "run/<id>/artifacts"
/// (run-json), "run/<id>/events" (events-jsonl) and
/// "run/<id>/fingerprint" (fingerprint).
void add_scenario_pass(PipelineGraph& g, const std::string& id,
                       const scenario::ScenarioSpec& spec);

/// Register pass "trace:<id>": "run/<id>/events" -> "trace/<id>/chrome"
/// (chrome-trace).
void add_trace_export_pass(PipelineGraph& g, const std::string& id);

// ---- analysis ---------------------------------------------------------

struct AnalysisPassOptions {
    bool models = true;       ///< TA1–TA4 over shipped TA models
    bool assemblies = true;   ///< ICE1 over shipped assemblies
    bool hazards = true;      ///< AS1 over the GPCA hazard log + GSN
    bool deadlines = true;    ///< TA5 over every registry preset
    bool cross_check = false; ///< TA5 static-vs-observed (2 sim runs)
    std::string src_root;     ///< SIM1 scan root; empty = no scan pass
    std::vector<std::string> scenario_roots;  ///< ICE1 bypass scan
    std::vector<std::string> conc_roots;      ///< CONC1 lock scan
    std::string suppress;     ///< comma rule list, e.g. "TA2,SIM1"

    /// Canonical echo of every option (driver display / logging). Each
    /// stage pass hashes only the subset that changes its bytes, so
    /// invalidation stays exact.
    [[nodiscard]] std::string params() const;
};

/// Register one pass per enabled stage ("analyze:models",
/// "analyze:assemblies", "analyze:hazards", "analyze:deadlines",
/// "analyze:scan", "analyze:scenario-scan", "analyze:conc" — the three
/// scans are non-cacheable) plus "analyze:merge" producing
/// "analysis/report" (report-json) and "analysis/sarif" (sarif).
/// \throws PipelineError on an unknown rule in \p opts.suppress.
void add_analysis_passes(PipelineGraph& g, const AnalysisPassOptions& opts);

// ---- ward campaigns ---------------------------------------------------

/// Canonical one-line text form of a ward campaign config
/// ("seed=42 patients=64 jobs=1 shards=64 mix=pca=0.7,... intensity=0");
/// round-trips through parse_ward_config.
[[nodiscard]] std::string ward_config_to_text(const ward::WardConfig& cfg);

/// Parse ward_config_to_text() / `mcps pipeline --ward` specs. Unknown
/// keys or malformed values \throw ward::WardConfigError.
[[nodiscard]] ward::WardConfig parse_ward_config(std::string_view text);

/// Provide source artifact "ward/<id>/config" and register pass
/// "ward:<id>" producing "ward/<id>/report" (ward-json, wall-time
/// fields zeroed: artifacts never carry run-varying bytes) and
/// "ward/<id>/fingerprint" (fingerprint).
/// \throws ward::WardConfigError on an invalid config.
void add_ward_pass(PipelineGraph& g, const std::string& id,
                   const ward::WardConfig& cfg);

/// Register pass "ward:merge" folding the campaigns' fingerprints into
/// "ward/summary" (ward-summary): one `<id><TAB>0x<fp>` line per
/// campaign plus a `combined` digest line.
void add_ward_merge_pass(PipelineGraph& g,
                         const std::vector<std::string>& ids);

}  // namespace mcps::pipeline
