#include "artifact.hpp"

#include <cstdio>

namespace mcps::pipeline {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a_step(std::uint64_t h, std::string_view s) noexcept {
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    // A field separator that cannot appear in the data keeps
    // ("ab","c") and ("a","bc") from colliding.
    h ^= 0xffU;
    h *= kFnvPrime;
    return h;
}

std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffU;
        h *= kFnvPrime;
    }
    return h;
}

}  // namespace

std::uint64_t Artifact::digest() const noexcept {
    std::uint64_t h = kFnvOffset;
    h = fnv1a_step(h, kind);
    h = fnv1a_step(h, payload);
    return h;
}

std::string Artifact::digest_hex() const { return hex64(digest()); }

std::string hex64(std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string artifact_key(std::string_view pass_name, std::string_view params,
                         const std::vector<std::uint64_t>& input_digests,
                         std::string_view output) {
    std::uint64_t h = kFnvOffset;
    h = fnv1a_step(h, pass_name);
    h = fnv1a_step(h, params);
    for (const std::uint64_t d : input_digests) h = fnv1a_step(h, d);
    h = fnv1a_step(h, output);
    return std::string{output} + "@" + hex64(h);
}

}  // namespace mcps::pipeline
