/// \file artifact.hpp
/// \brief Artifact: the typed, content-addressed unit of pipeline data.
///
/// Every pass consumes and produces Artifacts — named byte payloads
/// with a small `kind` tag ("spec", "run-json", "events-jsonl",
/// "chrome-trace", "findings", "report-json", "sarif", ...). An
/// artifact's *digest* is a 64-bit FNV-1a over kind + payload; its
/// *cache key* is derived from the producing pass (name, canonical
/// parameter string) and the digests of that pass's inputs, so the key
/// changes exactly when something upstream changed. Two artifacts with
/// equal digests are byte-identical by construction (the repo-wide
/// byte-identity convention the golden traces and ward fingerprints
/// already use).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mcps::pipeline {

/// One named blob of pipeline data.
struct Artifact {
    std::string kind;     ///< small format tag, e.g. "events-jsonl"
    std::string payload;  ///< serialized bytes (UTF-8 text everywhere)

    /// Order- and value-exact 64-bit digest over kind + payload.
    [[nodiscard]] std::uint64_t digest() const noexcept;
    /// "0x%016llx" rendering of digest().
    [[nodiscard]] std::string digest_hex() const;
};

/// "0x%016llx" rendering helper shared by the pipeline layer.
[[nodiscard]] std::string hex64(std::uint64_t v);

/// The cache key of one pass output: a content hash of everything that
/// determines the output's bytes. \p pass_name and \p params identify
/// the computation (params is the pass's canonical parameter string);
/// \p input_digests are the digests of the pass's declared inputs in
/// declaration order; \p output is the produced artifact's name.
/// Editing any input knob changes its artifact payload, hence its
/// digest, hence every downstream key — and nothing else.
[[nodiscard]] std::string artifact_key(
    std::string_view pass_name, std::string_view params,
    const std::vector<std::uint64_t>& input_digests,
    std::string_view output);

}  // namespace mcps::pipeline
