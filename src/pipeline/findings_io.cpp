#include "findings_io.hpp"

#include <charconv>
#include <vector>

#include "cache.hpp"
#include "pass.hpp"

namespace mcps::pipeline {

namespace {

constexpr std::string_view kHeader = "mcps-findings v1";

[[noreturn]] void malformed(const std::string& what) {
    throw PipelineError{"findings artifact: " + what};
}

std::vector<std::string_view> split_tabs(std::string_view line) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string_view::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

std::uint64_t parse_count(std::string_view v) {
    std::uint64_t out = 0;
    const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc{} || p != v.data() + v.size()) {
        malformed("bad count '" + std::string{v} + "'");
    }
    return out;
}

std::string unescape_field(std::string_view v, const char* what) {
    std::string out;
    if (!snapshot_unescape(v, out)) {
        malformed(std::string{"bad escape in "} + what);
    }
    return out;
}

}  // namespace

std::string write_findings(const analysis::AnalysisReport& report) {
    std::string out{kHeader};
    out += '\n';
    for (const auto& name : report.analyzed) {
        out += "analyzed\t";
        out += snapshot_escape(name);
        out += '\n';
    }
    out += "suppressed\t";
    out += std::to_string(report.suppressed_findings);
    out += '\n';
    for (const analysis::Finding& f : report.findings) {
        out += "finding\t";
        out += analysis::rule_name(f.rule);
        out += '\t';
        out += analysis::to_string(f.severity);
        out += '\t';
        out += snapshot_escape(f.entity);
        out += '\t';
        out += snapshot_escape(f.file);
        out += '\t';
        out += std::to_string(f.line);
        out += '\t';
        out += snapshot_escape(f.message);
        out += '\n';
    }
    return out;
}

analysis::AnalysisReport read_findings(std::string_view text) {
    analysis::AnalysisReport report;
    std::size_t pos = 0;
    bool first = true;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos) eol = text.size();
        const std::string_view line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (first) {
            if (line != kHeader) malformed("missing header");
            first = false;
            continue;
        }
        if (line.empty()) continue;
        const auto fields = split_tabs(line);
        if (fields[0] == "analyzed") {
            if (fields.size() != 2) malformed("bad analyzed line");
            report.analyzed.push_back(
                unescape_field(fields[1], "analyzed name"));
        } else if (fields[0] == "suppressed") {
            if (fields.size() != 2) malformed("bad suppressed line");
            report.suppressed_findings =
                static_cast<std::size_t>(parse_count(fields[1]));
        } else if (fields[0] == "finding") {
            if (fields.size() != 7) malformed("bad finding line");
            analysis::Finding f;
            if (!analysis::parse_rule(fields[1], f.rule)) {
                malformed("unknown rule '" + std::string{fields[1]} + "'");
            }
            if (fields[2] == "error") {
                f.severity = analysis::FindingSeverity::kError;
            } else if (fields[2] == "warning") {
                f.severity = analysis::FindingSeverity::kWarning;
            } else {
                malformed("unknown severity '" + std::string{fields[2]} +
                          "'");
            }
            f.entity = unescape_field(fields[3], "entity");
            f.file = unescape_field(fields[4], "file");
            f.line = static_cast<std::size_t>(parse_count(fields[5]));
            f.message = unescape_field(fields[6], "message");
            report.findings.push_back(std::move(f));
        } else {
            malformed("unknown record '" + std::string{fields[0]} + "'");
        }
    }
    if (first) malformed("empty artifact");
    return report;
}

void merge_findings(analysis::AnalysisReport& into,
                    const analysis::AnalysisReport& part) {
    into.findings.insert(into.findings.end(), part.findings.begin(),
                         part.findings.end());
    into.analyzed.insert(into.analyzed.end(), part.analyzed.begin(),
                         part.analyzed.end());
    into.suppressed_findings += part.suppressed_findings;
}

}  // namespace mcps::pipeline
