/// \file findings_io.hpp
/// \brief Round-trippable serialization of analysis findings.
///
/// Analysis stage passes emit their AnalysisReport as a "findings"
/// artifact; the merge pass parses the stage artifacts back and
/// produces the combined JSON + SARIF reports. Because the merge works
/// from the serialized form, its output bytes are identical whether a
/// stage executed fresh or was replayed from the ArtifactCache — the
/// property the cold-vs-warm determinism suite pins.
///
/// Format (versioned, line-oriented, tab-separated, snapshot-escaped):
///
///   mcps-findings v1
///   analyzed<TAB>name
///   suppressed<TAB>count
///   finding<TAB>RULE<TAB>severity<TAB>entity<TAB>file<TAB>line<TAB>message

#pragma once

#include <string>
#include <string_view>

#include "analysis/finding.hpp"

namespace mcps::pipeline {

/// Serialize \p report (deterministic: preserves finding order).
[[nodiscard]] std::string write_findings(
    const analysis::AnalysisReport& report);

/// Parse write_findings() output. \throws PipelineError (pass.hpp) on a
/// malformed header, unknown rule/severity, or bad field count —
/// findings artifacts are machine-written, so damage is a bug, not
/// input noise.
[[nodiscard]] analysis::AnalysisReport read_findings(std::string_view text);

/// Concatenate \p into += \p part: findings, analyzed names and the
/// suppressed count accumulate in call order.
void merge_findings(analysis::AnalysisReport& into,
                    const analysis::AnalysisReport& part);

}  // namespace mcps::pipeline
