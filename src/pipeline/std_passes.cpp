#include "std_passes.hpp"

#include <charconv>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "analysis/analysis.hpp"
#include "analysis/shipped.hpp"
#include "assurance/assurance.hpp"
#include "findings_io.hpp"
#include "obs/exporters.hpp"
#include "ward/ward_engine.hpp"

namespace mcps::pipeline {

namespace {

std::string run_prefix(const std::string& id) { return "run/" + id + "/"; }

std::string bool_char(bool b) { return b ? "1" : "0"; }

std::string join(const std::vector<std::string>& parts) {
    std::string out;
    for (const std::string& p : parts) {
        if (!out.empty()) out += ',';
        out += p;
    }
    return out;
}

}  // namespace

// ---- scenario execution ----------------------------------------------

void add_scenario_pass(PipelineGraph& g, const std::string& id,
                       const scenario::ScenarioSpec& spec) {
    const std::string spec_name = "spec/" + id;
    g.provide(spec_name, Artifact{"spec", spec.to_text()});

    Pass p;
    p.name = "run:" + id;
    p.inputs = {spec_name};
    p.outputs = {run_prefix(id) + "artifacts", run_prefix(id) + "events",
                 run_prefix(id) + "fingerprint"};
    // The body re-parses the spec from the input artifact instead of
    // capturing it: the run is a function of the artifact bytes, so a
    // knob edit invalidates through the content hash.
    p.run = [id, spec_name](PassContext& ctx) {
        const scenario::ScenarioSpec run_spec =
            scenario::parse_spec(ctx.input(spec_name).payload);
        obs::EventLog events;
        scenario::RunOptions opts;
        opts.events = &events;
        const scenario::RunArtifacts art =
            scenario::registry().run(run_spec, opts);

        std::ostringstream run_json;
        art.write_json(run_json);
        std::ostringstream jsonl;
        obs::write_jsonl(events, jsonl);
        ctx.emit(run_prefix(id) + "artifacts",
                 Artifact{"run-json", run_json.str()});
        ctx.emit(run_prefix(id) + "events",
                 Artifact{"events-jsonl", jsonl.str()});
        ctx.emit(run_prefix(id) + "fingerprint",
                 Artifact{"fingerprint", art.fingerprint_hex() + "\n"});
    };
    g.add(std::move(p));
}

void add_trace_export_pass(PipelineGraph& g, const std::string& id) {
    Pass p;
    p.name = "trace:" + id;
    p.inputs = {run_prefix(id) + "events"};
    p.outputs = {"trace/" + id + "/chrome"};
    p.run = [id](PassContext& ctx) {
        std::istringstream in{ctx.input(run_prefix(id) + "events").payload};
        const obs::EventLog events = obs::read_jsonl(in);
        std::ostringstream out;
        obs::write_chrome_trace(events, out);
        ctx.emit("trace/" + id + "/chrome",
                 Artifact{"chrome-trace", out.str()});
    };
    g.add(std::move(p));
}

// ---- analysis ---------------------------------------------------------

std::string AnalysisPassOptions::params() const {
    std::string out = "suppress=" + suppress;
    out += ";models=" + bool_char(models);
    out += ";assemblies=" + bool_char(assemblies);
    out += ";hazards=" + bool_char(hazards);
    out += ";deadlines=" + bool_char(deadlines);
    out += ";cross_check=" + bool_char(cross_check);
    out += ";src_root=" + src_root;
    out += ";scenario_roots=" + join(scenario_roots);
    out += ";conc_roots=" + join(conc_roots);
    return out;
}

namespace {

/// One analysis stage as a pass: fresh Analyzer, run \p body, emit the
/// report as a findings artifact. Each stage carries only the params
/// that change its bytes, so invalidation stays exact.
void add_analysis_stage(
    PipelineGraph& g, const std::string& stage, std::string params,
    bool cacheable, const analysis::SuppressionSet& suppressions,
    std::function<void(analysis::Analyzer&)> body) {
    Pass p;
    p.name = "analyze:" + stage;
    p.params = std::move(params);
    p.outputs = {"analysis/" + stage};
    p.cacheable = cacheable;
    p.run = [stage, suppressions, body = std::move(body)](PassContext& ctx) {
        analysis::Analyzer analyzer{suppressions};
        body(analyzer);
        ctx.emit("analysis/" + stage,
                 Artifact{"findings", write_findings(analyzer.report())});
    };
    g.add(std::move(p));
}

}  // namespace

void add_analysis_passes(PipelineGraph& g, const AnalysisPassOptions& opts) {
    analysis::SuppressionSet suppressions;
    if (!opts.suppress.empty() && !suppressions.parse_list(opts.suppress)) {
        throw PipelineError{"analysis passes: unknown rule in suppress list '" +
                            opts.suppress + "'"};
    }
    const std::string sup = "suppress=" + opts.suppress;

    // Stage registration order mirrors tools/mcps_analyze so the merged
    // report's finding order — hence its JSON/SARIF bytes — matches the
    // classic CLI exactly.
    std::vector<std::string> stages;
    if (opts.models) {
        stages.push_back("models");
        add_analysis_stage(g, "models", sup, true, suppressions,
                           [](analysis::Analyzer& a) {
                               analysis::add_shipped_ta_models(a);
                           });
    }
    if (opts.assemblies) {
        stages.push_back("assemblies");
        add_analysis_stage(g, "assemblies", sup, true, suppressions,
                           [](analysis::Analyzer& a) {
                               analysis::add_shipped_assemblies(a);
                           });
    }
    if (opts.hazards) {
        stages.push_back("hazards");
        add_analysis_stage(g, "hazards", sup, true, suppressions,
                           [](analysis::Analyzer& a) {
                               const auto log =
                                   assurance::build_gpca_hazard_log();
                               const auto gsn =
                                   assurance::build_gpca_case_skeleton();
                               a.check_hazards(log, &gsn);
                           });
    }
    if (opts.deadlines) {
        stages.push_back("deadlines");
        add_analysis_stage(
            g, "deadlines",
            sup + ";cross_check=" + bool_char(opts.cross_check), true,
            suppressions, [cross = opts.cross_check](analysis::Analyzer& a) {
                a.check_deadlines({}, cross);
            });
    }
    if (!opts.src_root.empty()) {
        stages.push_back("scan");
        add_analysis_stage(g, "scan", sup + ";root=" + opts.src_root,
                           /*cacheable=*/false, suppressions,
                           [root = opts.src_root](analysis::Analyzer& a) {
                               a.scan_sources(root);
                           });
    }
    if (!opts.scenario_roots.empty()) {
        stages.push_back("scenario-scan");
        add_analysis_stage(g, "scenario-scan",
                           sup + ";roots=" + join(opts.scenario_roots),
                           /*cacheable=*/false, suppressions,
                           [roots = opts.scenario_roots](
                               analysis::Analyzer& a) {
                               for (const std::string& root : roots) {
                                   a.scan_scenario_assembly(root);
                               }
                           });
    }
    if (!opts.conc_roots.empty()) {
        stages.push_back("conc");
        add_analysis_stage(
            g, "conc", sup + ";roots=" + join(opts.conc_roots),
            /*cacheable=*/false, suppressions,
            [roots = opts.conc_roots](analysis::Analyzer& a) {
                std::vector<std::filesystem::path> paths{roots.begin(),
                                                         roots.end()};
                a.scan_concurrency(paths);
            });
    }

    Pass merge;
    merge.name = "analyze:merge";
    for (const std::string& stage : stages) {
        merge.inputs.push_back("analysis/" + stage);
    }
    merge.outputs = {"analysis/report", "analysis/sarif"};
    merge.run = [stages](PassContext& ctx) {
        analysis::AnalysisReport report;
        for (const std::string& stage : stages) {
            merge_findings(report,
                           read_findings(ctx.input("analysis/" + stage)
                                             .payload));
        }
        std::ostringstream json;
        report.write_json(json);
        std::ostringstream sarif;
        analysis::write_sarif(report, sarif);
        ctx.emit("analysis/report", Artifact{"report-json", json.str()});
        ctx.emit("analysis/sarif", Artifact{"sarif", sarif.str()});
    };
    g.add(std::move(merge));
}

// ---- ward campaigns ---------------------------------------------------

std::string ward_config_to_text(const ward::WardConfig& cfg) {
    std::ostringstream os;
    os << "seed=" << cfg.seed << " patients=" << cfg.patients
       << " jobs=" << cfg.jobs << " shards=" << cfg.shards
       << " mix=" << to_string(cfg.mix)
       << " intensity=" << cfg.fault_intensity;
    return os.str();
}

namespace {

[[noreturn]] void bad_ward_config(const std::string& what) {
    throw ward::WardConfigError{"ward config: " + what};
}

std::uint64_t parse_ward_u64(std::string_view key, std::string_view v) {
    std::uint64_t out = 0;
    const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc{} || p != v.data() + v.size()) {
        bad_ward_config("bad " + std::string{key} + " '" + std::string{v} +
                        "'");
    }
    return out;
}

double parse_ward_double(std::string_view key, std::string_view v) {
    const std::string s{v};
    char* end = nullptr;
    const double out = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size() || s.empty()) {
        bad_ward_config("bad " + std::string{key} + " '" + s + "'");
    }
    return out;
}

}  // namespace

ward::WardConfig parse_ward_config(std::string_view text) {
    ward::WardConfig cfg;
    std::size_t pos = 0;
    while (pos < text.size()) {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\n')) {
            ++pos;
        }
        if (pos >= text.size()) break;
        std::size_t end = text.find_first_of(" \n", pos);
        if (end == std::string_view::npos) end = text.size();
        const std::string_view token = text.substr(pos, end - pos);
        pos = end;

        const std::size_t eq = token.find('=');
        if (eq == std::string_view::npos) {
            bad_ward_config("expected key=value, got '" + std::string{token} +
                            "'");
        }
        const std::string_view key = token.substr(0, eq);
        const std::string_view value = token.substr(eq + 1);
        if (key == "seed") {
            cfg.seed = parse_ward_u64(key, value);
        } else if (key == "patients") {
            cfg.patients =
                static_cast<std::size_t>(parse_ward_u64(key, value));
        } else if (key == "jobs") {
            cfg.jobs = static_cast<unsigned>(parse_ward_u64(key, value));
        } else if (key == "shards") {
            cfg.shards = static_cast<std::size_t>(parse_ward_u64(key, value));
        } else if (key == "mix") {
            cfg.mix = ward::parse_mix(value);
        } else if (key == "intensity") {
            cfg.fault_intensity = parse_ward_double(key, value);
        } else {
            bad_ward_config("unknown key '" + std::string{key} + "'");
        }
    }
    return cfg;
}

void add_ward_pass(PipelineGraph& g, const std::string& id,
                   const ward::WardConfig& cfg) {
    cfg.validate();
    const std::string config_name = "ward/" + id + "/config";
    g.provide(config_name,
              Artifact{"ward-config", ward_config_to_text(cfg) + "\n"});

    Pass p;
    p.name = "ward:" + id;
    p.inputs = {config_name};
    p.outputs = {"ward/" + id + "/report", "ward/" + id + "/fingerprint"};
    p.run = [id, config_name](PassContext& ctx) {
        const ward::WardConfig run_cfg =
            parse_ward_config(ctx.input(config_name).payload);
        const ward::WardEngine engine{run_cfg};
        ward::WardReport report = engine.run();
        // The throughput fields are the report's only run-varying bytes;
        // artifacts must be byte-identical across runs, so zero them.
        report.wall_seconds = 0.0;
        report.scenarios_per_sec = 0.0;

        std::ostringstream os;
        report.write_json(os);
        ctx.emit("ward/" + id + "/report", Artifact{"ward-json", os.str()});
        ctx.emit("ward/" + id + "/fingerprint",
                 Artifact{"fingerprint", hex64(report.fingerprint) + "\n"});
    };
    g.add(std::move(p));
}

void add_ward_merge_pass(PipelineGraph& g,
                         const std::vector<std::string>& ids) {
    Pass p;
    p.name = "ward:merge";
    for (const std::string& id : ids) {
        p.inputs.push_back("ward/" + id + "/fingerprint");
    }
    p.outputs = {"ward/summary"};
    p.run = [ids](PassContext& ctx) {
        std::string out;
        std::uint64_t combined = 0xcbf29ce484222325ULL;
        for (const std::string& id : ids) {
            std::string fp = ctx.input("ward/" + id + "/fingerprint").payload;
            while (!fp.empty() && fp.back() == '\n') fp.pop_back();
            out += id;
            out += '\t';
            out += fp;
            out += '\n';
            for (const char c : fp) {
                combined ^= static_cast<unsigned char>(c);
                combined *= 1099511628211ULL;
            }
        }
        out += "combined\t" + hex64(combined) + "\n";
        ctx.emit("ward/summary", Artifact{"ward-summary", std::move(out)});
    };
    g.add(std::move(p));
}

}  // namespace mcps::pipeline
