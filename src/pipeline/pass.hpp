/// \file pass.hpp
/// \brief Pass: one named pipeline stage with declared inputs/outputs.
///
/// A pass declares, up front, the artifact names it consumes and the
/// artifact names it produces; the body is a pure function from inputs
/// (+ the canonical `params` string) to outputs. Purity is the whole
/// contract: the scheduler derives each output's cache key from
/// (pass name, params, input digests), so a body that reads anything
/// else — wall clock, global state, unhashed files — would replay stale
/// bytes from the cache. Passes that must touch the filesystem (source
/// scans) fold a description of what they read into `params`.

#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "artifact.hpp"

namespace mcps::pipeline {

/// Thrown on malformed graphs (duplicate outputs, unknown inputs,
/// cycles) and on pass-body failures. The message is user-facing.
class PipelineError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// The body's window onto the running pipeline: read declared inputs,
/// emit declared outputs. Anything else is out of contract.
class PassContext {
public:
    virtual ~PassContext() = default;

    /// A declared input's artifact. \throws PipelineError when \p name
    /// was not declared as an input of this pass.
    [[nodiscard]] virtual const Artifact& input(
        const std::string& name) const = 0;

    /// Produce a declared output. \throws PipelineError when \p name
    /// was not declared as an output of this pass.
    virtual void emit(const std::string& name, Artifact artifact) = 0;
};

/// One registered pass.
struct Pass {
    /// Unique pass name ("run:pca", "analyze:models", "trace:pca").
    std::string name;
    /// Canonical parameter string, hashed into every output key. Two
    /// passes with the same name+params+inputs must produce the same
    /// bytes.
    std::string params;
    /// Artifact names consumed (each must be a source artifact or
    /// another pass's output). Declaration order is significant: it
    /// fixes the key derivation.
    std::vector<std::string> inputs;
    /// Artifact names produced (unique across the whole graph). Every
    /// declared output must be emitted exactly once by the body.
    std::vector<std::string> outputs;
    /// The body. Must emit every declared output.
    std::function<void(PassContext&)> run;
    /// Filesystem-scanning passes set this false: their outputs depend
    /// on files the key derivation cannot see, so they execute every
    /// run (cheaply) instead of risking a stale replay. Their *outputs*
    /// still feed downstream keys, so an unchanged scan result keeps
    /// downstream passes cache-hot.
    bool cacheable = true;
};

}  // namespace mcps::pipeline
