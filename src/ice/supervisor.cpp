#include "supervisor.hpp"

#include <algorithm>

namespace mcps::ice {

using mcps::sim::SimTime;

Supervisor::Supervisor(devices::DeviceContext ctx, std::string name,
                       DeviceRegistry& registry, SupervisorConfig cfg)
    : devices::Device{ctx, std::move(name), devices::DeviceKind::kSupervisor},
      registry_{registry},
      cfg_{cfg} {
    if (cfg_.heartbeat_timeout <= mcps::sim::SimDuration::zero() ||
        cfg_.check_period <= mcps::sim::SimDuration::zero()) {
        throw std::invalid_argument("SupervisorConfig: non-positive durations");
    }
    add_capability("app-hosting");
}

void Supervisor::on_start() {
    hb_sub_ = bus().subscribe(name(), "heartbeat/*",
                              [this](const mcps::net::Message& m) {
                                  on_heartbeat(m);
                              });
    status_sub_ = bus().subscribe(name(), "status/*",
                                  [this](const mcps::net::Message& m) {
                                      on_status(m);
                                  });
    check_handle_ = sim().schedule_periodic(cfg_.check_period,
                                            [this] { check_liveness(); });
}

void Supervisor::on_stop() {
    check_handle_.cancel();
    bus().unsubscribe(hb_sub_);
    bus().unsubscribe(status_sub_);
    // Stop remaining apps in reverse deployment order.
    for (auto it = deployments_.rbegin(); it != deployments_.rend(); ++it) {
        it->app->on_app_stop();
    }
    deployments_.clear();
    liveness_.clear();
}

DeployResult Supervisor::deploy(VmdApp& app) {
    DeployResult result;
    if (!running()) {
        result.error = "supervisor not running";
        return result;
    }
    if (is_deployed(app)) {
        result.error = "app '" + app.name() + "' already deployed";
        return result;
    }
    const SimTime t0 = sim().now();

    std::string missing;
    auto resolved = registry_.resolve(app.requirements(), missing);
    if (resolved.empty() && !app.requirements().empty()) {
        result.error = "unsatisfied requirement: " + missing;
        trace().mark(sim().now(), "deploy_fail/" + app.name());
        if (auto* log = events()) {
            log->emit(mcps::obs::EventKind::kSupervisorState, sim().now(),
                      name(), "deploy_fail/" + app.name());
        }
        return result;
    }

    app.bind(resolved);
    Deployment dep{&app, {}};
    for (const auto& d : resolved) {
        dep.devices.push_back(d.name);
        watch(d.name);
        result.bound_devices.push_back(d.name);
    }
    deployments_.push_back(std::move(dep));
    app.on_app_start();

    result.ok = true;
    result.assembly_time = sim().now() - t0;
    trace().mark(sim().now(), "deploy/" + app.name());
    if (auto* log = events()) {
        log->emit(mcps::obs::EventKind::kSupervisorState, sim().now(), name(),
                  "deploy/" + app.name(),
                  static_cast<double>(result.bound_devices.size()));
    }
    publish_status("deployed", app.name());
    return result;
}

bool Supervisor::undeploy(VmdApp& app) {
    const auto it = std::find_if(
        deployments_.begin(), deployments_.end(),
        [&](const Deployment& d) { return d.app == &app; });
    if (it == deployments_.end()) return false;
    app.on_app_stop();
    deployments_.erase(it);
    unwatch_unused();
    if (auto* log = events()) {
        log->emit(mcps::obs::EventKind::kSupervisorState, sim().now(), name(),
                  "undeploy/" + app.name());
    }
    publish_status("undeployed", app.name());
    return true;
}

bool Supervisor::is_deployed(const VmdApp& app) const {
    return std::any_of(deployments_.begin(), deployments_.end(),
                       [&](const Deployment& d) { return d.app == &app; });
}

const LivenessInfo* Supervisor::liveness(const std::string& device) const {
    auto it = liveness_.find(device);
    return it == liveness_.end() ? nullptr : &it->second;
}

void Supervisor::watch(const std::string& device) {
    // Starting fresh: assume alive as of now; the timeout will catch a
    // device that never heartbeats at all.
    auto [it, inserted] = liveness_.try_emplace(device);
    if (inserted) {
        it->second.last_heartbeat = sim().now();
        it->second.lost = false;
    }
}

void Supervisor::unwatch_unused() {
    for (auto it = liveness_.begin(); it != liveness_.end();) {
        const std::string& dev = it->first;
        const bool used = std::any_of(
            deployments_.begin(), deployments_.end(), [&](const Deployment& d) {
                return std::find(d.devices.begin(), d.devices.end(), dev) !=
                       d.devices.end();
            });
        it = used ? std::next(it) : liveness_.erase(it);
    }
}

void Supervisor::on_heartbeat(const mcps::net::Message& m) {
    // Topic is "heartbeat/<device>".
    const auto pos = m.topic.find('/');
    if (pos == std::string::npos) return;
    const std::string device = m.topic.substr(pos + 1);
    auto it = liveness_.find(device);
    if (it == liveness_.end()) return;
    it->second.last_heartbeat = sim().now();
    if (it->second.lost) {
        it->second.lost = false;
        trace().mark(sim().now(), "device_recovered/" + device);
        if (auto* log = events()) {
            log->emit(mcps::obs::EventKind::kSupervisorState, sim().now(),
                      name(), "device_recovered/" + device);
        }
        for (const auto& dep : deployments_) {
            if (std::find(dep.devices.begin(), dep.devices.end(), device) !=
                dep.devices.end()) {
                dep.app->on_device_recovered(device);
            }
        }
    }
}

void Supervisor::on_status(const mcps::net::Message& m) {
    const auto* st = mcps::net::payload_as<mcps::net::StatusPayload>(m);
    if (!st || st->state != "offline") return;
    const auto pos = m.topic.find('/');
    if (pos == std::string::npos) return;
    const std::string device = m.topic.substr(pos + 1);
    auto it = liveness_.find(device);
    if (it == liveness_.end() || it->second.lost) return;
    // Explicit offline: immediate loss, no need to wait for the timeout.
    mark_lost(device, it->second);
}

void Supervisor::mark_lost(const std::string& device, LivenessInfo& info) {
    info.lost = true;
    ++lost_events_;
    trace().mark(sim().now(), "device_lost/" + device);
    if (auto* log = events()) {
        log->emit(mcps::obs::EventKind::kSupervisorState, sim().now(), name(),
                  "device_lost/" + device,
                  static_cast<double>(lost_events_));
    }
    publish("alarm/" + name(),
            mcps::net::StatusPayload{"device-lost", device});
    for (const auto& dep : deployments_) {
        if (std::find(dep.devices.begin(), dep.devices.end(), device) !=
            dep.devices.end()) {
            dep.app->on_device_lost(device);
        }
    }
}

void Supervisor::check_liveness() {
    const SimTime now = sim().now();
    for (auto& [device, info] : liveness_) {
        if (info.lost) continue;
        if (now - info.last_heartbeat <= cfg_.heartbeat_timeout) continue;
        mark_lost(device, info);
    }
}

}  // namespace mcps::ice
