/// \file app.hpp
/// \brief Virtual Medical Device (VMD) application interface.
///
/// In the ICE architecture a clinical scenario is *an app*: a piece of
/// supervisory software that declares which devices it needs, gets bound
/// to concrete instances by the supervisor, and then coordinates them
/// over the bus. The PCA interlock and the X-ray/ventilator sync in
/// src/core are the two flagship implementations.

#pragma once

#include <string>
#include <vector>

#include "registry.hpp"

namespace mcps::ice {

/// Base class for VMD apps. Lifecycle, driven by the Supervisor:
///
///   requirements() -> resolve against registry -> bind(devices)
///   -> on_app_start() -> [running; device-lost callbacks] -> on_app_stop()
class VmdApp {
public:
    explicit VmdApp(std::string name) : name_{std::move(name)} {}
    virtual ~VmdApp() = default;

    VmdApp(const VmdApp&) = delete;
    VmdApp& operator=(const VmdApp&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Device slots this app needs, in binding order.
    [[nodiscard]] virtual std::vector<Requirement> requirements() const = 0;

    /// Receive the resolved devices (same order as requirements()).
    /// Called exactly once before on_app_start().
    virtual void bind(const std::vector<DeviceDescriptor>& devices) = 0;

    /// Begin operation (set up subscriptions, periodic logic).
    virtual void on_app_start() = 0;
    /// Cease operation (tear down everything started in on_app_start()).
    virtual void on_app_stop() = 0;

    /// A bound device stopped heartbeating or reported offline. Apps
    /// implement their fail-safe reaction here (e.g. the PCA interlock
    /// stops the pump when it loses the oximeter).
    virtual void on_device_lost(const std::string& device_name) {
        (void)device_name;
    }
    /// A lost device resumed heartbeating.
    virtual void on_device_recovered(const std::string& device_name) {
        (void)device_name;
    }

private:
    std::string name_;
};

}  // namespace mcps::ice
