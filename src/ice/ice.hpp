/// \file ice.hpp
/// \brief Umbrella header for the mcps_ice middleware library.

#pragma once

#include "app.hpp"         // IWYU pragma: export
#include "assembly.hpp"    // IWYU pragma: export
#include "registry.hpp"    // IWYU pragma: export
#include "supervisor.hpp"  // IWYU pragma: export
