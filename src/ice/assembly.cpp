#include "assembly.hpp"

#include <algorithm>
#include <set>

namespace mcps::ice {

std::size_t AssemblyReport::redundant_slots() const {
    std::size_t n = 0;
    for (const auto& s : slots) {
        if (s.chosen && !s.alternatives.empty()) ++n;
    }
    return n;
}

AssemblyReport check_assembly(const VmdApp& app,
                              const DeviceRegistry& registry) {
    AssemblyReport report;
    report.app_name = app.name();
    const auto reqs = app.requirements();

    std::set<std::string> used;
    bool all_filled = true;
    for (const auto& req : reqs) {
        SlotReport slot;
        slot.requirement = req;
        // Same greedy order as DeviceRegistry::resolve: first unused
        // matching device wins; the rest are alternatives.
        for (const auto& d : registry.match(req)) {
            if (used.contains(d.name)) continue;
            if (!slot.chosen) {
                slot.chosen = d;
                used.insert(d.name);
            } else {
                slot.alternatives.push_back(d.name);
            }
        }
        if (!slot.chosen) {
            all_filled = false;
            report.warnings.push_back("slot '" + req.label +
                                      "' cannot be filled");
        } else {
            if (slot.alternatives.empty()) {
                report.warnings.push_back(
                    "slot '" + req.label + "' has no redundancy (single " +
                    "point of failure: " + slot.chosen->name + ")");
            }
            if (slot.chosen->device && !slot.chosen->device->running()) {
                report.warnings.push_back("device '" + slot.chosen->name +
                                          "' is registered but not running");
            }
        }
        report.slots.push_back(std::move(slot));
    }
    report.satisfiable = all_filled;
    return report;
}

assurance::AssuranceCase build_assembly_case(const AssemblyReport& report) {
    using assurance::AssuranceCase;
    using assurance::EvidenceStatus;

    AssuranceCase ac{"Assembly certification: " + report.app_name};
    ac.add_goal("G-asm", "The assembled configuration for '" +
                             report.app_name + "' is deployable");
    ac.add_strategy("S-slots", "Argue over each device requirement slot");
    ac.link("G-asm", "S-slots");

    std::size_t idx = 0;
    for (const auto& slot : report.slots) {
        const std::string suffix = std::to_string(idx++);
        const std::string label = slot.requirement.label.empty()
                                      ? std::string{devices::to_string(
                                            slot.requirement.kind)}
                                      : slot.requirement.label;
        const std::string goal_id = "G-slot" + suffix;
        const std::string sol_id = "Sn-slot" + suffix;
        ac.add_goal(goal_id, "Slot '" + label +
                                 "' is filled by a suitable certified device");
        ac.link("S-slots", goal_id);
        if (slot.chosen) {
            ac.add_solution(sol_id,
                            "Registry match: " + slot.chosen->name,
                            "registry/" + slot.chosen->name,
                            EvidenceStatus::kPassed);
        } else {
            ac.add_solution(sol_id, "No matching device available", "",
                            EvidenceStatus::kFailed);
        }
        ac.link(goal_id, sol_id);
    }

    std::size_t widx = 0;
    for (const auto& w : report.warnings) {
        const std::string aid = "A-warn" + std::to_string(widx++);
        ac.add_assumption(aid, w + " — accepted by the deploying clinician");
        ac.link("G-asm", aid);
    }
    return ac;
}

}  // namespace mcps::ice
