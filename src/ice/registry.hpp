/// \file registry.hpp
/// \brief Device registry for on-demand MCPS assembly.
///
/// The paper's interoperability vision (MD PnP / ICE, ASTM F2761) is
/// that a clinical system is *assembled at the bedside* from whatever
/// certified devices are present. The registry is the inventory the ICE
/// supervisor consults: devices register with their kind and capability
/// tags, and apps express requirements that are matched against it.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "devices/device.hpp"

namespace mcps::ice {

/// Registry entry describing one available device.
struct DeviceDescriptor {
    std::string name;
    devices::DeviceKind kind;
    std::vector<std::string> capabilities;
    devices::Device* device = nullptr;  ///< non-owning
};

/// A requirement one app slot must satisfy.
struct Requirement {
    devices::DeviceKind kind;
    std::vector<std::string> capabilities;  ///< all must be present
    std::string label;  ///< slot name for diagnostics, e.g. "oximeter"
};

class DeviceRegistry {
public:
    /// Register a device. \throws std::invalid_argument on duplicate name.
    void add(devices::Device& device);
    /// Remove by name; returns false if absent.
    bool remove(const std::string& name);

    [[nodiscard]] const DeviceDescriptor* find(const std::string& name) const;
    [[nodiscard]] std::vector<DeviceDescriptor> all() const;
    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

    /// All devices of a kind carrying every listed capability.
    [[nodiscard]] std::vector<DeviceDescriptor> match(
        const Requirement& req) const;

    /// Greedy assignment of one distinct device per requirement.
    /// On success, result.size() == reqs.size() (ordered as given).
    /// On failure returns an empty vector and sets \p missing to the
    /// label of the first unsatisfiable requirement.
    [[nodiscard]] std::vector<DeviceDescriptor> resolve(
        const std::vector<Requirement>& reqs, std::string& missing) const;

private:
    [[nodiscard]] static bool satisfies(const DeviceDescriptor& d,
                                        const Requirement& r);
    std::map<std::string, DeviceDescriptor> entries_;
};

}  // namespace mcps::ice
