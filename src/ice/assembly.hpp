/// \file assembly.hpp
/// \brief Assembly-time certification of an on-demand MCPS.
///
/// The DAC'10 certification challenge in one sentence: a virtual medical
/// device is assembled at the bedside, so its safety argument must be
/// (re-)established *at assembly time*, not at manufacture time. This
/// module produces that artifact: given an app and the live registry it
/// computes an AssemblyReport — which devices satisfy which requirement
/// slots, what redundancy exists, what is missing — and renders it as a
/// GSN assurance case whose audit() answers "may this configuration be
/// deployed?". Re-run after any configuration change, exactly as the
/// re-certification loop prescribes.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "app.hpp"
#include "assurance/gsn.hpp"
#include "registry.hpp"

namespace mcps::ice {

/// One requirement slot's resolution.
struct SlotReport {
    Requirement requirement;
    /// The device greedily chosen for this slot (nullopt: unsatisfied).
    std::optional<DeviceDescriptor> chosen;
    /// Names of OTHER registry devices that could also fill the slot
    /// (redundancy; excludes devices consumed by earlier slots).
    std::vector<std::string> alternatives;
};

/// The assembly-time certification artifact.
struct AssemblyReport {
    std::string app_name;
    std::vector<SlotReport> slots;
    /// Non-fatal concerns: single-point-of-failure slots (no
    /// alternative), devices that are registered but not running, ...
    std::vector<std::string> warnings;
    bool satisfiable = false;

    /// Count of slots with at least one alternative besides the chosen
    /// device.
    [[nodiscard]] std::size_t redundant_slots() const;
};

/// Evaluate \p app's requirements against \p registry without deploying
/// anything (pure analysis; greedy assignment identical to
/// DeviceRegistry::resolve so the report matches what deploy() will do).
[[nodiscard]] AssemblyReport check_assembly(const VmdApp& app,
                                            const DeviceRegistry& registry);

/// Render the report as a GSN case:
///   G-asm "configuration is deployable"
///     S-slots "argue per requirement slot"
///       G-slot<i> "slot X is filled by a suitable device"
///         Sn-slot<i> evidence: the chosen descriptor (passed iff filled)
/// Warnings become assumptions. audit().certifiable answers the deploy
/// question; re-run after any configuration change (re-certification).
[[nodiscard]] assurance::AssuranceCase build_assembly_case(
    const AssemblyReport& report);

}  // namespace mcps::ice
