/// \file supervisor.hpp
/// \brief ICE supervisor: deploys VMD apps and monitors device liveness.
///
/// The supervisor is the trusted coordinator of the on-demand MCPS: it
/// resolves app requirements against the registry (the "assembly at the
/// bedside"), runs the apps, and watches every bound device's heartbeat.
/// Heartbeat loss triggers the app's fail-safe callback — the mechanism
/// by which "network died" becomes "pump stopped" rather than "patient
/// overdosed silently".

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app.hpp"
#include "devices/device.hpp"
#include "registry.hpp"

namespace mcps::ice {

struct SupervisorConfig {
    /// A device is declared lost when no heartbeat arrives for this long.
    mcps::sim::SimDuration heartbeat_timeout = mcps::sim::SimDuration::seconds(6);
    /// How often liveness is evaluated.
    mcps::sim::SimDuration check_period = mcps::sim::SimDuration::seconds(1);
};

/// Outcome of a deployment attempt.
struct DeployResult {
    bool ok = false;
    std::string error;
    std::vector<std::string> bound_devices;
    /// Simulated time the assembly (resolve + bind + start) took.
    mcps::sim::SimDuration assembly_time;
};

/// Liveness bookkeeping exposed for tests/benches.
struct LivenessInfo {
    mcps::sim::SimTime last_heartbeat;
    bool lost = false;
};

class Supervisor : public devices::Device {
public:
    Supervisor(devices::DeviceContext ctx, std::string name,
               DeviceRegistry& registry, SupervisorConfig cfg = {});

    /// Resolve, bind and start an app. The app must outlive the
    /// supervisor or be undeployed first.
    DeployResult deploy(VmdApp& app);

    /// Stop an app and release its devices from liveness monitoring.
    /// Returns false if the app is not deployed.
    bool undeploy(VmdApp& app);

    [[nodiscard]] bool is_deployed(const VmdApp& app) const;
    [[nodiscard]] std::size_t deployed_count() const noexcept {
        return deployments_.size();
    }

    /// Liveness view of a monitored device (nullptr if unmonitored).
    [[nodiscard]] const LivenessInfo* liveness(const std::string& device) const;

    /// Number of device-lost events raised so far.
    [[nodiscard]] std::uint64_t lost_events() const noexcept {
        return lost_events_;
    }

protected:
    void on_start() override;
    void on_stop() override;

private:
    struct Deployment {
        VmdApp* app;
        std::vector<std::string> devices;
    };

    void watch(const std::string& device);
    void mark_lost(const std::string& device, LivenessInfo& info);
    void unwatch_unused();
    void check_liveness();
    void on_heartbeat(const mcps::net::Message& m);
    void on_status(const mcps::net::Message& m);

    DeviceRegistry& registry_;
    SupervisorConfig cfg_;
    std::vector<Deployment> deployments_;
    std::map<std::string, LivenessInfo> liveness_;
    std::uint64_t lost_events_ = 0;
    mcps::sim::EventHandle check_handle_;
    mcps::net::SubscriptionId hb_sub_;
    mcps::net::SubscriptionId status_sub_;
};

}  // namespace mcps::ice
