#include "registry.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace mcps::ice {

void DeviceRegistry::add(devices::Device& device) {
    const auto& name = device.name();
    if (entries_.contains(name)) {
        throw std::invalid_argument("DeviceRegistry: duplicate device name '" +
                                    name + "'");
    }
    entries_.emplace(name, DeviceDescriptor{name, device.kind(),
                                            device.capabilities(), &device});
}

bool DeviceRegistry::remove(const std::string& name) {
    return entries_.erase(name) > 0;
}

const DeviceDescriptor* DeviceRegistry::find(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : &it->second;
}

std::vector<DeviceDescriptor> DeviceRegistry::all() const {
    std::vector<DeviceDescriptor> out;
    out.reserve(entries_.size());
    for (const auto& [_, d] : entries_) out.push_back(d);
    return out;
}

bool DeviceRegistry::satisfies(const DeviceDescriptor& d, const Requirement& r) {
    if (d.kind != r.kind) return false;
    return std::all_of(r.capabilities.begin(), r.capabilities.end(),
                       [&](const std::string& cap) {
                           return std::find(d.capabilities.begin(),
                                            d.capabilities.end(),
                                            cap) != d.capabilities.end();
                       });
}

std::vector<DeviceDescriptor> DeviceRegistry::match(
    const Requirement& req) const {
    std::vector<DeviceDescriptor> out;
    for (const auto& [_, d] : entries_) {
        if (satisfies(d, req)) out.push_back(d);
    }
    return out;
}

std::vector<DeviceDescriptor> DeviceRegistry::resolve(
    const std::vector<Requirement>& reqs, std::string& missing) const {
    std::vector<DeviceDescriptor> chosen;
    std::set<std::string> used;
    for (const auto& r : reqs) {
        bool found = false;
        for (const auto& [_, d] : entries_) {
            if (used.contains(d.name)) continue;
            if (!satisfies(d, r)) continue;
            chosen.push_back(d);
            used.insert(d.name);
            found = true;
            break;
        }
        if (!found) {
            missing = r.label.empty()
                          ? std::string{devices::to_string(r.kind)}
                          : r.label;
            return {};
        }
    }
    return chosen;
}

}  // namespace mcps::ice
