/// \file hospital_config.hpp
/// \brief Configuration for the hospital-scale scenario family.
///
/// One hospital simulation holds thousands of concurrent PCA patients
/// sharing finite infrastructure: each ward has ONE ICE bus (fixed
/// per-tick message service capacity), one supervisor, and a finite
/// nurse pool. The DAC'10 framing — and the resource-management surveys
/// in PAPERS.md — motivate modeling exactly this contention: an alarm
/// storm that saturates the bus and exhausts the nurses is a system
/// hazard no per-patient analysis can see.
///
/// Sharding is hierarchical and purely arithmetic: patients are split
/// into contiguous ward ranges (remainders spread over leading wards,
/// same rule as ward::shard_range), wards into the hospital. Wards are
/// fully independent — each has its own bus, nurses, and per-patient
/// RNG streams derived from (seed, patient index) — so the engine may
/// execute wards on any number of threads and still produce
/// byte-identical reports.

#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace mcps::hospital {

class HospitalConfigError : public std::invalid_argument {
public:
    using std::invalid_argument::invalid_argument;
};

/// Where the SpO2 safety interlock runs.
enum class InterlockPlacement : std::uint8_t {
    kOff,      ///< no automatic pump stop (hazard baseline)
    kLocal,    ///< pump-local: reads the bedside oximeter directly
    kCentral,  ///< supervisor+nurse path: alarm over the shared bus
};

/// Cohort composition (which archetypes the population samples from).
enum class CohortMix : std::uint8_t {
    kTypical,   ///< all typical adults
    kMixed,     ///< realistic ward mix (mostly typical, some high-risk)
    kHighRisk,  ///< post-op/sleep-apnea heavy mix
};

[[nodiscard]] std::string_view to_string(InterlockPlacement p) noexcept;
[[nodiscard]] std::string_view to_string(CohortMix m) noexcept;

struct HospitalConfig {
    std::uint64_t seed = 42;
    mcps::sim::SimDuration duration = mcps::sim::SimDuration::minutes(60);
    /// Physiology/control step. Every per-tick rate below is relative
    /// to this.
    double tick_s = 1.0;

    std::size_t patients = 2000;
    std::size_t wards = 20;
    std::size_t nurses_per_ward = 4;
    /// Vitals/alert messages one ward ICE bus services per tick.
    std::size_t bus_capacity_per_tick = 64;
    /// Bounded bus buffer per ward; arrivals beyond it are dropped (and
    /// counted). Keeps memory flat under sustained overload.
    std::size_t bus_queue_limit = 1024;

    CohortMix mix = CohortMix::kMixed;
    InterlockPlacement interlock = InterlockPlacement::kLocal;

    /// SpO2 percent below which monitors alert and interlocks act.
    double spo2_alarm_threshold = 90.0;
    /// Safety invariant: a pump still delivering this long after its
    /// patient's SpO2 dropped (and stayed) below the threshold is a
    /// deadline violation.
    double interlock_deadline_s = 60.0;
    /// Periodic vitals publish cadence per patient (staggered by index).
    double monitor_period_s = 2.0;
    /// Nurse occupancy per attended alarm.
    double nurse_service_s = 120.0;

    /// Mean PCA demand presses per patient-hour (Poisson per tick).
    double demand_per_hour = 4.0;
    double bolus_mg = 1.0;
    double infusion_mg_per_hour = 0.5;
    double lockout_s = 360.0;

    /// Synchronized overdose disturbance ("PCA by proxy at scale"):
    /// at storm_at_s, this fraction of patients receives storm_bolus_mg
    /// bypassing the lockout. 0 disables.
    double storm_fraction = 0.0;
    double storm_bolus_mg = 3.0;
    double storm_at_s = 600.0;

    /// Execution width only: wards per worker thread. MUST NOT affect
    /// any report field (the jobs-invariance suite pins this).
    unsigned jobs = 1;

    /// \throws HospitalConfigError on an inconsistent configuration.
    void validate() const;

    /// Contiguous patient range [first, last) of ward \p w. Same
    /// remainder-spreading arithmetic as ward::shard_range; pure.
    [[nodiscard]] std::pair<std::size_t, std::size_t> ward_range(
        std::size_t w) const noexcept;

    /// Simulation tick count (>= 1).
    [[nodiscard]] std::int64_t ticks() const noexcept;
};

}  // namespace mcps::hospital
