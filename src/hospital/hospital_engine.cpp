#include "hospital_engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "physio/patient_batch.hpp"
#include "physio/population.hpp"
#include "sim/guarded.hpp"
#include "sim/rng.hpp"

namespace mcps::hospital {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

constexpr std::uint64_t mix64(std::uint64_t h, std::uint64_t v) noexcept {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
}

/// Fold one (tick, patient, event-code) record into a ward digest.
constexpr std::uint64_t fold_event(std::uint64_t h, std::int64_t tick,
                                   std::size_t patient,
                                   std::uint64_t code) noexcept {
    h = mix64(h, static_cast<std::uint64_t>(tick));
    h = mix64(h, static_cast<std::uint64_t>(patient));
    return mix64(h, code);
}

physio::Archetype archetype_for(CohortMix mix, std::uint64_t seed,
                                std::size_t index) {
    if (mix == CohortMix::kTypical) return physio::Archetype::kTypicalAdult;
    char name[48];
    std::snprintf(name, sizeof name, "hospital.archetype.%llu",
                  static_cast<unsigned long long>(index));
    sim::RngStream rng{seed, name};
    const double u = rng.uniform();
    if (mix == CohortMix::kMixed) {
        if (u < 0.55) return physio::Archetype::kTypicalAdult;
        if (u < 0.70) return physio::Archetype::kOpioidSensitive;
        if (u < 0.80) return physio::Archetype::kOpioidTolerant;
        if (u < 0.92) return physio::Archetype::kElderly;
        return physio::Archetype::kHighRisk;
    }
    // kHighRisk mix: post-op floor heavy on sensitivity and reserve loss.
    if (u < 0.30) return physio::Archetype::kTypicalAdult;
    if (u < 0.55) return physio::Archetype::kOpioidSensitive;
    if (u < 0.60) return physio::Archetype::kOpioidTolerant;
    if (u < 0.80) return physio::Archetype::kElderly;
    return physio::Archetype::kHighRisk;
}

/// One queued ward-bus message (periodic vitals or threshold alert).
struct BusMsg {
    std::size_t patient;
    std::int64_t tick;    ///< enqueue tick
    double reading;       ///< SpO2 percent at capture
};

/// One raised, not-yet-attended alarm.
struct Alarm {
    std::size_t patient;
    std::int64_t tick;
};

/// Per-ward streaming aggregates, merged into the report in ward order.
struct WardResult {
    std::uint64_t patient_steps = 0;
    std::uint64_t boluses = 0;
    std::uint64_t storm_boluses = 0;
    std::uint64_t vitals_messages = 0;
    std::uint64_t alert_messages = 0;
    std::uint64_t bus_dropped = 0;
    std::uint64_t bus_saturated_ticks = 0;
    std::uint64_t max_bus_queue = 0;
    std::uint64_t alarms_raised = 0;
    std::uint64_t alarms_attended = 0;
    std::uint64_t interlock_stops = 0;
    std::uint64_t nurse_stops = 0;
    std::uint64_t rescues = 0;
    std::uint64_t deadline_violations = 0;
    std::uint64_t severe_desat_patients = 0;

    sim::RunningStats min_spo2;
    sim::RunningStats drug_mg;
    sim::Histogram spo2_floor_hist{50.0, 100.0, 50};
    sim::Histogram bus_delay_hist{0.0, 30.0, 30};
    sim::Histogram alarm_wait_hist{0.0, 600.0, 60};

    std::uint64_t fp = kFnvOffset;
};

/// Run body(w) for every ward in [0, count) across min(jobs, count)
/// threads. Wards are claimed from a shared atomic cursor: claim order
/// is racy but irrelevant — every ward writes only its own slot, so the
/// ward-order merge downstream is identical for any jobs value. The
/// first exception any ward throws is rethrown after all threads join.
void parallel_wards(std::size_t count, unsigned jobs,
                    const std::function<void(std::size_t)>& body) {
    if (jobs <= 1 || count <= 1) {
        for (std::size_t w = 0; w < count; ++w) body(w);
        return;
    }
    const unsigned workers =
        std::min<unsigned>(jobs, static_cast<unsigned>(count));
    std::atomic<std::size_t> next{0};
    std::mutex err_mu;
    std::exception_ptr first_err MCPS_GUARDED_BY(err_mu);

    auto loop = [&]() {
        for (;;) {
            const std::size_t w = next.fetch_add(1);
            if (w >= count) return;
            try {
                body(w);
            } catch (...) {
                const std::lock_guard<std::mutex> lk{err_mu};
                if (!first_err) first_err = std::current_exception();
            }
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) threads.emplace_back(loop);
    for (auto& t : threads) t.join();
    {
        const std::lock_guard<std::mutex> lk{err_mu};
        if (first_err) std::rethrow_exception(first_err);
    }
}

}  // namespace

HospitalEngine::HospitalEngine(HospitalConfig cfg) : cfg_{std::move(cfg)} {
    cfg_.validate();
}

HospitalReport HospitalEngine::run() const {
    const std::size_t n = cfg_.patients;
    const std::size_t wards = cfg_.wards;
    const std::int64_t ticks = cfg_.ticks();
    const double tick_s = cfg_.tick_s;

    const auto monitor_ticks = std::max<std::int64_t>(
        1, std::llround(cfg_.monitor_period_s / tick_s));
    const auto lockout_ticks = std::max<std::int64_t>(
        0, std::llround(cfg_.lockout_s / tick_s));
    const auto service_ticks = std::max<std::int64_t>(
        1, std::llround(cfg_.nurse_service_s / tick_s));
    const std::int64_t storm_tick =
        cfg_.storm_fraction > 0.0
            ? std::clamp<std::int64_t>(std::llround(cfg_.storm_at_s / tick_s),
                                       0, ticks - 1)
            : -1;
    const double p_press = cfg_.demand_per_hour * tick_s / 3600.0;

    // ---- cohort construction (serial; every patient is a pure function
    // of (seed, index), so neither ward count nor jobs can perturb it).
    physio::PatientBatch batch;
    batch.reserve(n);
    std::vector<sim::RngStream> rngs;
    rngs.reserve(n);
    std::vector<std::uint8_t> storm_sel(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const physio::Archetype a = archetype_for(cfg_.mix, cfg_.seed, i);
        batch.add(physio::sample_patient_indexed(a, cfg_.seed, i));
        batch.set_infusion_rate(
            i, physio::InfusionRate::mg_per_hour(cfg_.infusion_mg_per_hour));
        char name[48];
        std::snprintf(name, sizeof name, "hospital.patient.%llu",
                      static_cast<unsigned long long>(i));
        rngs.emplace_back(cfg_.seed, name);
        // Storm membership is the stream's first draw whether or not a
        // storm is configured, so enabling one never shifts later draws.
        storm_sel[i] = rngs.back().bernoulli(cfg_.storm_fraction) ? 1 : 0;
    }

    // ---- per-patient control state (ward-disjoint; threads only touch
    // their own ward's contiguous range).
    std::vector<std::uint8_t> pump_running(n, 1);
    std::vector<std::uint8_t> violated(n, 0);
    std::vector<std::uint8_t> alarm_active(n, 0);
    std::vector<std::int64_t> next_bolus_ok(n, 0);
    std::vector<std::int64_t> below_since(n, -1);
    std::vector<double> last_reading(n, 0.0);
    std::vector<double> min_spo2(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        last_reading[i] = batch.spo2_raw(i);
        min_spo2[i] = batch.spo2_raw(i);
    }

    std::vector<WardResult> results(wards);

    // Wall clock measures engine throughput only; it never feeds
    // scenario state, outcomes, or fingerprints.
    // mcps-analyze: allow(SIM1): wall-clock perf metric only
    const auto t0 = std::chrono::steady_clock::now();

    parallel_wards(wards, cfg_.jobs, [&](std::size_t w) {
        const auto [first, last] = cfg_.ward_range(w);
        WardResult& R = results[w];
        R.fp = mix64(kFnvOffset, static_cast<std::uint64_t>(w) + 1);

        std::deque<BusMsg> bus;
        std::deque<Alarm> alarms;
        std::vector<std::int64_t> nurse_busy_until(cfg_.nurses_per_ward, 0);

        auto stop_pump = [&](std::size_t i) {
            pump_running[i] = 0;
            batch.set_infusion_rate(i, physio::InfusionRate::zero());
        };
        auto push_msg = [&](std::size_t i, std::int64_t t, double reading) {
            if (bus.size() < cfg_.bus_queue_limit) {
                bus.push_back(BusMsg{i, t, reading});
            } else {
                ++R.bus_dropped;
            }
        };

        for (std::int64_t t = 0; t < ticks; ++t) {
            // A. demand + storm disturbance.
            for (std::size_t i = first; i < last; ++i) {
                if (t == storm_tick && storm_sel[i] != 0) {
                    batch.bolus(i, physio::Dose::mg(cfg_.storm_bolus_mg));
                    ++R.storm_boluses;
                    R.fp = fold_event(R.fp, t, i, 1);
                }
                // One press draw per patient per tick, granted or not,
                // so the stream never depends on pump/lockout state.
                const bool press = rngs[i].bernoulli(p_press);
                if (press && pump_running[i] != 0 && t >= next_bolus_ok[i] &&
                    cfg_.bolus_mg > 0.0) {
                    batch.bolus(i, physio::Dose::mg(cfg_.bolus_mg));
                    next_bolus_ok[i] = t + lockout_ticks;
                    ++R.boluses;
                    R.fp = fold_event(R.fp, t, i, 2);
                }
            }

            // B. physiology: one SoA sweep over the ward's lanes.
            batch.step_range(first, last, tick_s);

            // C. sensing, local interlock, safety-invariant clock.
            for (std::size_t i = first; i < last; ++i) {
                const double s = batch.spo2_raw(i);
                if (s < min_spo2[i]) min_spo2[i] = s;

                const bool publish =
                    (t + static_cast<std::int64_t>(i)) % monitor_ticks == 0;
                if (publish) {
                    last_reading[i] = s;
                    push_msg(i, t, s);
                    ++R.vitals_messages;
                }
                if (s < cfg_.spo2_alarm_threshold) {
                    // Threshold alert: re-sent EVERY tick while below —
                    // the mechanism that turns a mass desaturation into
                    // a bus-flooding alarm storm.
                    push_msg(i, t, s);
                    ++R.alert_messages;
                }

                if (cfg_.interlock == InterlockPlacement::kLocal &&
                    pump_running[i] != 0 &&
                    last_reading[i] < cfg_.spo2_alarm_threshold) {
                    stop_pump(i);
                    ++R.interlock_stops;
                    R.fp = fold_event(R.fp, t, i, 3);
                }

                if (pump_running[i] != 0 && s < cfg_.spo2_alarm_threshold) {
                    if (below_since[i] < 0) {
                        below_since[i] = t;
                    } else if (violated[i] == 0 &&
                               static_cast<double>(t - below_since[i]) *
                                       tick_s >
                                   cfg_.interlock_deadline_s) {
                        violated[i] = 1;
                        ++R.deadline_violations;
                        R.fp = fold_event(R.fp, t, i, 4);
                    }
                } else {
                    below_since[i] = -1;
                }
            }

            // D. ward bus service + supervisor alarm raising.
            std::size_t served = 0;
            while (served < cfg_.bus_capacity_per_tick && !bus.empty()) {
                const BusMsg m = bus.front();
                bus.pop_front();
                ++served;
                R.bus_delay_hist.add(static_cast<double>(t - m.tick) *
                                     tick_s);
                if (m.reading < cfg_.spo2_alarm_threshold &&
                    alarm_active[m.patient] == 0) {
                    alarm_active[m.patient] = 1;
                    ++R.alarms_raised;
                    alarms.push_back(Alarm{m.patient, t});
                    R.fp = fold_event(R.fp, t, m.patient, 5);
                }
            }
            if (!bus.empty()) ++R.bus_saturated_ticks;
            R.max_bus_queue = std::max<std::uint64_t>(R.max_bus_queue,
                                                      bus.size());

            // E. nurse pool: free nurses attend alarms FIFO. With the
            // interlock off, nurses observe and chart but have no
            // closed-loop actuation authority (the hazard baseline).
            for (std::size_t nrs = 0; nrs < cfg_.nurses_per_ward; ++nrs) {
                if (nurse_busy_until[nrs] > t || alarms.empty()) continue;
                const Alarm a = alarms.front();
                alarms.pop_front();
                ++R.alarms_attended;
                R.alarm_wait_hist.add(static_cast<double>(t - a.tick) *
                                      tick_s);
                nurse_busy_until[nrs] = t + service_ticks;
                alarm_active[a.patient] = 0;
                if (cfg_.interlock != InterlockPlacement::kOff) {
                    if (pump_running[a.patient] != 0) {
                        stop_pump(a.patient);
                        ++R.nurse_stops;
                        R.fp = fold_event(R.fp, t, a.patient, 6);
                    }
                    if (batch.spo2_raw(a.patient) <
                        cfg_.spo2_alarm_threshold - 5.0) {
                        batch.give_antagonist(a.patient, 8.0, 1800.0);
                        ++R.rescues;
                        R.fp = fold_event(R.fp, t, a.patient, 7);
                    }
                }
            }
        }

        R.patient_steps +=
            static_cast<std::uint64_t>(last - first) *
            static_cast<std::uint64_t>(ticks);
        // Per-patient finals, folded in index order.
        for (std::size_t i = first; i < last; ++i) {
            R.min_spo2.add(min_spo2[i]);
            R.spo2_floor_hist.add(min_spo2[i]);
            const double mg = batch.total_delivered(i).as_mg();
            R.drug_mg.add(mg);
            if (min_spo2[i] < 80.0) ++R.severe_desat_patients;
            R.fp = mix64(R.fp, std::bit_cast<std::uint64_t>(min_spo2[i]));
            R.fp = mix64(R.fp, std::bit_cast<std::uint64_t>(mg));
        }
    });

    // mcps-analyze: allow(SIM1): wall-clock perf metric only (see above).
    const auto t1 = std::chrono::steady_clock::now();

    HospitalReport rep;
    rep.seed = cfg_.seed;
    rep.patients = n;
    rep.wards = wards;
    rep.nurses_per_ward = cfg_.nurses_per_ward;
    rep.jobs = cfg_.jobs;
    rep.duration_s = cfg_.duration.to_seconds();
    rep.mix = std::string{to_string(cfg_.mix)};
    rep.interlock = std::string{to_string(cfg_.interlock)};
    rep.ticks = ticks;

    // Canonical reduction: ward order, never execution order.
    std::uint64_t fp = mix64(kFnvOffset, cfg_.seed);
    fp = mix64(fp, n);
    fp = mix64(fp, wards);
    for (const WardResult& R : results) {
        rep.patient_steps += R.patient_steps;
        rep.boluses += R.boluses;
        rep.storm_boluses += R.storm_boluses;
        rep.vitals_messages += R.vitals_messages;
        rep.alert_messages += R.alert_messages;
        rep.bus_dropped += R.bus_dropped;
        rep.bus_saturated_ticks += R.bus_saturated_ticks;
        rep.max_bus_queue = std::max(rep.max_bus_queue, R.max_bus_queue);
        rep.alarms_raised += R.alarms_raised;
        rep.alarms_attended += R.alarms_attended;
        rep.interlock_stops += R.interlock_stops;
        rep.nurse_stops += R.nurse_stops;
        rep.rescues += R.rescues;
        rep.deadline_violations += R.deadline_violations;
        rep.severe_desat_patients += R.severe_desat_patients;
        rep.min_spo2.merge(R.min_spo2);
        rep.drug_mg.merge(R.drug_mg);
        rep.spo2_floor_hist.merge(R.spo2_floor_hist);
        rep.bus_delay_hist.merge(R.bus_delay_hist);
        rep.alarm_wait_hist.merge(R.alarm_wait_hist);
        fp = mix64(fp, R.fp);
    }
    rep.fingerprint = fp;

    // Steady-state footprint: a function of the population and ward
    // buffer bounds, NEVER of the simulated duration.
    rep.state_bytes =
        batch.state_bytes() +
        n * (3 * sizeof(std::uint8_t) + 2 * sizeof(std::int64_t) +
             2 * sizeof(double) + sizeof(sim::RngStream)) +
        wards * (cfg_.nurses_per_ward * sizeof(std::int64_t) +
                 cfg_.bus_queue_limit * sizeof(BusMsg)) +
        n * sizeof(Alarm);

    rep.wall_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    rep.steps_per_sec =
        rep.wall_seconds > 0.0
            ? static_cast<double>(rep.patient_steps) / rep.wall_seconds
            : 0.0;
    return rep;
}

void HospitalReport::print(std::ostream& os) const {
    auto row = [&os](const char* key, double v) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "  %-24s %.6g\n", key, v);
        os << buf;
    };
    os << "hospital run: " << patients << " patients / " << wards
       << " wards / " << nurses_per_ward << " nurses-per-ward (mix=" << mix
       << ", interlock=" << interlock << ", jobs=" << jobs << ")\n";
    row("ticks", static_cast<double>(ticks));
    row("patient_steps", static_cast<double>(patient_steps));
    row("boluses", static_cast<double>(boluses));
    row("storm_boluses", static_cast<double>(storm_boluses));
    row("vitals_messages", static_cast<double>(vitals_messages));
    row("alert_messages", static_cast<double>(alert_messages));
    row("bus_dropped", static_cast<double>(bus_dropped));
    row("bus_saturated_ticks", static_cast<double>(bus_saturated_ticks));
    row("max_bus_queue", static_cast<double>(max_bus_queue));
    row("alarms_raised", static_cast<double>(alarms_raised));
    row("alarms_attended", static_cast<double>(alarms_attended));
    if (alarm_wait_hist.total() > 0) {
        row("alarm_wait_p99_s", alarm_wait_hist.percentile(99.0));
    }
    row("interlock_stops", static_cast<double>(interlock_stops));
    row("nurse_stops", static_cast<double>(nurse_stops));
    row("rescues", static_cast<double>(rescues));
    row("deadline_violations", static_cast<double>(deadline_violations));
    row("severe_desat_patients",
        static_cast<double>(severe_desat_patients));
    row("min_spo2_mean", min_spo2.mean());
    row("min_spo2_min", min_spo2.min());
    row("drug_mg_mean", drug_mg.mean());
    row("state_mib", static_cast<double>(state_bytes) / (1024.0 * 1024.0));
    row("wall_seconds", wall_seconds);
    row("steps_per_sec", steps_per_sec);
}

}  // namespace mcps::hospital
