#include "hospital_config.hpp"

#include <cmath>

namespace mcps::hospital {

std::string_view to_string(InterlockPlacement p) noexcept {
    switch (p) {
        case InterlockPlacement::kOff: return "off";
        case InterlockPlacement::kLocal: return "local";
        case InterlockPlacement::kCentral: return "central";
    }
    return "?";
}

std::string_view to_string(CohortMix m) noexcept {
    switch (m) {
        case CohortMix::kTypical: return "typical";
        case CohortMix::kMixed: return "mixed";
        case CohortMix::kHighRisk: return "high-risk";
    }
    return "?";
}

void HospitalConfig::validate() const {
    auto fail = [](const std::string& what) {
        throw HospitalConfigError{"HospitalConfig: " + what};
    };
    if (patients == 0) fail("patients == 0");
    if (wards == 0) fail("wards == 0");
    if (wards > patients) fail("more wards than patients");
    if (nurses_per_ward == 0) fail("nurses_per_ward == 0");
    if (bus_capacity_per_tick == 0) fail("bus_capacity_per_tick == 0");
    if (bus_queue_limit == 0) fail("bus_queue_limit == 0");
    if (!(tick_s > 0.0) || tick_s > 10.0) fail("tick_s outside (0, 10]");
    if (duration <= mcps::sim::SimDuration::zero()) fail("duration <= 0");
    if (spo2_alarm_threshold < 50.0 || spo2_alarm_threshold >= 100.0) {
        fail("spo2_alarm_threshold outside [50, 100)");
    }
    if (!(interlock_deadline_s > 0.0)) fail("interlock_deadline_s <= 0");
    if (!(monitor_period_s > 0.0)) fail("monitor_period_s <= 0");
    if (!(nurse_service_s > 0.0)) fail("nurse_service_s <= 0");
    if (demand_per_hour < 0.0) fail("demand_per_hour < 0");
    if (bolus_mg < 0.0) fail("bolus_mg < 0");
    if (infusion_mg_per_hour < 0.0) fail("infusion_mg_per_hour < 0");
    if (lockout_s < 0.0) fail("lockout_s < 0");
    if (storm_fraction < 0.0 || storm_fraction > 1.0) {
        fail("storm_fraction outside [0, 1]");
    }
    if (storm_bolus_mg < 0.0) fail("storm_bolus_mg < 0");
    if (storm_at_s < 0.0) fail("storm_at_s < 0");
    if (jobs == 0) fail("jobs == 0");
}

std::pair<std::size_t, std::size_t> HospitalConfig::ward_range(
    std::size_t w) const noexcept {
    const std::size_t base = patients / wards;
    const std::size_t extra = patients % wards;
    const std::size_t first = w * base + std::min(w, extra);
    const std::size_t size = base + (w < extra ? 1 : 0);
    return {first, first + size};
}

std::int64_t HospitalConfig::ticks() const noexcept {
    const auto t = static_cast<std::int64_t>(
        std::llround(duration.to_seconds() / tick_s));
    return t > 0 ? t : 1;
}

}  // namespace mcps::hospital
