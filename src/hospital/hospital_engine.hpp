/// \file hospital_engine.hpp
/// \brief Hospital-scale simulation engine: thousands of patients,
/// shared ward ICE buses, finite nurse pools, streaming aggregation.
///
/// Execution model, per ward, per tick:
///
///   A. demand    : per patient, one Bernoulli press draw; a granted
///                  press boluses the pump (lockout permitting). The
///                  synchronized "storm" disturbance injects oversized
///                  boluses into a seeded patient subset at one tick.
///   B. physio    : one SoA PatientBatch::step_range over the ward's
///                  contiguous lane range.
///   C. sensing   : staggered periodic vitals publish onto the ward
///                  bus; patients below the SpO2 threshold additionally
///                  publish an alert EVERY tick (this is what makes an
///                  alarm storm flood the bus); the local interlock
///                  checks its own latest reading; the safety invariant
///                  clock (pump delivering while SpO2 sustained below
///                  threshold) advances.
///   D. bus       : the ward bus services at most bus_capacity_per_tick
///                  queued messages (bounded buffer, overflow drops are
///                  counted); the supervisor raises one alarm per
///                  patient crossing.
///   E. nurses    : free nurses attend queued alarms in FIFO order
///                  (stop the pump, antagonist rescue on deep desats)
///                  and stay busy for nurse_service_s.
///
/// Wards are fully independent, so the engine parallelizes ACROSS wards
/// only and merges per-ward aggregates in ward order: reports are
/// byte-identical for every jobs value. All aggregation is streaming
/// (RunningStats / fixed-bin Histogram / counters) — memory is O(
/// patients), never O(simulated time).

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "hospital_config.hpp"
#include "sim/stats.hpp"

namespace mcps::hospital {

/// Everything one hospital run produces. All fields except the
/// wall-clock throughput pair are deterministic functions of the config.
struct HospitalReport {
    // Config echo.
    std::uint64_t seed = 0;
    std::size_t patients = 0;
    std::size_t wards = 0;
    std::size_t nurses_per_ward = 0;
    unsigned jobs = 1;
    double duration_s = 0.0;
    std::string mix;
    std::string interlock;

    // Event counters (hospital-wide, merged in ward order).
    std::int64_t ticks = 0;
    std::uint64_t patient_steps = 0;
    std::uint64_t boluses = 0;
    std::uint64_t storm_boluses = 0;
    std::uint64_t vitals_messages = 0;
    std::uint64_t alert_messages = 0;
    std::uint64_t bus_dropped = 0;
    std::uint64_t bus_saturated_ticks = 0;
    std::uint64_t max_bus_queue = 0;
    std::uint64_t alarms_raised = 0;
    std::uint64_t alarms_attended = 0;
    std::uint64_t interlock_stops = 0;  ///< local-interlock pump stops
    std::uint64_t nurse_stops = 0;      ///< nurse-attended pump stops
    std::uint64_t rescues = 0;          ///< antagonist administrations
    std::uint64_t deadline_violations = 0;
    std::uint64_t severe_desat_patients = 0;  ///< min SpO2 < 80

    // Streaming aggregates over patients / messages / alarms.
    sim::RunningStats min_spo2;
    sim::RunningStats drug_mg;
    sim::Histogram spo2_floor_hist{50.0, 100.0, 50};
    sim::Histogram bus_delay_hist{0.0, 30.0, 30};
    sim::Histogram alarm_wait_hist{0.0, 600.0, 60};

    /// Order- and value-exact digest of the run (same contract as
    /// RunArtifacts::fingerprint).
    std::uint64_t fingerprint = 0;

    /// Steady-state engine footprint (lane arrays + per-patient control
    /// state + ward buffers), bytes. A function of the population, not
    /// of the simulated duration — the flat-memory test pins this.
    std::size_t state_bytes = 0;

    // Wall-clock throughput (NOT deterministic; excluded from outcome
    // digests and fingerprints).
    double wall_seconds = 0.0;
    double steps_per_sec = 0.0;

    /// Two-column human-readable table.
    void print(std::ostream& os) const;
};

class HospitalEngine {
public:
    /// \throws HospitalConfigError on an invalid config.
    explicit HospitalEngine(HospitalConfig cfg);

    /// Run the full simulation. Deterministic: identical configs yield
    /// identical reports (modulo the wall-clock fields) for any jobs.
    [[nodiscard]] HospitalReport run() const;

    [[nodiscard]] const HospitalConfig& config() const noexcept {
        return cfg_;
    }

private:
    HospitalConfig cfg_;
};

}  // namespace mcps::hospital
