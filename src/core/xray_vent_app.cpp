#include "xray_vent_app.hpp"

#include <stdexcept>

namespace mcps::core {

using mcps::sim::SimDuration;
using mcps::sim::SimTime;

std::string_view to_string(SyncPhase p) noexcept {
    switch (p) {
        case SyncPhase::kIdle: return "idle";
        case SyncPhase::kPausing: return "pausing";
        case SyncPhase::kExposing: return "exposing";
        case SyncPhase::kResuming: return "resuming";
        case SyncPhase::kDone: return "done";
    }
    return "unknown";
}

XrayVentSync::XrayVentSync(devices::DeviceContext ctx, std::string name,
                           XrayVentConfig cfg)
    : ice::VmdApp{std::move(name)}, ctx_{ctx}, cfg_{cfg} {
    if (cfg_.retry_period <= SimDuration::zero() || cfg_.max_retries < 0) {
        throw std::invalid_argument("XrayVentConfig: bad retry settings");
    }
}

std::vector<ice::Requirement> XrayVentSync::requirements() const {
    return {
        {devices::DeviceKind::kVentilator, {"remote-pause"}, "ventilator"},
        {devices::DeviceKind::kXRay, {"imaging"}, "x-ray"},
    };
}

void XrayVentSync::bind(const std::vector<ice::DeviceDescriptor>& devices) {
    if (devices.size() != 2) {
        throw std::invalid_argument("XrayVentSync::bind: expected 2 devices");
    }
    vent_name_ = devices[0].name;
    xray_name_ = devices[1].name;
}

void XrayVentSync::on_app_start() {
    if (vent_name_.empty()) {
        throw std::logic_error("XrayVentSync: on_app_start before bind");
    }
    started_ = true;
    subs_.push_back(ctx_.bus.subscribe(
        name(), "ack/" + vent_name_,
        [this](const mcps::net::Message& m) { on_ack(m); }));
    subs_.push_back(ctx_.bus.subscribe(
        name(), "ack/" + xray_name_,
        [this](const mcps::net::Message& m) { on_ack(m); }));
    subs_.push_back(ctx_.bus.subscribe(
        name(), "image/" + xray_name_,
        [this](const mcps::net::Message& m) { on_image(m); }));
}

void XrayVentSync::on_app_stop() {
    started_ = false;
    retry_handle_.cancel();
    for (auto s : subs_) ctx_.bus.unsubscribe(s);
    subs_.clear();
    phase_ = SyncPhase::kIdle;
}

void XrayVentSync::advance_to(SyncPhase p) {
    phase_ = p;
    phase_entered_ = ctx_.sim.now();
    ctx_.trace.mark(ctx_.sim.now(),
                    "xray_sync/" + name() + "/" + std::string{to_string(p)});
}

void XrayVentSync::send_command(const std::string& device,
                                const std::string& action,
                                std::map<std::string, double> args) {
    mcps::net::CommandPayload cmd;
    cmd.action = action;
    cmd.args = std::move(args);
    cmd.command_seq = pending_seq_;
    ctx_.bus.publish(name(), "cmd/" + device, cmd);
}

bool XrayVentSync::request_exposure() {
    if (!started_ || phase_ != SyncPhase::kIdle) return false;
    current_ = SyncOutcome{};
    retries_ = 0;
    advance_to(SyncPhase::kPausing);
    pending_seq_ = next_seq_++;
    pause_started_ = ctx_.sim.now();
    // The ventilator clamps the window to its own max_pause, and its
    // auto-resume remains the backstop if we die mid-procedure.
    send_command(vent_name_, "pause",
                 {{"duration_s", cfg_.pause_window.to_seconds()}});
    retry_handle_.cancel();
    retry_handle_ = ctx_.sim.schedule_periodic(cfg_.retry_period,
                                               [this] { on_retry_timer(); });
    return true;
}

void XrayVentSync::on_retry_timer() {
    if (phase_ == SyncPhase::kIdle || phase_ == SyncPhase::kDone) {
        retry_handle_.cancel();
        return;
    }
    // Once the x-ray has ACCEPTED the expose command, the sequence
    // legitimately takes prep+exposure time: only count a retry when the
    // image is actually overdue. An UNacked expose may have been lost
    // and is retried at the normal cadence.
    if (phase_ == SyncPhase::kExposing && expose_acked_ &&
        ctx_.sim.now() - phase_entered_ < cfg_.image_timeout) {
        return;
    }
    if (++retries_ > cfg_.max_retries) {
        // Give up; command a resume best-effort and record the abort.
        ctx_.trace.mark(ctx_.sim.now(), "xray_sync/" + name() + "/abort");
        pending_seq_ = next_seq_++;
        send_command(vent_name_, "resume");
        finish(/*completed=*/false, /*sharp=*/false);
        return;
    }
    ++current_.command_retries;
    switch (phase_) {
        case SyncPhase::kPausing:
            send_command(vent_name_, "pause",
                         {{"duration_s", cfg_.pause_window.to_seconds()}});
            break;
        case SyncPhase::kExposing:
            send_command(xray_name_, "expose");
            break;
        case SyncPhase::kResuming:
            send_command(vent_name_, "resume");
            break;
        default:
            break;
    }
}

void XrayVentSync::on_ack(const mcps::net::Message& m) {
    const auto* ack = mcps::net::payload_as<mcps::net::AckPayload>(m);
    if (!ack || ack->command_seq != pending_seq_) return;

    switch (phase_) {
        case SyncPhase::kPausing:
            if (!ack->success) return;  // keep retrying
            retries_ = 0;
            expose_acked_ = false;
            advance_to(SyncPhase::kExposing);
            pending_seq_ = next_seq_++;
            send_command(xray_name_, "expose");
            break;
        case SyncPhase::kExposing:
            // Expose accepted; the image result callback advances us.
            // A "busy" nack is left to the retry timer.
            if (ack->success) {
                expose_acked_ = true;
                retries_ = 0;
            }
            break;
        case SyncPhase::kResuming:
            if (!ack->success) return;
            finish(/*completed=*/true, current_.image_sharp);
            break;
        default:
            break;
    }
}

void XrayVentSync::on_image(const mcps::net::Message& m) {
    if (phase_ != SyncPhase::kExposing) return;
    const auto* st = mcps::net::payload_as<mcps::net::StatusPayload>(m);
    if (!st) return;
    current_.image_sharp = (st->state == "sharp");
    retries_ = 0;
    advance_to(SyncPhase::kResuming);
    pending_seq_ = next_seq_++;
    send_command(vent_name_, "resume");
}

void XrayVentSync::finish(bool completed, bool sharp) {
    retry_handle_.cancel();
    current_.completed = completed;
    current_.image_sharp = sharp;
    current_.apnea_s = (ctx_.sim.now() - pause_started_).to_seconds();
    outcomes_.push_back(current_);
    advance_to(SyncPhase::kDone);
    // Ready for the next request.
    phase_ = SyncPhase::kIdle;
}

// ---------------------------------------------------------------------
// ManualCoordinator
// ---------------------------------------------------------------------

ManualCoordinator::ManualCoordinator(devices::DeviceContext ctx,
                                     ManualCoordinatorConfig cfg,
                                     mcps::sim::RngStream rng)
    : ctx_{ctx}, cfg_{cfg}, rng_{rng} {}

void ManualCoordinator::run_procedure(devices::Ventilator& vent,
                                      devices::XRayMachine& xray) {
    const double sigma = cfg_.reaction_sigma;
    const double mu = std::log(cfg_.median_reaction_s);
    auto reaction = [this, mu, sigma] {
        return SimDuration::from_seconds(rng_.lognormal(mu, sigma));
    };

    // Failure mode: shoot without pausing at all (mis-timed workflow).
    if (rng_.bernoulli(cfg_.premature_shot_probability)) {
        ctx_.sim.schedule_after(reaction(), [this, &vent, &xray] {
            xray.expose();
            const auto wait = xray.config().prep_time + xray.config().exposure +
                              SimDuration::seconds(1);
            ctx_.sim.schedule_after(wait, [this, &vent, &xray] {
                SyncOutcome o;
                o.completed = true;
                o.apnea_s = 0.0;
                o.image_sharp =
                    !xray.results().empty() && xray.results().back().sharp;
                (void)vent;
                outcomes_.push_back(o);
            });
        });
        return;
    }

    // Step 1: walk to the ventilator, pause it.
    ctx_.sim.schedule_after(reaction(), [this, &vent, &xray] {
        const SimTime paused_at = ctx_.sim.now();
        vent.pause(vent.config().max_pause);
        // Step 2: after a beat, shoot.
        const auto shoot_gap =
            SimDuration::from_seconds(cfg_.shoot_delay_s) +
            SimDuration::from_seconds(
                rng_.lognormal(std::log(0.8), cfg_.reaction_sigma));
        ctx_.sim.schedule_after(shoot_gap, [this, &vent, &xray, paused_at] {
            xray.expose();
            // Step 3: resume after the exposure — possibly distracted.
            double back_s = cfg_.median_reaction_s +
                            xray.config().prep_time.to_seconds() +
                            xray.config().exposure.to_seconds();
            back_s += rng_.lognormal(std::log(1.0), cfg_.reaction_sigma);
            if (rng_.bernoulli(cfg_.distraction_probability)) {
                back_s += cfg_.distraction_extra_s;
            }
            ctx_.sim.schedule_after(
                SimDuration::from_seconds(back_s),
                [this, &vent, &xray, paused_at] {
                    const bool was_paused =
                        vent.mode() == devices::VentMode::kPaused;
                    vent.resume();
                    SyncOutcome o;
                    o.completed = true;
                    o.command_retries = 0;
                    // Apnea lasted until resume or the safety auto-resume,
                    // whichever came first.
                    const double until_now =
                        (ctx_.sim.now() - paused_at).to_seconds();
                    o.apnea_s =
                        was_paused
                            ? until_now
                            : std::min(until_now,
                                       vent.config().max_pause.to_seconds());
                    o.image_sharp = !xray.results().empty() &&
                                    xray.results().back().sharp;
                    outcomes_.push_back(o);
                });
        });
    });
}

}  // namespace mcps::core
