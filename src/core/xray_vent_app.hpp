/// \file xray_vent_app.hpp
/// \brief X-ray / ventilator synchronization — the paper's on-demand
/// interoperability scenario (E4).
///
/// Clinical story: a ventilated ICU patient needs a portable chest X-ray.
/// Today a clinician manually pauses the ventilator, shouts "shoot", and
/// resumes — sometimes late (prolonged apnea), sometimes early (blurred
/// film, repeat exposure, extra dose). The VMD app automates the
/// sequence over the ICE bus:
///
///   request -> cmd vent pause(window) -> await paused ack ->
///   cmd x-ray expose -> await image result -> cmd vent resume
///
/// Every hop rides the lossy network; the ventilator's own max-pause
/// auto-resume remains the backstop if the coordinator or network dies
/// mid-procedure. The ManualCoordinator models the human baseline with
/// log-normal reaction times for the same steps.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "devices/device.hpp"
#include "devices/ventilator.hpp"
#include "devices/xray.hpp"
#include "ice/app.hpp"

namespace mcps::core {

/// Phases of one synchronized exposure.
enum class SyncPhase {
    kIdle,
    kPausing,    ///< pause command sent, awaiting ack
    kExposing,   ///< expose command sent, awaiting image
    kResuming,   ///< resume command sent
    kDone,
};

[[nodiscard]] std::string_view to_string(SyncPhase p) noexcept;

/// Result of one procedure run.
struct SyncOutcome {
    bool image_sharp = false;
    bool completed = false;       ///< full sequence ran (vs abort/timeout)
    double apnea_s = 0.0;         ///< pause duration imposed on the patient
    std::uint64_t command_retries = 0;
};

struct XrayVentConfig {
    /// Ventilator pause window requested for the whole exposure sequence
    /// (must cover x-ray prep + exposure + network slack; the
    /// ventilator's max-pause clamp still applies on top).
    mcps::sim::SimDuration pause_window = mcps::sim::SimDuration::seconds(6);
    /// Ack timeout before retrying the pause/resume commands.
    mcps::sim::SimDuration retry_period = mcps::sim::SimDuration::millis(700);
    /// How long to wait for the image result before re-commanding the
    /// exposure (must exceed x-ray prep + exposure time).
    mcps::sim::SimDuration image_timeout = mcps::sim::SimDuration::seconds(4);
    /// Give up (and resume) after this many retries of any one command.
    int max_retries = 5;
};

/// The automated coordination app. Binding order: ventilator, x-ray.
class XrayVentSync : public ice::VmdApp {
public:
    XrayVentSync(devices::DeviceContext ctx, std::string name,
                 XrayVentConfig cfg = {});

    [[nodiscard]] std::vector<ice::Requirement> requirements() const override;
    void bind(const std::vector<ice::DeviceDescriptor>& devices) override;
    void on_app_start() override;
    void on_app_stop() override;

    /// Begin one synchronized exposure. Returns false if busy/not started.
    bool request_exposure();

    [[nodiscard]] SyncPhase phase() const noexcept { return phase_; }
    [[nodiscard]] const std::vector<SyncOutcome>& outcomes() const noexcept {
        return outcomes_;
    }

private:
    void advance_to(SyncPhase p);
    void send_command(const std::string& device, const std::string& action,
                      std::map<std::string, double> args = {});
    void on_ack(const mcps::net::Message& m);
    void on_image(const mcps::net::Message& m);
    void on_retry_timer();
    void finish(bool completed, bool sharp);

    devices::DeviceContext ctx_;
    XrayVentConfig cfg_;
    std::string vent_name_;
    std::string xray_name_;

    SyncPhase phase_ = SyncPhase::kIdle;
    mcps::sim::SimTime phase_entered_;
    bool expose_acked_ = false;
    std::uint64_t pending_seq_ = 0;
    std::uint64_t next_seq_ = 1;
    int retries_ = 0;
    SyncOutcome current_;
    mcps::sim::SimTime pause_started_;
    std::vector<SyncOutcome> outcomes_;
    mcps::sim::EventHandle retry_handle_;
    std::vector<mcps::net::SubscriptionId> subs_;
    bool started_ = false;
};

/// The human baseline: same three steps, but each separated by a sampled
/// human reaction delay, no acks, no retries, and a chance of forgetting
/// to resume promptly. Drives the devices *directly* (the human stands at
/// the bedside), so only the devices' own behaviour protects the patient.
struct ManualCoordinatorConfig {
    /// Log-normal median human step delay and dispersion (sigma of log).
    double median_reaction_s = 2.2;
    double reaction_sigma = 0.6;
    /// Probability the operator resumes very late (distraction).
    double distraction_probability = 0.08;
    double distraction_extra_s = 15.0;
    /// Probability the operator shoots without pausing first (the
    /// documented "patient was breathing" retake cause).
    double premature_shot_probability = 0.12;
    /// The operator waits this long after pausing before shooting.
    double shoot_delay_s = 1.0;
};

class ManualCoordinator {
public:
    ManualCoordinator(devices::DeviceContext ctx, ManualCoordinatorConfig cfg,
                      mcps::sim::RngStream rng);

    /// Run one manual procedure against the given devices. Schedules all
    /// steps on the simulation; the outcome lands in outcomes() once the
    /// image completes.
    void run_procedure(devices::Ventilator& vent, devices::XRayMachine& xray);

    [[nodiscard]] const std::vector<SyncOutcome>& outcomes() const noexcept {
        return outcomes_;
    }

private:
    devices::DeviceContext ctx_;
    ManualCoordinatorConfig cfg_;
    mcps::sim::RngStream rng_;
    std::vector<SyncOutcome> outcomes_;
};

}  // namespace mcps::core
