#include "pca_interlock.hpp"

#include <stdexcept>

namespace mcps::core {

using mcps::sim::SimDuration;
using mcps::sim::SimTime;

std::string_view to_string(InterlockMode m) noexcept {
    switch (m) {
        case InterlockMode::kSpO2Only: return "spo2-only";
        case InterlockMode::kDualSensor: return "dual-sensor";
    }
    return "unknown";
}

std::string_view to_string(DataLossPolicy p) noexcept {
    switch (p) {
        case DataLossPolicy::kFailSafe: return "fail-safe";
        case DataLossPolicy::kFailOperational: return "fail-operational";
    }
    return "unknown";
}

std::string_view to_string(InterlockState s) noexcept {
    switch (s) {
        case InterlockState::kMonitoring: return "monitoring";
        case InterlockState::kTriggered: return "triggered";
        case InterlockState::kDataLoss: return "data-loss";
    }
    return "unknown";
}

PcaInterlock::PcaInterlock(devices::DeviceContext ctx, std::string name,
                           InterlockConfig cfg)
    : ice::VmdApp{std::move(name)}, ctx_{ctx}, cfg_{std::move(cfg)} {
    if (cfg_.persistence < SimDuration::zero() ||
        cfg_.check_period <= SimDuration::zero() ||
        cfg_.staleness_limit <= SimDuration::zero() ||
        cfg_.command_retry <= SimDuration::zero()) {
        throw std::invalid_argument("InterlockConfig: non-positive durations");
    }
    if (cfg_.spo2_stop > cfg_.spo2_warn) {
        throw std::invalid_argument(
            "InterlockConfig: stop threshold must not exceed warn threshold");
    }
}

std::vector<ice::Requirement> PcaInterlock::requirements() const {
    std::vector<ice::Requirement> reqs{
        {devices::DeviceKind::kInfusionPump, {"remote-stop"}, "pump"},
        {devices::DeviceKind::kPulseOximeter, {"spo2"}, "oximeter"},
    };
    if (cfg_.mode == InterlockMode::kDualSensor) {
        reqs.push_back(
            {devices::DeviceKind::kCapnometer, {"etco2"}, "capnometer"});
    }
    return reqs;
}

void PcaInterlock::bind(const std::vector<ice::DeviceDescriptor>& devices) {
    const auto expected = requirements().size();
    if (devices.size() != expected) {
        throw std::invalid_argument("PcaInterlock::bind: expected " +
                                    std::to_string(expected) + " devices, got " +
                                    std::to_string(devices.size()));
    }
    pump_name_ = devices[0].name;
    oximeter_name_ = devices[1].name;
    if (cfg_.mode == InterlockMode::kDualSensor) {
        capnometer_name_ = devices[2].name;
    }
}

void PcaInterlock::on_app_start() {
    if (pump_name_.empty()) {
        throw std::logic_error("PcaInterlock: on_app_start before bind");
    }
    subs_.push_back(ctx_.bus.subscribe(
        name(), "vitals/" + cfg_.bed + "/*",
        [this](const mcps::net::Message& m) { on_vital(m); }));
    subs_.push_back(ctx_.bus.subscribe(
        name(), "ack/" + pump_name_,
        [this](const mcps::net::Message& m) { on_ack(m); }));
    check_handle_ =
        ctx_.sim.schedule_periodic(cfg_.check_period, [this] { check(); });
}

void PcaInterlock::on_app_stop() {
    check_handle_.cancel();
    retry_handle_.cancel();
    for (auto s : subs_) ctx_.bus.unsubscribe(s);
    subs_.clear();
}

void PcaInterlock::on_device_lost(const std::string& device_name) {
    ctx_.trace.mark(ctx_.sim.now(), "interlock/" + name() + "/device_lost/" +
                                        device_name);
    if (device_name == pump_name_) {
        // Cannot command a dead pump; nothing actionable (its own
        // fail-safe hardware is the last line of defense).
        return;
    }
    device_lost_active_ = true;
    if (cfg_.data_loss == DataLossPolicy::kFailSafe) {
        issue_stop("device-lost:" + device_name);
        state_ = InterlockState::kDataLoss;
        ++stats_.data_loss_stops;
    }
}

void PcaInterlock::on_device_recovered(const std::string& device_name) {
    ctx_.trace.mark(ctx_.sim.now(), "interlock/" + name() + "/device_recovered/" +
                                        device_name);
    device_lost_active_ = false;
}

void PcaInterlock::on_vital(const mcps::net::Message& m) {
    const auto* v = mcps::net::payload_as<mcps::net::VitalSignPayload>(m);
    if (!v) return;
    metrics_[v->metric] = MetricState{v->value, v->valid, ctx_.sim.now()};
}

void PcaInterlock::on_ack(const mcps::net::Message& m) {
    const auto* ack = mcps::net::payload_as<mcps::net::AckPayload>(m);
    if (!ack) return;
    if (ack->command_seq != pending_command_seq_) return;
    ++stats_.acks_received;
    if (!ack->success) return;  // keep retrying
    if (pending_cmd_ == PendingCmd::kStop) {
        if (!trigger_onset_.is_never()) {
            stats_.last_stop_latency_ms =
                (ctx_.sim.now() - trigger_onset_).to_millis();
        }
        ctx_.trace.mark(ctx_.sim.now(), "interlock/" + name() + "/stop_acked");
    } else if (pending_cmd_ == PendingCmd::kResume) {
        ctx_.trace.mark(ctx_.sim.now(),
                        "interlock/" + name() + "/resume_acked");
    }
    pending_cmd_ = PendingCmd::kNone;
    retry_handle_.cancel();
}

bool PcaInterlock::metric_fresh(const std::string& metric) const {
    auto it = metrics_.find(metric);
    if (it == metrics_.end()) return false;
    if (it->second.updated_at.is_never()) return false;
    return ctx_.sim.now() - it->second.updated_at <= cfg_.staleness_limit;
}

std::optional<double> PcaInterlock::metric_value(
    const std::string& metric) const {
    auto it = metrics_.find(metric);
    if (it == metrics_.end()) return std::nullopt;
    return it->second.value;
}

bool PcaInterlock::condition_now() const {
    const auto spo2 = metric_value("spo2");
    const bool spo2_fresh = metric_fresh("spo2");

    if (cfg_.mode == InterlockMode::kSpO2Only) {
        return spo2_fresh && spo2 && *spo2 < cfg_.spo2_stop;
    }

    const auto etco2 = metric_value("etco2");
    const auto rr = metric_value("resp_rate");
    const bool cap_fresh = metric_fresh("etco2");

    const bool spo2_critical = spo2_fresh && spo2 && *spo2 < cfg_.spo2_stop;
    const bool spo2_warning = spo2_fresh && spo2 && *spo2 < cfg_.spo2_warn;
    const bool resp_critical =
        cap_fresh && ((etco2 && (*etco2 < cfg_.etco2_low ||
                                 *etco2 > cfg_.etco2_high)) ||
                      (rr && metric_fresh("resp_rate") && *rr < cfg_.rr_low));

    // Either sensor alone at critical level, or a concordant warning on
    // both: capnometry's fast response plus oximetry's specificity.
    return spo2_critical || resp_critical || (spo2_warning && resp_critical);
}

bool PcaInterlock::vitals_normal_now() const {
    const auto spo2 = metric_value("spo2");
    if (!metric_fresh("spo2") || !spo2 || *spo2 < cfg_.spo2_warn) return false;
    if (cfg_.mode == InterlockMode::kDualSensor) {
        const auto etco2 = metric_value("etco2");
        const auto rr = metric_value("resp_rate");
        if (!metric_fresh("etco2") || !etco2 ||
            *etco2 < cfg_.etco2_low + 5.0 || *etco2 > cfg_.etco2_high - 5.0) {
            return false;
        }
        if (!metric_fresh("resp_rate") || !rr || *rr < cfg_.rr_low + 2.0) {
            return false;
        }
    }
    return true;
}

void PcaInterlock::send_pending_command() {
    if (pending_cmd_ == PendingCmd::kNone) return;
    mcps::net::CommandPayload cmd;
    if (pending_cmd_ == PendingCmd::kStop) {
        ++stats_.stop_commands_sent;
        cmd.action = "stop_infusion";
    } else {
        cmd.action = "resume";
    }
    cmd.command_seq = pending_command_seq_;
    ctx_.bus.publish(name(), "cmd/" + pump_name_, cmd);
}

void PcaInterlock::issue_stop(const std::string& why) {
    if (state_ == InterlockState::kTriggered ||
        state_ == InterlockState::kDataLoss) {
        return;  // already stopping/stopped
    }
    state_ = InterlockState::kTriggered;
    ++stats_.stops_issued;
    pending_cmd_ = PendingCmd::kStop;
    pending_command_seq_ = next_command_seq_++;
    trigger_onset_ =
        condition_since_.is_never() ? ctx_.sim.now() : condition_since_;
    ctx_.trace.mark(ctx_.sim.now(), "interlock/" + name() + "/stop/" + why);
    if (auto* log = ctx_.events) {
        log->emit(mcps::obs::EventKind::kInterlockTrip, ctx_.sim.now(), name(),
                  "stop/" + why, static_cast<double>(stats_.stops_issued));
    }
    send_pending_command();
    // Retries ride until the ack lands — the command channel is lossy too.
    retry_handle_.cancel();
    retry_handle_ = ctx_.sim.schedule_periodic(cfg_.command_retry, [this] {
        if (pending_cmd_ != PendingCmd::kNone) send_pending_command();
    });
}

void PcaInterlock::issue_resume() {
    state_ = InterlockState::kMonitoring;
    ++stats_.resumes_issued;
    pending_cmd_ = PendingCmd::kResume;
    pending_command_seq_ = next_command_seq_++;
    ctx_.trace.mark(ctx_.sim.now(), "interlock/" + name() + "/resume");
    if (auto* log = ctx_.events) {
        log->emit(mcps::obs::EventKind::kInterlockTrip, ctx_.sim.now(), name(),
                  "resume", static_cast<double>(stats_.resumes_issued));
    }
    send_pending_command();
    // Resume rides the same lossy network: retry until acknowledged.
    retry_handle_.cancel();
    retry_handle_ = ctx_.sim.schedule_periodic(cfg_.command_retry, [this] {
        if (pending_cmd_ != PendingCmd::kNone) send_pending_command();
    });
}

void PcaInterlock::check() {
    const SimTime now = ctx_.sim.now();

    // --- Data-loss handling -------------------------------------------
    const bool spo2_lost = !metric_fresh("spo2");
    const bool cap_lost = cfg_.mode == InterlockMode::kDualSensor &&
                          !metric_fresh("etco2");
    const bool any_lost = spo2_lost || cap_lost || device_lost_active_;
    // Grace period: don't declare loss before the first sample ever had a
    // chance to arrive.
    const bool past_warmup = now.since_origin() > cfg_.staleness_limit;

    if (any_lost && past_warmup) {
        if (cfg_.data_loss == DataLossPolicy::kFailSafe &&
            state_ == InterlockState::kMonitoring) {
            issue_stop(spo2_lost ? "stale:spo2"
                                 : (cap_lost ? "stale:etco2" : "device-lost"));
            state_ = InterlockState::kDataLoss;
            ++stats_.data_loss_stops;
        }
        // Fail-operational: fall through and evaluate on last values.
    } else if (state_ == InterlockState::kDataLoss && !any_lost) {
        // Data back: downgrade to Triggered so the normal recovery path
        // (recovery_hold) applies.
        state_ = InterlockState::kTriggered;
    }

    // --- Trigger-condition persistence --------------------------------
    if (condition_now()) {
        if (condition_since_.is_never()) condition_since_ = now;
        normal_since_ = SimTime::never();
        if (state_ == InterlockState::kMonitoring &&
            now - condition_since_ >= cfg_.persistence) {
            issue_stop("respiratory-depression");
        }
    } else {
        condition_since_ = SimTime::never();
    }

    // --- Recovery / auto-resume ----------------------------------------
    if (state_ == InterlockState::kTriggered && cfg_.auto_resume) {
        if (vitals_normal_now()) {
            if (normal_since_.is_never()) normal_since_ = now;
            if (now - normal_since_ >= cfg_.recovery_hold) {
                issue_resume();
                normal_since_ = SimTime::never();
            }
        } else {
            normal_since_ = SimTime::never();
        }
    }
}

}  // namespace mcps::core
