/// \file trend.hpp
/// \brief Trend estimation and predictive early warning — the paper's
/// clinical decision-support thread.
///
/// Threshold alarms (and even fused alarms) are *reactive*: they fire
/// when a limit is already crossed. The decision-support idea in the
/// DAC'10 agenda is *predictive*: estimate where a vital sign is heading
/// and warn while there is still time to act. TrendEstimator fits a
/// least-squares line over a sliding window; EarlyWarning watches bus
/// vitals and raises a predictive alert when the extrapolated crossing
/// of a clinical threshold falls within the warning horizon.

#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "devices/device.hpp"

namespace mcps::core {

/// Sliding-window least-squares trend over one scalar signal.
class TrendEstimator {
public:
    /// \param window how much history the fit uses.
    explicit TrendEstimator(mcps::sim::SimDuration window);

    /// Add a sample; samples older than the window (relative to \p t)
    /// are dropped. Times must be non-decreasing.
    void add(mcps::sim::SimTime t, double value);

    [[nodiscard]] std::size_t count() const noexcept {
        return samples_.size();
    }
    /// Latest value, if any.
    [[nodiscard]] std::optional<double> latest() const;
    /// Least-squares slope in units per minute; nullopt with < 3 samples
    /// or a degenerate (zero-time-spread) window.
    [[nodiscard]] std::optional<double> slope_per_min() const;
    /// Projected time until the trend line crosses \p threshold, from
    /// the newest sample. nullopt if the trend is flat, moving away, or
    /// the threshold is already crossed (that is the reactive alarm's
    /// job, not the predictor's).
    [[nodiscard]] std::optional<mcps::sim::SimDuration> time_to_cross(
        double threshold) const;

private:
    mcps::sim::SimDuration window_;
    std::deque<std::pair<mcps::sim::SimTime, double>> samples_;
};

/// One predictive rule: warn when \p metric is projected to cross
/// \p threshold (falling if falling==true, else rising) within the
/// horizon.
struct PredictionRule {
    std::string metric;
    double threshold = 0.0;
    bool falling = true;
};

/// A fired predictive alert.
struct PredictiveAlert {
    mcps::sim::SimTime at;
    std::string metric;
    double current_value = 0.0;
    double slope_per_min = 0.0;
    /// Projected seconds until the threshold crossing.
    double predicted_cross_in_s = 0.0;
};

struct EarlyWarningConfig {
    std::string bed = "bed1";
    mcps::sim::SimDuration trend_window = mcps::sim::SimDuration::minutes(4);
    /// Warn when the projected crossing is within this horizon.
    mcps::sim::SimDuration horizon = mcps::sim::SimDuration::minutes(10);
    mcps::sim::SimDuration check_period = mcps::sim::SimDuration::seconds(5);
    /// Same-metric alerts re-arm after this interval.
    mcps::sim::SimDuration rearm = mcps::sim::SimDuration::minutes(5);
    /// Minimum |slope| (units/min) to consider a trend real (noise gate).
    double min_slope_per_min = 0.05;
    std::vector<PredictionRule> rules{
        {"spo2", 90.0, true},
        {"resp_rate", 8.0, true},
        {"etco2", 60.0, false},
    };
};

/// The predictive monitor. Consumes bus vitals like SmartAlarm; emits
/// "predict/<name>" status messages and records alerts.
class EarlyWarning {
public:
    EarlyWarning(devices::DeviceContext ctx, std::string name,
                 EarlyWarningConfig cfg);

    void start();
    void stop();

    [[nodiscard]] const std::vector<PredictiveAlert>& alerts() const noexcept {
        return alerts_;
    }
    [[nodiscard]] const EarlyWarningConfig& config() const noexcept {
        return cfg_;
    }
    /// Live trend access (nullptr if the metric was never seen).
    [[nodiscard]] const TrendEstimator* trend(const std::string& metric) const;

private:
    void on_vital(const mcps::net::Message& m);
    void evaluate();

    devices::DeviceContext ctx_;
    std::string name_;
    EarlyWarningConfig cfg_;
    std::map<std::string, TrendEstimator> trends_;
    std::map<std::string, mcps::sim::SimTime> last_fired_;
    std::vector<PredictiveAlert> alerts_;
    mcps::sim::EventHandle check_handle_;
    mcps::net::SubscriptionId sub_{};
    bool running_ = false;
};

}  // namespace mcps::core
