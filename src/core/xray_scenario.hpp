/// \file xray_scenario.hpp
/// \brief Scenario harness for the X-ray / ventilator sync experiment E4.
///
/// Runs N imaging procedures on a ventilated patient, either through the
/// automated ICE coordination app or through the manual (human) baseline,
/// and reports image success rate, imposed apnea, and retry counts.

#pragma once

#include <optional>

#include "xray_vent_app.hpp"
#include "net/channel.hpp"
#include "obs/event_log.hpp"
#include "physio/population.hpp"

namespace mcps::core {

enum class CoordinationMode { kManual, kAutomated };

[[nodiscard]] std::string_view to_string(CoordinationMode m) noexcept;

struct XrayScenarioConfig {
    std::uint64_t seed = 42;
    CoordinationMode mode = CoordinationMode::kAutomated;
    std::size_t procedures = 20;
    /// Gap between consecutive procedures.
    mcps::sim::SimDuration procedure_gap = mcps::sim::SimDuration::minutes(3);

    physio::PatientParameters patient =
        physio::nominal_parameters(physio::Archetype::kTypicalAdult);
    devices::VentilatorConfig ventilator{};
    devices::XRayConfig xray{};
    XrayVentConfig sync{};
    ManualCoordinatorConfig manual{};
    net::ChannelParameters channel{};

    /// Optional structured event log (bus + supervisor + devices).
    /// nullptr (default) disables tracing; must outlive the run when set.
    mcps::obs::EventLog* events = nullptr;
};

struct XrayScenarioResult {
    std::size_t procedures = 0;
    std::size_t completed = 0;
    std::size_t sharp_images = 0;
    double sharp_rate = 0.0;
    double mean_apnea_s = 0.0;
    double max_apnea_s = 0.0;
    std::uint64_t total_retries = 0;
    std::uint64_t safety_auto_resumes = 0;
    /// Ground-truth worst SpO2 across the whole run.
    double min_spo2 = 100.0;
};

[[nodiscard]] XrayScenarioResult run_xray_scenario(
    const XrayScenarioConfig& cfg);

}  // namespace mcps::core
