/// \file core.hpp
/// \brief Umbrella header for the mcps_core library — the paper's
/// primary-contribution layer (closed-loop safety apps, smart alarms,
/// scenario harnesses).

#pragma once

#include "nurse_response.hpp"  // IWYU pragma: export
#include "pca_interlock.hpp"   // IWYU pragma: export
#include "pca_scenario.hpp"   // IWYU pragma: export
#include "smart_alarm.hpp"    // IWYU pragma: export
#include "trend.hpp"          // IWYU pragma: export
#include "xray_scenario.hpp"  // IWYU pragma: export
#include "xray_vent_app.hpp"  // IWYU pragma: export
