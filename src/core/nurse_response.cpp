#include "nurse_response.hpp"

#include <algorithm>
#include <cmath>

namespace mcps::core {

using mcps::sim::SimDuration;
using mcps::sim::SimTime;

NurseResponder::NurseResponder(devices::DeviceContext ctx, std::string name,
                               physio::Patient& patient, NurseConfig cfg)
    : ctx_{ctx},
      name_{std::move(name)},
      patient_{patient},
      cfg_{std::move(cfg)},
      rng_{ctx.sim.rng("nurse." + name_)} {
    if (cfg_.base_response <= SimDuration::zero() ||
        cfg_.fatigue_window <= SimDuration::zero() ||
        cfg_.max_response_factor < 1.0) {
        throw std::invalid_argument("NurseConfig: invalid parameters");
    }
}

void NurseResponder::start() {
    if (running_) return;
    running_ = true;
    sub_ = ctx_.bus.subscribe(name_, cfg_.alarm_topic,
                              [this](const mcps::net::Message& m) {
                                  on_alarm(m);
                              });
}

void NurseResponder::stop() {
    if (!running_) return;
    running_ = false;
    ctx_.bus.unsubscribe(sub_);
}

void NurseResponder::prune_fatigue_window() const {
    const SimTime cutoff = ctx_.sim.now() - cfg_.fatigue_window;
    while (!recent_alarms_.empty() && recent_alarms_.front() < cutoff) {
        recent_alarms_.pop_front();
    }
}

double NurseResponder::current_fatigue_factor() const {
    prune_fatigue_window();
    return std::min(cfg_.max_response_factor,
                    1.0 + cfg_.fatigue_per_alarm *
                              static_cast<double>(recent_alarms_.size()));
}

void NurseResponder::on_alarm(const mcps::net::Message& m) {
    (void)m;
    ++stats_.alarms_heard;
    // The fatigue factor is computed from the burden BEFORE this alarm:
    // a first alarm after a quiet hour gets the fastest response.
    prune_fatigue_window();
    const double factor = current_fatigue_factor();
    const double p_ignore =
        std::min(cfg_.max_ignore_probability,
                 cfg_.ignore_per_alarm *
                     static_cast<double>(recent_alarms_.size()));
    recent_alarms_.push_back(ctx_.sim.now());

    if (dispatched_) return;  // already on the way / at the bedside
    if (rng_.bernoulli(p_ignore)) {
        ++stats_.ignored;
        ctx_.trace.mark(ctx_.sim.now(), "nurse/" + name_ + "/ignored");
        return;
    }
    dispatched_ = true;
    ++stats_.dispatches;
    stats_.fatigue_factors.push_back(factor);

    const double mu = std::log(cfg_.base_response.to_seconds() * factor);
    const double delay_s = rng_.lognormal(mu, cfg_.response_sigma);
    const SimTime alarm_at = ctx_.sim.now();
    ctx_.trace.mark(alarm_at, "nurse/" + name_ + "/dispatch");
    ctx_.sim.schedule_after(SimDuration::from_seconds(delay_s),
                            [this, alarm_at] { arrive_at_bedside(alarm_at); });
}

void NurseResponder::arrive_at_bedside(SimTime alarm_at) {
    stats_.response_times_s.push_back(
        (ctx_.sim.now() - alarm_at).to_seconds());
    ctx_.trace.mark(ctx_.sim.now(), "nurse/" + name_ + "/arrive");

    ctx_.sim.schedule_after(cfg_.assessment, [this] {
        dispatched_ = false;
        const bool depressed =
            patient_.is_apneic() ||
            patient_.resp_rate().as_per_minute() < cfg_.rescue_rr ||
            patient_.spo2().as_percent() < cfg_.rescue_spo2 ||
            patient_.etco2().as_mmhg() > cfg_.rescue_etco2;
        if (!depressed) {
            ++stats_.false_trips;
            ctx_.trace.mark(ctx_.sim.now(), "nurse/" + name_ + "/false_trip");
            return;
        }
        const bool lockout_active =
            ever_rescued_ &&
            ctx_.sim.now() - last_rescue_ < cfg_.redose_lockout;
        if (lockout_active) return;
        // A competent rescue stops the infusion FIRST, then antagonizes.
        if (!cfg_.pump_name.empty()) {
            mcps::net::CommandPayload stop;
            stop.action = "stop_infusion";
            ctx_.bus.publish(name_, "cmd/" + cfg_.pump_name, stop);
        }
        patient_.give_antagonist(cfg_.antagonist_potency,
                                 cfg_.antagonist_half_life.to_seconds());
        last_rescue_ = ctx_.sim.now();
        if (!ever_rescued_ && !stats_.response_times_s.empty()) {
            stats_.first_rescue_latency_s =
                stats_.response_times_s.front() + cfg_.assessment.to_seconds();
        }
        ever_rescued_ = true;
        ++stats_.rescues;
        ctx_.trace.mark(ctx_.sim.now(), "nurse/" + name_ + "/rescue");
        ctx_.bus.publish(name_, "nurse/" + name_ + "/rescue",
                         mcps::net::StatusPayload{"rescue", "antagonist"});
    });
}

}  // namespace mcps::core
