#include "trend.hpp"

#include <cmath>
#include <stdexcept>

namespace mcps::core {

using mcps::sim::SimDuration;
using mcps::sim::SimTime;

TrendEstimator::TrendEstimator(SimDuration window) : window_{window} {
    if (window <= SimDuration::zero()) {
        throw std::invalid_argument("TrendEstimator: window must be positive");
    }
}

void TrendEstimator::add(SimTime t, double value) {
    if (!samples_.empty() && t < samples_.back().first) {
        throw std::invalid_argument("TrendEstimator: time going backwards");
    }
    samples_.emplace_back(t, value);
    const SimTime cutoff = t - window_;
    while (!samples_.empty() && samples_.front().first < cutoff) {
        samples_.pop_front();
    }
}

std::optional<double> TrendEstimator::latest() const {
    if (samples_.empty()) return std::nullopt;
    return samples_.back().second;
}

std::optional<double> TrendEstimator::slope_per_min() const {
    if (samples_.size() < 3) return std::nullopt;
    // Ordinary least squares on (minutes-since-first, value).
    const SimTime t0 = samples_.front().first;
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const auto n = static_cast<double>(samples_.size());
    for (const auto& [t, v] : samples_) {
        const double x = (t - t0).to_minutes();
        sx += x;
        sy += v;
        sxx += x * x;
        sxy += x * v;
    }
    const double denom = n * sxx - sx * sx;
    if (denom < 1e-12) return std::nullopt;  // all samples at one instant
    return (n * sxy - sx * sy) / denom;
}

std::optional<SimDuration> TrendEstimator::time_to_cross(
    double threshold) const {
    const auto slope = slope_per_min();
    const auto value = latest();
    if (!slope || !value) return std::nullopt;
    const double gap = threshold - *value;
    // Already crossed, or heading away / flat: not a prediction.
    if (gap == 0.0) return std::nullopt;
    if (*slope == 0.0) return std::nullopt;
    const double minutes = gap / *slope;
    if (minutes <= 0.0) return std::nullopt;
    return SimDuration::from_seconds(minutes * 60.0);
}

EarlyWarning::EarlyWarning(devices::DeviceContext ctx, std::string name,
                           EarlyWarningConfig cfg)
    : ctx_{ctx}, name_{std::move(name)}, cfg_{std::move(cfg)} {
    if (cfg_.check_period <= SimDuration::zero() ||
        cfg_.trend_window <= SimDuration::zero() ||
        cfg_.horizon <= SimDuration::zero()) {
        throw std::invalid_argument("EarlyWarningConfig: non-positive duration");
    }
}

void EarlyWarning::start() {
    if (running_) return;
    running_ = true;
    sub_ = ctx_.bus.subscribe(name_, "vitals/" + cfg_.bed + "/*",
                              [this](const mcps::net::Message& m) {
                                  on_vital(m);
                              });
    check_handle_ =
        ctx_.sim.schedule_periodic(cfg_.check_period, [this] { evaluate(); });
}

void EarlyWarning::stop() {
    if (!running_) return;
    running_ = false;
    check_handle_.cancel();
    ctx_.bus.unsubscribe(sub_);
}

const TrendEstimator* EarlyWarning::trend(const std::string& metric) const {
    const auto it = trends_.find(metric);
    return it == trends_.end() ? nullptr : &it->second;
}

void EarlyWarning::on_vital(const mcps::net::Message& m) {
    const auto* v = mcps::net::payload_as<mcps::net::VitalSignPayload>(m);
    if (!v || !v->valid) return;  // quality-gated: flagged samples skipped
    auto it = trends_.find(v->metric);
    if (it == trends_.end()) {
        it = trends_.emplace(v->metric, TrendEstimator{cfg_.trend_window})
                 .first;
    }
    it->second.add(ctx_.sim.now(), v->value);
}

void EarlyWarning::evaluate() {
    const SimTime now = ctx_.sim.now();
    for (const auto& rule : cfg_.rules) {
        const auto it = trends_.find(rule.metric);
        if (it == trends_.end()) continue;
        const auto& trend = it->second;
        const auto slope = trend.slope_per_min();
        const auto value = trend.latest();
        if (!slope || !value) continue;
        if (std::abs(*slope) < cfg_.min_slope_per_min) continue;
        // Direction gate: a falling rule needs a falling trend with the
        // value still above the threshold (and vice versa).
        if (rule.falling && (*slope >= 0.0 || *value <= rule.threshold)) {
            continue;
        }
        if (!rule.falling && (*slope <= 0.0 || *value >= rule.threshold)) {
            continue;
        }
        const auto cross = trend.time_to_cross(rule.threshold);
        if (!cross || *cross > cfg_.horizon) continue;

        if (const auto lf = last_fired_.find(rule.metric);
            lf != last_fired_.end() && now - lf->second < cfg_.rearm) {
            continue;
        }
        last_fired_[rule.metric] = now;
        alerts_.push_back(PredictiveAlert{now, rule.metric, *value, *slope,
                                          cross->to_seconds()});
        ctx_.trace.mark(now, "predict/" + name_ + "/" + rule.metric);
        ctx_.bus.publish(
            name_, "predict/" + name_,
            mcps::net::StatusPayload{
                "predictive",
                rule.metric + " crosses " + std::to_string(rule.threshold) +
                    " in ~" + std::to_string(cross->to_seconds()) + "s"});
    }
}

}  // namespace mcps::core
