/// \file pca_scenario.hpp
/// \brief End-to-end PCA scenario harness: one call assembles the whole
/// MCPS (patient + pump + sensors + bus + supervisor + interlock),
/// runs it, and extracts the safety metrics the experiments report.
///
/// All of E1 (closed vs open loop), E2 (network sweeps) and E8 (sensor
/// fault injection) are parameterizations of this harness, as are the
/// integration tests and the quickstart example.

#pragma once

#include <functional>
#include <optional>

#include "devices/capnometer.hpp"
#include "devices/gpca_pump.hpp"
#include "devices/monitor.hpp"
#include "devices/pulse_oximeter.hpp"
#include "net/channel.hpp"
#include "obs/event_log.hpp"
#include "pca_interlock.hpp"
#include "physio/pca_demand.hpp"
#include "physio/population.hpp"
#include "sim/trace.hpp"
#include "smart_alarm.hpp"

namespace mcps::core {

/// How the patient's bolus demands are generated.
enum class DemandMode {
    kNormal,  ///< pain-driven, sedation-limited (PCA's intrinsic safety)
    kProxy,   ///< PCA-by-proxy: presses continue despite sedation
};

/// Everything needed to run one PCA scenario.
struct PcaScenarioConfig {
    std::uint64_t seed = 42;
    mcps::sim::SimDuration duration = mcps::sim::SimDuration::hours(4);
    /// Physiology integration step (also the demand poll interval).
    mcps::sim::SimDuration patient_step = mcps::sim::SimDuration::millis(500);

    physio::PatientParameters patient =
        physio::nominal_parameters(physio::Archetype::kTypicalAdult);
    devices::Prescription prescription{};
    physio::DemandParameters demand{};
    DemandMode demand_mode = DemandMode::kNormal;

    /// nullopt => open-loop PCA (no safety interlock) — the baseline.
    std::optional<InterlockConfig> interlock = InterlockConfig{};

    net::ChannelParameters channel{};
    devices::PulseOximeterConfig oximeter{};
    devices::CapnometerConfig capnometer{};

    bool with_monitor = false;      ///< classic threshold-alarm baseline
    bool with_smart_alarm = false;  ///< fused smart alarm
    devices::MonitorConfig monitor = devices::MonitorConfig::adult_defaults();
    SmartAlarmConfig smart_alarm{};

    /// Optional mid-run hook (fault injection etc.), called once at
    /// \p hook_at with access to the live scenario parts.
    std::function<void(class PcaScenario&)> mid_run_hook;
    mcps::sim::SimTime hook_at = mcps::sim::SimTime::never();

    /// Optional structured event log shared by the bus, devices,
    /// supervisor and interlock. nullptr (default) disables tracing;
    /// must outlive the scenario when set.
    mcps::obs::EventLog* events = nullptr;
};

/// Ground-truth safety + therapy metrics computed after the run.
struct PcaScenarioResult {
    // --- patient safety (ground truth, not sensor readings) -----------
    double min_spo2 = 100.0;
    double time_spo2_below_90_s = 0.0;
    double time_spo2_below_85_s = 0.0;
    double time_apneic_s = 0.0;
    bool severe_hypoxemia = false;  ///< true SpO2 < 85 at any instant
    /// Onset of first true desaturation below 90 (NaN if none).
    std::optional<double> hypoxia_onset_s;
    /// Onset -> pump actually stopped delivering (nullopt if never
    /// stopped, or no hypoxia occurred).
    std::optional<double> detection_latency_s;

    // --- therapy --------------------------------------------------------
    double mean_pain = 0.0;
    double total_drug_mg = 0.0;
    devices::PumpStats pump;

    // --- interlock & alarms ---------------------------------------------
    InterlockStats interlock;
    std::size_t monitor_alarm_count = 0;
    std::size_t smart_alarm_count = 0;
    std::size_t smart_critical_count = 0;

    std::uint64_t events_dispatched = 0;
};

/// The live scenario object. Construct, then run(); intermediate access
/// is provided for tests and for mid-run fault-injection hooks.
class PcaScenario {
public:
    explicit PcaScenario(PcaScenarioConfig cfg);
    ~PcaScenario();

    PcaScenario(const PcaScenario&) = delete;
    PcaScenario& operator=(const PcaScenario&) = delete;

    /// Run to completion and compute metrics.
    PcaScenarioResult run();

    // Live-part access (valid between construction and destruction).
    [[nodiscard]] mcps::sim::Simulation& simulation();
    [[nodiscard]] physio::Patient& patient();
    [[nodiscard]] devices::GpcaPump& pump();
    [[nodiscard]] devices::PulseOximeter& oximeter();
    [[nodiscard]] devices::Capnometer& capnometer();
    [[nodiscard]] net::Bus& bus();
    [[nodiscard]] mcps::sim::TraceRecorder& trace();
    [[nodiscard]] PcaInterlock* interlock();  ///< nullptr in open loop
    [[nodiscard]] SmartAlarm* smart_alarm();  ///< nullptr if disabled
    [[nodiscard]] devices::BedsideMonitor* monitor();  ///< nullptr if disabled

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Convenience one-shot runner.
[[nodiscard]] PcaScenarioResult run_pca_scenario(const PcaScenarioConfig& cfg);

}  // namespace mcps::core
