/// \file smart_alarm.hpp
/// \brief Multi-parameter smart alarm — the paper's "context-aware
/// intelligence" thread.
///
/// Classic monitors alarm on each vital in isolation, producing the false
/// alarm floods that desensitize clinicians (the paper's motivation for
/// smarter, fused alarms). This engine fuses SpO2, respiratory rate,
/// EtCO2 and pulse rate into one risk score with three defenses against
/// false alarms:
///
///  1. *Corroboration weighting*: a severe anomaly on one channel is
///     discounted unless at least one other channel is also abnormal —
///     a motion artifact dips SpO2 but leaves EtCO2/RR/pulse untouched,
///     whereas true respiratory depression drags several channels.
///  2. *Persistence filtering*: the score must stay above threshold for a
///     hold time before the alarm sounds.
///  3. *Quality gating*: samples flagged invalid by the sensor contribute
///     at reduced weight; stale channels contribute nothing (and raise a
///     separate technical alert instead of a clinical alarm).
///
/// Experiment E3 compares this engine against the BedsideMonitor's
/// per-metric thresholds on identical traces.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "devices/device.hpp"

namespace mcps::core {

/// Alarm severity bands.
enum class AlarmSeverity { kAdvisory, kWarning, kCritical };

[[nodiscard]] std::string_view to_string(AlarmSeverity s) noexcept;

/// One fired clinical alarm.
struct AlarmEvent {
    mcps::sim::SimTime at;
    AlarmSeverity severity;
    double score;
    std::string dominant_metric;
};

/// One technical (sensor, not patient) alert.
struct TechnicalAlert {
    mcps::sim::SimTime at;
    std::string metric;  ///< silent channel
};

struct SmartAlarmConfig {
    std::string bed = "bed1";
    mcps::sim::SimDuration check_period = mcps::sim::SimDuration::seconds(1);
    mcps::sim::SimDuration staleness_limit = mcps::sim::SimDuration::seconds(12);

    // Risk-score weights (points per unit of abnormality).
    double w_spo2 = 0.55;    ///< per % below spo2_norm
    double spo2_norm = 93.0;
    double w_rr = 0.55;      ///< per breath/min below rr_norm
    double rr_norm = 10.0;
    double w_etco2_low = 0.30;   ///< per mmHg below etco2_low_norm
    double etco2_low_norm = 20.0;
    double w_etco2_high = 0.18;  ///< per mmHg above etco2_high_norm
    double etco2_high_norm = 55.0;
    double w_pulse = 0.06;   ///< per bpm outside [pulse_low, pulse_high]
    double pulse_low = 50.0;
    double pulse_high = 120.0;

    /// Uncorroborated anomalies are scaled by this factor.
    double uncorroborated_factor = 0.35;
    /// Invalid-flagged samples are scaled by this factor.
    double invalid_factor = 0.5;

    double warning_threshold = 2.5;
    double critical_threshold = 5.0;
    mcps::sim::SimDuration persistence = mcps::sim::SimDuration::seconds(12);
    /// Same-severity alarms re-arm after this interval.
    mcps::sim::SimDuration rearm = mcps::sim::SimDuration::seconds(60);
};

/// The fusion engine. Not a Device: it is supervisory software that can
/// run on an ICE supervisor host; it only consumes bus traffic.
class SmartAlarm {
public:
    SmartAlarm(devices::DeviceContext ctx, std::string name,
               SmartAlarmConfig cfg);

    /// Begin consuming vitals and evaluating.
    void start();
    void stop();

    [[nodiscard]] const std::vector<AlarmEvent>& alarms() const noexcept {
        return alarms_;
    }
    [[nodiscard]] const std::vector<TechnicalAlert>& technical_alerts()
        const noexcept {
        return tech_alerts_;
    }
    /// Current fused risk score (for tracing/threshold studies).
    [[nodiscard]] double current_score() const noexcept { return score_; }
    [[nodiscard]] const SmartAlarmConfig& config() const noexcept { return cfg_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    struct MetricState {
        double value = 0.0;
        bool valid = true;
        mcps::sim::SimTime updated_at = mcps::sim::SimTime::never();
    };

    struct Contribution {
        double points = 0.0;  ///< pre-corroboration
        bool abnormal = false;
        bool degraded = false;  ///< invalid-flagged sample
    };

    void on_vital(const mcps::net::Message& m);
    void evaluate();
    [[nodiscard]] bool fresh(const MetricState& m) const;
    [[nodiscard]] Contribution contribution(const std::string& metric) const;

    devices::DeviceContext ctx_;
    std::string name_;
    SmartAlarmConfig cfg_;
    std::map<std::string, MetricState> metrics_;
    double score_ = 0.0;
    std::string dominant_;
    mcps::sim::SimTime above_warning_since_ = mcps::sim::SimTime::never();
    mcps::sim::SimTime above_critical_since_ = mcps::sim::SimTime::never();
    std::map<std::string, mcps::sim::SimTime> last_fired_;
    std::map<std::string, mcps::sim::SimTime> last_tech_alert_;
    std::vector<AlarmEvent> alarms_;
    std::vector<TechnicalAlert> tech_alerts_;
    mcps::sim::EventHandle check_handle_;
    mcps::net::SubscriptionId sub_{};
    bool running_ = false;
};

}  // namespace mcps::core
