#include "xray_scenario.hpp"

#include <algorithm>

#include "ice/ice.hpp"
#include "sim/trace.hpp"

namespace mcps::core {

using mcps::sim::SimDuration;
using mcps::sim::SimTime;

std::string_view to_string(CoordinationMode m) noexcept {
    switch (m) {
        case CoordinationMode::kManual: return "manual";
        case CoordinationMode::kAutomated: return "automated";
    }
    return "unknown";
}

XrayScenarioResult run_xray_scenario(const XrayScenarioConfig& cfg) {
    mcps::sim::Simulation sim{cfg.seed};
    mcps::sim::TraceRecorder trace;
    net::Bus bus{sim, cfg.channel};
    bus.set_event_log(cfg.events);
    physio::Patient patient{cfg.patient};
    devices::DeviceContext ctx{sim, bus, trace, cfg.events};

    if (auto* log = cfg.events) {
        log->emit(mcps::obs::EventKind::kScenarioStart, sim.now(), "xray",
                  std::string{to_string(cfg.mode)},
                  static_cast<double>(cfg.seed));
    }

    devices::Ventilator vent{ctx, "vent1", patient, cfg.ventilator};
    // The motion probe is scenario wiring: chest moves when the
    // ventilator says so (it also consults spontaneous breathing).
    devices::XRayMachine xray{
        ctx, "xray1", [&vent] { return vent.chest_moving(); }, cfg.xray};

    vent.set_heartbeat_period(SimDuration::seconds(2));
    xray.set_heartbeat_period(SimDuration::seconds(2));
    vent.start();
    xray.start();

    ice::DeviceRegistry registry;
    registry.add(vent);
    registry.add(xray);

    std::optional<ice::Supervisor> supervisor;
    std::optional<XrayVentSync> app;
    std::optional<ManualCoordinator> manual;

    if (cfg.mode == CoordinationMode::kAutomated) {
        supervisor.emplace(ctx, "supervisor1", registry);
        supervisor->start();
        app.emplace(ctx, "xray_sync", cfg.sync);
        const auto deploy = supervisor->deploy(*app);
        if (!deploy.ok) {
            throw std::runtime_error("xray scenario deploy failed: " +
                                     deploy.error);
        }
    } else {
        manual.emplace(ctx, cfg.manual, sim.rng("manual_coordinator"));
    }

    // Physiology stepping + ground truth.
    sim.schedule_periodic(SimDuration::millis(500), [&] {
        patient.step(0.5);
    });
    sim.schedule_periodic(SimDuration::seconds(1), [&] {
        trace.record("truth/spo2", sim.now(), patient.spo2().as_percent());
    });

    // Procedure requests at fixed intervals.
    for (std::size_t i = 0; i < cfg.procedures; ++i) {
        const SimTime at =
            SimTime::origin() + SimDuration::seconds(30) + cfg.procedure_gap * static_cast<std::int64_t>(i);
        sim.schedule_at(at, [&] {
            if (app) {
                app->request_exposure();
            } else if (manual) {
                manual->run_procedure(vent, xray);
            }
        });
    }

    const SimTime end = SimTime::origin() + SimDuration::seconds(60) +
                        cfg.procedure_gap * static_cast<std::int64_t>(cfg.procedures);
    sim.run_until(end);

    // Collect outcomes.
    XrayScenarioResult r;
    const auto& outcomes = app ? app->outcomes() : manual->outcomes();
    r.procedures = cfg.procedures;
    mcps::sim::RunningStats apnea;
    for (const auto& o : outcomes) {
        if (o.completed) ++r.completed;
        if (o.image_sharp) ++r.sharp_images;
        apnea.add(o.apnea_s);
        r.total_retries += o.command_retries;
    }
    r.sharp_rate = cfg.procedures
                       ? static_cast<double>(r.sharp_images) /
                             static_cast<double>(cfg.procedures)
                       : 0.0;
    r.mean_apnea_s = apnea.mean();
    r.max_apnea_s = apnea.empty() ? 0.0 : apnea.max();
    r.safety_auto_resumes = vent.stats().safety_auto_resumes;
    if (const auto* spo2 = trace.find("truth/spo2"); spo2 && !spo2->empty()) {
        r.min_spo2 = spo2->stats().min();
    }

    if (supervisor) supervisor->stop();
    vent.stop();
    xray.stop();
    if (auto* log = cfg.events) {
        log->emit(mcps::obs::EventKind::kScenarioEnd, sim.now(), "xray",
                  std::to_string(r.completed) + "/" +
                      std::to_string(r.procedures) + "-completed",
                  static_cast<double>(sim.events_dispatched()));
    }
    return r;
}

}  // namespace mcps::core
