/// \file nurse_response.hpp
/// \brief Human-in-the-loop alarm response with fatigue — the outcome
/// half of the smart-alarm argument.
///
/// The paper's motivation for intelligent alarms is not aesthetic:
/// alarm floods desensitize staff, and slower responses to the one true
/// alarm are the harm. This module closes that loop: a NurseResponder
/// listens to a configured alarm topic, dispatches to the bedside after
/// a response delay that *grows with the recent alarm burden* (fatigue),
/// assesses the patient, and administers an opioid antagonist when true
/// respiratory depression is found. Experiment E9 measures the patient
/// outcome difference between nursing staff driven by threshold alarms
/// vs. the fused smart alarm.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "devices/device.hpp"
#include "physio/patient.hpp"

namespace mcps::core {

struct NurseConfig {
    /// Alarm topic pattern that summons the nurse (e.g. "alarm/monitor1"
    /// or "alarm/smart1").
    std::string alarm_topic = "alarm/*";

    /// Dispatch delay at zero fatigue.
    mcps::sim::SimDuration base_response = mcps::sim::SimDuration::minutes(2);
    /// Each alarm heard within the fatigue window multiplies the
    /// response delay by (1 + fatigue_per_alarm), capped below.
    double fatigue_per_alarm = 0.10;
    mcps::sim::SimDuration fatigue_window = mcps::sim::SimDuration::hours(1);
    double max_response_factor = 6.0;
    /// Random spread (lognormal sigma) on each dispatch delay.
    double response_sigma = 0.35;
    /// Desensitization: probability of IGNORING an alarm outright grows
    /// with the recent burden (p = min(max_ignore, ignore_per_alarm *
    /// alarms_in_window)). This is the documented mechanism of alarm
    /// fatigue — not just slower walking, but alarms written off.
    double ignore_per_alarm = 0.025;
    double max_ignore_probability = 0.85;

    /// Time spent assessing at the bedside before acting.
    mcps::sim::SimDuration assessment = mcps::sim::SimDuration::seconds(45);
    /// Bedside assessment criteria: intervene when the patient is
    /// apneic, breathing slower than rescue_rr, visibly desaturated
    /// below rescue_spo2, or hypercapnic above rescue_etco2 (the signs
    /// a clinician actually acts on).
    double rescue_rr = 8.0;
    double rescue_spo2 = 90.0;
    double rescue_etco2 = 55.0;

    /// Pump to pause as part of a rescue ("" = no pump to stop). A real
    /// rescue is "stop the infusion, then antagonize" — without the stop
    /// the patient renarcotizes as the antagonist wears off.
    std::string pump_name = "pump1";
    /// Antagonist parameters passed to Patient::give_antagonist.
    double antagonist_potency = 6.0;
    mcps::sim::SimDuration antagonist_half_life =
        mcps::sim::SimDuration::minutes(25);
    /// Nurse cannot give another dose within this period.
    mcps::sim::SimDuration redose_lockout = mcps::sim::SimDuration::minutes(5);
};

/// Counters + latency stats for the E9 tables.
struct NurseStats {
    std::uint64_t alarms_heard = 0;
    std::uint64_t ignored = 0;  ///< written off due to desensitization
    std::uint64_t dispatches = 0;
    std::uint64_t rescues = 0;       ///< antagonist administered
    std::uint64_t false_trips = 0;   ///< bedside visit, patient fine
    /// Alarm receipt -> bedside arrival, per dispatch (seconds).
    std::vector<double> response_times_s;
    /// Fatigue factor at each dispatch.
    std::vector<double> fatigue_factors;
    /// Alarm receipt -> first RESCUE (seconds); the outcome-relevant
    /// latency (nullopt if no rescue happened).
    std::optional<double> first_rescue_latency_s;
};

/// The responder. Event-driven; needs no periodic stepping.
class NurseResponder {
public:
    NurseResponder(devices::DeviceContext ctx, std::string name,
                   physio::Patient& patient, NurseConfig cfg);

    /// Begin listening for alarms.
    void start();
    void stop();

    [[nodiscard]] const NurseStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const NurseConfig& config() const noexcept { return cfg_; }
    /// Current fatigue multiplier (for tracing).
    [[nodiscard]] double current_fatigue_factor() const;

private:
    void on_alarm(const mcps::net::Message& m);
    void arrive_at_bedside(mcps::sim::SimTime alarm_at);
    void prune_fatigue_window() const;

    devices::DeviceContext ctx_;
    std::string name_;
    physio::Patient& patient_;
    NurseConfig cfg_;
    mcps::sim::RngStream rng_;

    mutable std::deque<mcps::sim::SimTime> recent_alarms_;
    bool dispatched_ = false;
    mcps::sim::SimTime last_rescue_ = mcps::sim::SimTime::origin();
    bool ever_rescued_ = false;
    NurseStats stats_;
    mcps::net::SubscriptionId sub_{};
    bool running_ = false;
};

}  // namespace mcps::core
