#include "smart_alarm.hpp"

#include <algorithm>

namespace mcps::core {

using mcps::sim::SimTime;

std::string_view to_string(AlarmSeverity s) noexcept {
    switch (s) {
        case AlarmSeverity::kAdvisory: return "advisory";
        case AlarmSeverity::kWarning: return "warning";
        case AlarmSeverity::kCritical: return "critical";
    }
    return "unknown";
}

SmartAlarm::SmartAlarm(devices::DeviceContext ctx, std::string name,
                       SmartAlarmConfig cfg)
    : ctx_{ctx}, name_{std::move(name)}, cfg_{std::move(cfg)} {
    if (cfg_.check_period <= mcps::sim::SimDuration::zero()) {
        throw std::invalid_argument("SmartAlarmConfig: check period <= 0");
    }
    if (cfg_.critical_threshold < cfg_.warning_threshold) {
        throw std::invalid_argument(
            "SmartAlarmConfig: critical threshold below warning threshold");
    }
}

void SmartAlarm::start() {
    if (running_) return;
    running_ = true;
    sub_ = ctx_.bus.subscribe(name_, "vitals/" + cfg_.bed + "/*",
                              [this](const mcps::net::Message& m) {
                                  on_vital(m);
                              });
    check_handle_ =
        ctx_.sim.schedule_periodic(cfg_.check_period, [this] { evaluate(); });
}

void SmartAlarm::stop() {
    if (!running_) return;
    running_ = false;
    check_handle_.cancel();
    ctx_.bus.unsubscribe(sub_);
}

void SmartAlarm::on_vital(const mcps::net::Message& m) {
    const auto* v = mcps::net::payload_as<mcps::net::VitalSignPayload>(m);
    if (!v) return;
    metrics_[v->metric] = MetricState{v->value, v->valid, ctx_.sim.now()};
}

bool SmartAlarm::fresh(const MetricState& m) const {
    if (m.updated_at.is_never()) return false;
    return ctx_.sim.now() - m.updated_at <= cfg_.staleness_limit;
}

SmartAlarm::Contribution SmartAlarm::contribution(
    const std::string& metric) const {
    Contribution c;
    const auto it = metrics_.find(metric);
    if (it == metrics_.end() || !fresh(it->second)) return c;
    const double v = it->second.value;
    c.degraded = !it->second.valid;

    if (metric == "spo2") {
        c.points = cfg_.w_spo2 * std::max(0.0, cfg_.spo2_norm - v);
    } else if (metric == "resp_rate") {
        c.points = cfg_.w_rr * std::max(0.0, cfg_.rr_norm - v);
    } else if (metric == "etco2") {
        c.points = cfg_.w_etco2_low * std::max(0.0, cfg_.etco2_low_norm - v) +
                   cfg_.w_etco2_high * std::max(0.0, v - cfg_.etco2_high_norm);
    } else if (metric == "pulse_rate") {
        c.points = cfg_.w_pulse * (std::max(0.0, cfg_.pulse_low - v) +
                                   std::max(0.0, v - cfg_.pulse_high));
    }
    c.abnormal = c.points > 0.5;
    if (c.degraded) c.points *= cfg_.invalid_factor;
    return c;
}

void SmartAlarm::evaluate() {
    const SimTime now = ctx_.sim.now();
    static const std::string kMetrics[] = {"spo2", "resp_rate", "etco2",
                                           "pulse_rate"};

    // Technical alerts for silent channels (distinct from patient alarms;
    // rate-limited per channel).
    for (const auto& metric : kMetrics) {
        const auto it = metrics_.find(metric);
        const bool silent =
            it != metrics_.end() && !fresh(it->second);  // seen once, now quiet
        if (!silent) continue;
        auto lt = last_tech_alert_.find(metric);
        if (lt != last_tech_alert_.end() && now - lt->second < cfg_.rearm) {
            continue;
        }
        last_tech_alert_[metric] = now;
        tech_alerts_.push_back(TechnicalAlert{now, metric});
        ctx_.trace.mark(now, "smart_alarm/" + name_ + "/tech/" + metric);
    }

    // Fused risk score with corroboration weighting.
    Contribution contribs[4];
    int abnormal_count = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        contribs[i] = contribution(kMetrics[i]);
        if (contribs[i].abnormal) ++abnormal_count;
    }
    double score = 0.0;
    double best = -1.0;
    for (std::size_t i = 0; i < 4; ++i) {
        double pts = contribs[i].points;
        if (contribs[i].abnormal && abnormal_count < 2) {
            pts *= cfg_.uncorroborated_factor;  // lone anomaly: discounted
        }
        score += pts;
        if (pts > best) {
            best = pts;
            dominant_ = kMetrics[i];
        }
    }
    score_ = score;
    ctx_.trace.record("smart_alarm/" + name_ + "/score", now, score);

    // Persistence-filtered threshold crossing, critical first.
    auto try_fire = [&](AlarmSeverity sev, double threshold,
                        SimTime& above_since) -> bool {
        if (score >= threshold) {
            if (above_since.is_never()) above_since = now;
            if (now - above_since >= cfg_.persistence) {
                const std::string key = std::string{to_string(sev)};
                auto lf = last_fired_.find(key);
                if (lf == last_fired_.end() || now - lf->second >= cfg_.rearm) {
                    last_fired_[key] = now;
                    alarms_.push_back(AlarmEvent{now, sev, score, dominant_});
                    ctx_.trace.mark(now, "smart_alarm/" + name_ + "/" + key);
                    ctx_.bus.publish(name_, "alarm/" + name_,
                                     mcps::net::StatusPayload{key, dominant_});
                }
                return true;
            }
        } else {
            above_since = SimTime::never();
        }
        return false;
    };

    if (try_fire(AlarmSeverity::kCritical, cfg_.critical_threshold,
                 above_critical_since_)) {
        return;  // critical supersedes warning
    }
    try_fire(AlarmSeverity::kWarning, cfg_.warning_threshold,
             above_warning_since_);
}

}  // namespace mcps::core
