/// \file pca_interlock.hpp
/// \brief The PCA closed-loop safety interlock — the paper's flagship app.
///
/// "A PCA infusion pump that can be stopped by a supervisor when pulse
/// oximetry and capnometry indicate respiratory depression" is the
/// canonical closed-loop MCPS in the DAC'10 vision. This VMD app
/// implements it:
///
///  * subscribes to SpO2 (and in dual-sensor mode EtCO2 + respiratory
///    rate) from the bus,
///  * evaluates a persistence-filtered trigger condition every tick,
///  * on trigger, commands the pump to stop and retries until the pump
///    acknowledges (commands ride the same lossy network as the data),
///  * treats *sensor silence* according to a configurable policy:
///    fail-safe (stop the pump: no data means no safe dosing) or
///    fail-operational (keep going on the last value),
///  * optionally auto-resumes basal infusion once vitals have recovered
///    and held normal for a configurable period.
///
/// The single- vs dual-sensor trigger and fail-safe vs fail-operational
/// policies are the ablations of experiments E1/E2/E8.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "devices/device.hpp"
#include "ice/app.hpp"

namespace mcps::core {

/// Which sensors gate the trigger condition.
enum class InterlockMode {
    kSpO2Only,    ///< single-sensor: pulse oximetry alone
    kDualSensor,  ///< SpO2 + capnometry (EtCO2, respiratory rate)
};

[[nodiscard]] std::string_view to_string(InterlockMode m) noexcept;

/// Reaction to loss of sensor data (staleness beyond the limit).
enum class DataLossPolicy {
    kFailSafe,         ///< stop the pump until data returns
    kFailOperational,  ///< continue on last known values
};

[[nodiscard]] std::string_view to_string(DataLossPolicy p) noexcept;

struct InterlockConfig {
    std::string bed = "bed1";
    InterlockMode mode = InterlockMode::kDualSensor;
    DataLossPolicy data_loss = DataLossPolicy::kFailSafe;

    double spo2_stop = 90.0;   ///< SpO2 below this triggers a stop
    double spo2_warn = 93.0;   ///< warning band used for cross-checks
    double etco2_low = 12.0;   ///< loss of waveform (apnea indicator)
    double etco2_high = 60.0;  ///< hypoventilation indicator
    double rr_low = 8.0;       ///< bradypnea indicator

    /// Trigger condition must hold this long before a stop is issued
    /// (rejects single-sample noise).
    mcps::sim::SimDuration persistence = mcps::sim::SimDuration::seconds(10);
    /// Evaluation tick.
    mcps::sim::SimDuration check_period = mcps::sim::SimDuration::seconds(1);
    /// Data older than this counts as lost.
    mcps::sim::SimDuration staleness_limit = mcps::sim::SimDuration::seconds(12);
    /// Unacknowledged stop commands are re-sent at this interval.
    mcps::sim::SimDuration command_retry = mcps::sim::SimDuration::seconds(2);

    bool auto_resume = true;
    /// Vitals must be normal this long before auto-resume.
    mcps::sim::SimDuration recovery_hold = mcps::sim::SimDuration::minutes(5);
};

/// Interlock decision state.
enum class InterlockState {
    kMonitoring,  ///< vitals acceptable, pump permitted to run
    kTriggered,   ///< stop commanded, awaiting/holding pump stopped
    kDataLoss,    ///< stopped due to sensor silence (fail-safe only)
};

[[nodiscard]] std::string_view to_string(InterlockState s) noexcept;

/// Counters + latency for the experiment tables.
struct InterlockStats {
    std::uint64_t stops_issued = 0;       ///< distinct stop episodes
    std::uint64_t stop_commands_sent = 0; ///< including retries
    std::uint64_t data_loss_stops = 0;
    std::uint64_t resumes_issued = 0;
    std::uint64_t acks_received = 0;
    /// Trigger-condition onset to pump ack, last episode (ms).
    std::optional<double> last_stop_latency_ms;
};

/// The interlock app. Binding order: pump, oximeter[, capnometer].
class PcaInterlock : public ice::VmdApp {
public:
    PcaInterlock(devices::DeviceContext ctx, std::string name,
                 InterlockConfig cfg);

    [[nodiscard]] std::vector<ice::Requirement> requirements() const override;
    void bind(const std::vector<ice::DeviceDescriptor>& devices) override;
    void on_app_start() override;
    void on_app_stop() override;
    void on_device_lost(const std::string& device_name) override;
    void on_device_recovered(const std::string& device_name) override;

    [[nodiscard]] InterlockState state() const noexcept { return state_; }
    [[nodiscard]] const InterlockStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const InterlockConfig& config() const noexcept { return cfg_; }
    /// Name of the pump this app controls (empty before bind()).
    [[nodiscard]] const std::string& pump_name() const noexcept {
        return pump_name_;
    }

private:
    struct MetricState {
        double value = 0.0;
        bool valid = true;
        mcps::sim::SimTime updated_at = mcps::sim::SimTime::never();
    };

    void on_vital(const mcps::net::Message& m);
    void on_ack(const mcps::net::Message& m);
    void check();
    [[nodiscard]] bool metric_fresh(const std::string& metric) const;
    [[nodiscard]] std::optional<double> metric_value(
        const std::string& metric) const;
    /// True if the trigger condition (respiratory depression) holds now.
    [[nodiscard]] bool condition_now() const;
    /// True if all gating vitals are in the normal band now.
    [[nodiscard]] bool vitals_normal_now() const;
    void issue_stop(const std::string& why);
    void issue_resume();
    void send_pending_command();

    devices::DeviceContext ctx_;
    InterlockConfig cfg_;
    std::string pump_name_;
    std::string oximeter_name_;
    std::string capnometer_name_;

    InterlockState state_ = InterlockState::kMonitoring;
    std::map<std::string, MetricState> metrics_;
    mcps::sim::SimTime condition_since_ = mcps::sim::SimTime::never();
    mcps::sim::SimTime normal_since_ = mcps::sim::SimTime::never();
    mcps::sim::SimTime trigger_onset_ = mcps::sim::SimTime::never();
    enum class PendingCmd { kNone, kStop, kResume };
    PendingCmd pending_cmd_ = PendingCmd::kNone;
    std::uint64_t pending_command_seq_ = 0;
    std::uint64_t next_command_seq_ = 1;
    bool device_lost_active_ = false;

    InterlockStats stats_;
    mcps::sim::EventHandle check_handle_;
    mcps::sim::EventHandle retry_handle_;
    std::vector<mcps::net::SubscriptionId> subs_;
};

}  // namespace mcps::core
