#include "pca_scenario.hpp"

#include <cmath>

#include "ice/ice.hpp"

namespace mcps::core {

using mcps::sim::SimDuration;
using mcps::sim::SimTime;

struct PcaScenario::Impl {
    PcaScenarioConfig cfg;

    mcps::sim::Simulation sim;
    mcps::sim::TraceRecorder trace;
    net::Bus bus;
    physio::Patient patient;
    physio::DemandModel demand;

    devices::DeviceContext ctx;
    devices::GpcaPump pump;
    devices::PulseOximeter oximeter;
    devices::Capnometer capnometer;
    std::optional<devices::BedsideMonitor> monitor;
    std::optional<SmartAlarm> smart;

    ice::DeviceRegistry registry;
    std::optional<ice::Supervisor> supervisor;
    std::optional<PcaInterlock> interlock;

    mcps::sim::RunningStats pain_stats;
    bool hook_fired = false;

    explicit Impl(PcaScenarioConfig c)
        : cfg{std::move(c)},
          sim{cfg.seed},
          bus{sim, cfg.channel},
          patient{cfg.patient},
          demand{make_demand(cfg), sim.rng("demand")},
          ctx{sim, bus, trace, cfg.events},
          pump{ctx, "pump1", patient, cfg.prescription},
          oximeter{ctx, "oxi1", patient, cfg.oximeter},
          capnometer{ctx, "cap1", patient, cfg.capnometer} {
        bus.set_event_log(cfg.events);
        if (cfg.with_monitor) monitor.emplace(ctx, "monitor1", cfg.monitor);
        if (cfg.with_smart_alarm) {
            smart.emplace(ctx, "smart1", cfg.smart_alarm);
        }
    }

    static physio::DemandParameters make_demand(const PcaScenarioConfig& c) {
        physio::DemandParameters d = c.demand;
        d.proxy_presses = (c.demand_mode == DemandMode::kProxy);
        return d;
    }
};

PcaScenario::PcaScenario(PcaScenarioConfig cfg)
    : impl_{std::make_unique<Impl>(std::move(cfg))} {
    auto& im = *impl_;
    const auto& c = im.cfg;

    if (auto* log = c.events) {
        log->emit(mcps::obs::EventKind::kScenarioStart, im.sim.now(), "pca",
                  c.interlock ? "closed-loop" : "open-loop",
                  static_cast<double>(c.seed));
    }

    // Heartbeats for supervisor liveness monitoring.
    im.pump.set_heartbeat_period(SimDuration::seconds(2));
    im.oximeter.set_heartbeat_period(SimDuration::seconds(2));
    im.capnometer.set_heartbeat_period(SimDuration::seconds(2));

    im.pump.start();
    im.oximeter.start();
    im.capnometer.start();
    if (im.monitor) im.monitor->start();
    if (im.smart) im.smart->start();

    im.registry.add(im.pump);
    im.registry.add(im.oximeter);
    im.registry.add(im.capnometer);

    if (c.interlock) {
        im.supervisor.emplace(im.ctx, "supervisor1", im.registry);
        im.supervisor->start();
        im.interlock.emplace(im.ctx, "pca_interlock", *c.interlock);
        const auto deploy = im.supervisor->deploy(*im.interlock);
        if (!deploy.ok) {
            throw std::runtime_error("PcaScenario: interlock deploy failed: " +
                                     deploy.error);
        }
    }

    // Physiology + demand + ground-truth tracing loop.
    im.sim.schedule_periodic(
        c.patient_step,
        [this] {
            auto& im2 = *impl_;
            const double dt = im2.cfg.patient_step.to_seconds();
            im2.patient.step(dt);

            // Patient (or proxy) presses the demand button.
            const double suppression = 1.0 - im2.patient.respiratory_drive();
            if (im2.demand.poll_press(dt, im2.patient.pk().effect_site(),
                                      suppression)) {
                im2.pump.press_button();
            }
            im2.pain_stats.add(
                im2.demand.pain(im2.patient.pk().effect_site()));
        },
        mcps::sim::EventPriority::kEarly);

    // 1 Hz ground-truth recorder (separate from sensor readings).
    im.sim.schedule_periodic(
        SimDuration::seconds(1),
        [this] {
            auto& im2 = *impl_;
            const SimTime now = im2.sim.now();
            im2.trace.record("truth/spo2", now,
                             im2.patient.spo2().as_percent());
            im2.trace.record("truth/resp_rate", now,
                             im2.patient.resp_rate().as_per_minute());
            im2.trace.record("truth/etco2", now,
                             im2.patient.etco2().as_mmhg());
            im2.trace.record("truth/apneic", now,
                             im2.patient.is_apneic() ? 1.0 : 0.0);
            im2.trace.record("truth/effect_site", now,
                             im2.patient.pk().effect_site().as_ng_per_ml());
            im2.trace.record("pump/delivering", now,
                             im2.pump.delivering() ? 1.0 : 0.0);
        },
        mcps::sim::EventPriority::kLate);

    // Optional mid-run hook (fault injection).
    if (im.cfg.mid_run_hook && !im.cfg.hook_at.is_never()) {
        im.sim.schedule_at(im.cfg.hook_at, [this] {
            impl_->hook_fired = true;
            impl_->cfg.mid_run_hook(*this);
        });
    }
}

PcaScenario::~PcaScenario() = default;

mcps::sim::Simulation& PcaScenario::simulation() { return impl_->sim; }
physio::Patient& PcaScenario::patient() { return impl_->patient; }
devices::GpcaPump& PcaScenario::pump() { return impl_->pump; }
devices::PulseOximeter& PcaScenario::oximeter() { return impl_->oximeter; }
devices::Capnometer& PcaScenario::capnometer() { return impl_->capnometer; }
net::Bus& PcaScenario::bus() { return impl_->bus; }
mcps::sim::TraceRecorder& PcaScenario::trace() { return impl_->trace; }
PcaInterlock* PcaScenario::interlock() {
    return impl_->interlock ? &*impl_->interlock : nullptr;
}
SmartAlarm* PcaScenario::smart_alarm() {
    return impl_->smart ? &*impl_->smart : nullptr;
}
devices::BedsideMonitor* PcaScenario::monitor() {
    return impl_->monitor ? &*impl_->monitor : nullptr;
}

PcaScenarioResult PcaScenario::run() {
    auto& im = *impl_;
    const SimTime end = SimTime::at(im.cfg.duration);
    im.sim.run_until(end);

    PcaScenarioResult r;
    const auto* spo2 = im.trace.find("truth/spo2");
    if (spo2 && !spo2->empty()) {
        r.min_spo2 = spo2->stats().min();
        r.time_spo2_below_90_s =
            spo2->time_below(SimTime::origin(), end, 90.0).to_seconds();
        r.time_spo2_below_85_s =
            spo2->time_below(SimTime::origin(), end, 85.0).to_seconds();
        r.severe_hypoxemia = r.min_spo2 < 85.0;
        if (auto onset = spo2->first_time_where(
                SimTime::origin(), [](double v) { return v < 90.0; })) {
            r.hypoxia_onset_s = onset->to_seconds();
            // Detection latency: onset -> first instant the pump is
            // observed not delivering afterwards.
            if (const auto* deliv = im.trace.find("pump/delivering")) {
                if (auto stopped = deliv->first_time_where(
                        *onset, [](double v) { return v < 0.5; })) {
                    r.detection_latency_s =
                        (*stopped - *onset).to_seconds();
                }
            }
        }
    }
    if (const auto* apn = im.trace.find("truth/apneic")) {
        r.time_apneic_s =
            apn->time_above(SimTime::origin(), end, 0.5).to_seconds();
    }

    r.mean_pain = im.pain_stats.mean();
    r.total_drug_mg = im.pump.stats().total_delivered.as_mg();
    r.pump = im.pump.stats();
    if (im.interlock) r.interlock = im.interlock->stats();
    if (im.monitor) r.monitor_alarm_count = im.monitor->alarms().size();
    if (im.smart) {
        r.smart_alarm_count = im.smart->alarms().size();
        for (const auto& a : im.smart->alarms()) {
            if (a.severity == AlarmSeverity::kCritical) {
                ++r.smart_critical_count;
            }
        }
    }
    r.events_dispatched = im.sim.events_dispatched();
    if (auto* log = im.cfg.events) {
        log->emit(mcps::obs::EventKind::kScenarioEnd, im.sim.now(), "pca",
                  r.severe_hypoxemia ? "severe-hypoxemia" : "ok",
                  static_cast<double>(r.events_dispatched));
    }
    return r;
}

PcaScenarioResult run_pca_scenario(const PcaScenarioConfig& cfg) {
    PcaScenario scenario{cfg};
    return scenario.run();
}

}  // namespace mcps::core
