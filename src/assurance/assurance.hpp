/// \file assurance.hpp
/// \brief Umbrella header for the mcps_assurance certification-artifact
/// library (GSN assurance cases + hazard log).

#pragma once

#include "gsn.hpp"     // IWYU pragma: export
#include "hazard.hpp"  // IWYU pragma: export
