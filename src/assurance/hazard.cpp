#include "hazard.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcps::assurance {

std::string_view to_string(Severity s) noexcept {
    switch (s) {
        case Severity::kNegligible: return "negligible";
        case Severity::kMinor: return "minor";
        case Severity::kSerious: return "serious";
        case Severity::kCritical: return "critical";
        case Severity::kCatastrophic: return "catastrophic";
    }
    return "unknown";
}

std::string_view to_string(Likelihood l) noexcept {
    switch (l) {
        case Likelihood::kIncredible: return "incredible";
        case Likelihood::kImprobable: return "improbable";
        case Likelihood::kRemote: return "remote";
        case Likelihood::kOccasional: return "occasional";
        case Likelihood::kFrequent: return "frequent";
    }
    return "unknown";
}

std::string_view to_string(RiskClass r) noexcept {
    switch (r) {
        case RiskClass::kAcceptable: return "acceptable";
        case RiskClass::kTolerable: return "tolerable";
        case RiskClass::kUndesirable: return "undesirable";
        case RiskClass::kIntolerable: return "intolerable";
    }
    return "unknown";
}

RiskClass classify(Severity s, Likelihood l) noexcept {
    const int score =
        static_cast<int>(s) * static_cast<int>(l);  // 1..25
    if (score >= 15) return RiskClass::kIntolerable;
    if (score >= 10) return RiskClass::kUndesirable;
    if (score >= 5) return RiskClass::kTolerable;
    return RiskClass::kAcceptable;
}

RiskClass Hazard::residual_risk() const noexcept {
    Likelihood best = initial_likelihood;
    for (const auto& m : mitigations) {
        best = std::min(best, m.residual_likelihood);
    }
    return classify(severity, best);
}

void HazardLog::add(Hazard h) {
    if (h.id.empty()) throw std::invalid_argument("HazardLog: empty id");
    if (find(h.id)) {
        throw std::invalid_argument("HazardLog: duplicate hazard '" + h.id +
                                    "'");
    }
    hazards_.push_back(std::move(h));
}

const Hazard* HazardLog::find(const std::string& id) const {
    const auto it = std::find_if(hazards_.begin(), hazards_.end(),
                                 [&](const Hazard& h) { return h.id == id; });
    return it == hazards_.end() ? nullptr : &*it;
}

std::vector<std::string> HazardLog::open_risks() const {
    std::vector<std::string> out;
    for (const auto& h : hazards_) {
        const RiskClass r = h.residual_risk();
        if (r == RiskClass::kUndesirable || r == RiskClass::kIntolerable) {
            out.push_back(h.id);
        }
    }
    return out;
}

bool HazardLog::all_controlled() const { return open_risks().empty(); }

std::string HazardLog::to_text() const {
    std::string out = "id\tseverity\tinitial\tresidual\tdescription\n";
    for (const auto& h : hazards_) {
        out += h.id + "\t" + std::string{to_string(h.severity)} + "\t" +
               std::string{to_string(h.initial_risk())} + "\t" +
               std::string{to_string(h.residual_risk())} + "\t" +
               h.description + "\n";
    }
    return out;
}

HazardLog build_gpca_hazard_log() {
    HazardLog log;

    Hazard h1;
    h1.id = "H1";
    h1.description = "Opioid overdose causes respiratory depression";
    h1.cause = "Bolus stacking / PCA-by-proxy / patient sensitivity";
    h1.severity = Severity::kCatastrophic;
    h1.initial_likelihood = Likelihood::kOccasional;
    h1.mitigations.push_back(
        {"Pump-local lockout + hourly cap (R1/R2)", Likelihood::kRemote,
         "devices::GpcaPump"});
    h1.mitigations.push_back(
        {"Closed-loop dual-sensor interlock (defense in depth with the "
         "pump-local lockout)",
         Likelihood::kIncredible, "core::PcaInterlock"});
    log.add(h1);

    Hazard h2;
    h2.id = "H2";
    h2.description = "Interlock blinded by sensor dropout or artifact";
    h2.cause = "Probe-off, motion artifact, cannula displacement";
    h2.severity = Severity::kCritical;
    h2.initial_likelihood = Likelihood::kFrequent;
    h2.mitigations.push_back(
        {"Fail-safe stop on data staleness", Likelihood::kImprobable,
         "core::DataLossPolicy::kFailSafe"});
    log.add(h2);

    Hazard h3;
    h3.id = "H3";
    h3.description = "Stop command lost or delayed by the network";
    h3.cause = "Packet loss, congestion, gateway outage";
    h3.severity = Severity::kCritical;
    h3.initial_likelihood = Likelihood::kOccasional;
    h3.mitigations.push_back(
        {"Acknowledged commands with retry", Likelihood::kRemote,
         "core::PcaInterlock command_retry"});
    h3.mitigations.push_back(
        {"Supervisor heartbeat liveness monitoring", Likelihood::kImprobable,
         "ice::Supervisor"});
    log.add(h3);

    Hazard h4;
    h4.id = "H4";
    h4.description = "Ventilator left paused after X-ray procedure";
    h4.cause = "Operator distraction / coordinator crash mid-procedure";
    h4.severity = Severity::kCatastrophic;
    h4.initial_likelihood = Likelihood::kOccasional;
    h4.mitigations.push_back(
        {"Device-local max-pause auto-resume (V1)", Likelihood::kIncredible,
         "devices::Ventilator"});
    log.add(h4);

    Hazard h5;
    h5.id = "H5";
    h5.description = "Alarm fatigue from false threshold alarms";
    h5.cause = "Single-channel artifacts crossing static thresholds";
    h5.severity = Severity::kSerious;
    h5.initial_likelihood = Likelihood::kFrequent;
    h5.mitigations.push_back(
        {"Fused multi-parameter smart alarm", Likelihood::kRemote,
         "core::SmartAlarm"});
    log.add(h5);

    return log;
}

}  // namespace mcps::assurance
