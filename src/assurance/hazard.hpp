/// \file hazard.hpp
/// \brief Hazard log with severity×likelihood risk ranking.
///
/// The front end of the certification workflow: hazards are identified,
/// ranked on a standard 5×5 risk matrix, linked to mitigations, and the
/// residual risk is tracked. The GPCA example hazard log seeds the
/// assurance-case goals in gsn.hpp.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcps::assurance {

enum class Severity : std::uint8_t {
    kNegligible = 1,
    kMinor = 2,
    kSerious = 3,
    kCritical = 4,
    kCatastrophic = 5,
};

enum class Likelihood : std::uint8_t {
    kIncredible = 1,
    kImprobable = 2,
    kRemote = 3,
    kOccasional = 4,
    kFrequent = 5,
};

[[nodiscard]] std::string_view to_string(Severity s) noexcept;
[[nodiscard]] std::string_view to_string(Likelihood l) noexcept;

/// Risk class resulting from the 5x5 matrix.
enum class RiskClass { kAcceptable, kTolerable, kUndesirable, kIntolerable };

[[nodiscard]] std::string_view to_string(RiskClass r) noexcept;

/// Standard matrix mapping: product severity*likelihood banded.
[[nodiscard]] RiskClass classify(Severity s, Likelihood l) noexcept;

struct Mitigation {
    std::string description;
    /// Post-mitigation likelihood.
    Likelihood residual_likelihood = Likelihood::kRemote;
    /// Link to the mechanism implementing it (module, app, device rule).
    std::string implemented_by;
};

struct Hazard {
    std::string id;           ///< "H1", "H2", ...
    std::string description;
    std::string cause;
    Severity severity = Severity::kSerious;
    Likelihood initial_likelihood = Likelihood::kOccasional;
    std::vector<Mitigation> mitigations;

    [[nodiscard]] RiskClass initial_risk() const noexcept {
        return classify(severity, initial_likelihood);
    }
    /// Risk after the best (lowest-likelihood) mitigation; initial risk
    /// if unmitigated.
    [[nodiscard]] RiskClass residual_risk() const noexcept;
};

class HazardLog {
public:
    /// \throws std::invalid_argument on duplicate id.
    void add(Hazard h);
    [[nodiscard]] const Hazard* find(const std::string& id) const;
    [[nodiscard]] const std::vector<Hazard>& hazards() const noexcept {
        return hazards_;
    }

    [[nodiscard]] std::size_t count() const noexcept { return hazards_.size(); }
    /// Hazards whose residual risk is still Undesirable/Intolerable.
    [[nodiscard]] std::vector<std::string> open_risks() const;
    /// True iff every hazard's residual risk is Tolerable or better.
    [[nodiscard]] bool all_controlled() const;

    /// Tab-separated summary table (id, severity, initial, residual).
    [[nodiscard]] std::string to_text() const;

private:
    std::vector<Hazard> hazards_;
};

/// The PCA/ventilator hazard log the paper's scenarios imply; used by
/// tests and the assurance example.
[[nodiscard]] HazardLog build_gpca_hazard_log();

}  // namespace mcps::assurance
