/// \file gsn.hpp
/// \brief Goal Structuring Notation (GSN) assurance cases.
///
/// The DAC'10 paper's certification thread argues that MCPS approval
/// should rest on explicit assurance cases: structured arguments that
/// decompose a top-level safety goal (via strategies) into sub-goals
/// ultimately supported by solutions (evidence: verification results,
/// test reports, analyses). This library provides the GSN core node
/// types, well-formedness checking, evidence-coverage analysis and
/// renderers, so the verification artifacts produced by src/ta and the
/// test suite can be assembled into a machine-checkable argument.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcps::assurance {

/// GSN node kinds (core standard subset).
enum class NodeKind {
    kGoal,        ///< a claim to be supported
    kStrategy,    ///< how a goal is decomposed
    kSolution,    ///< an item of evidence
    kContext,     ///< scoping information
    kAssumption,  ///< unproven premise (flagged in coverage analysis)
    kJustification,
};

[[nodiscard]] std::string_view to_string(NodeKind k) noexcept;

/// Stable node identifier, unique within one case ("G1", "S2.1", ...).
using NodeId = std::string;

/// The status an evidence item can carry.
enum class EvidenceStatus {
    kPending,   ///< evidence promised but not yet produced
    kAttached,  ///< evidence exists
    kPassed,    ///< evidence exists and supports the claim
    kFailed,    ///< evidence exists and CONTRADICTS the claim
};

[[nodiscard]] std::string_view to_string(EvidenceStatus s) noexcept;

struct Node {
    NodeId id;
    NodeKind kind = NodeKind::kGoal;
    std::string statement;
    /// For solutions: current evidence status and an optional pointer to
    /// the artifact (test name, bench id, verification property).
    EvidenceStatus evidence = EvidenceStatus::kPending;
    std::string artifact;
};

/// Result of a structural + evidential audit of a case.
struct AuditReport {
    bool well_formed = false;
    std::vector<std::string> errors;    ///< structural problems
    std::vector<std::string> warnings;  ///< e.g. assumptions present

    std::size_t goals = 0;
    std::size_t solutions = 0;
    std::size_t undeveloped_goals = 0;  ///< goals with no support
    std::size_t pending_evidence = 0;
    std::size_t failed_evidence = 0;
    /// Fraction of leaf goals transitively supported by kPassed
    /// solutions only.
    double evidence_coverage = 0.0;
    /// True iff well-formed, no failed evidence, no undeveloped goals and
    /// full coverage — the "ready to submit" predicate.
    bool certifiable = false;
};

/// A GSN assurance case: a DAG of nodes rooted at one top goal.
class AssuranceCase {
public:
    explicit AssuranceCase(std::string title);

    [[nodiscard]] const std::string& title() const noexcept { return title_; }

    /// Add a node. \throws std::invalid_argument on duplicate id.
    void add(Node node);
    /// Convenience builders.
    void add_goal(NodeId id, std::string statement);
    void add_strategy(NodeId id, std::string statement);
    void add_solution(NodeId id, std::string statement,
                      std::string artifact = "",
                      EvidenceStatus status = EvidenceStatus::kPending);
    void add_context(NodeId id, std::string statement);
    void add_assumption(NodeId id, std::string statement);

    /// Connect parent -> child ("is supported by" for goal/strategy
    /// children; "in context of" for context-family children).
    /// \throws std::invalid_argument on unknown ids or illegal pairing.
    void link(const NodeId& parent, const NodeId& child);

    /// Update a solution's evidence status (e.g. after a test run).
    /// \throws std::invalid_argument if the node is not a solution.
    void set_evidence(const NodeId& solution, EvidenceStatus status,
                      const std::string& artifact = "");

    [[nodiscard]] const Node* find(const NodeId& id) const;
    [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
    /// All nodes in id order (for whole-case analyses, e.g. the
    /// hazard-coverage linter).
    [[nodiscard]] std::vector<const Node*> all_nodes() const;
    [[nodiscard]] const std::vector<NodeId>& children(const NodeId& id) const;

    /// The root (first goal added). \throws std::logic_error if none.
    [[nodiscard]] const Node& root() const;

    /// Structural audit: single root, acyclic, kind-legal links, every
    /// goal developed, evidence statuses aggregated.
    [[nodiscard]] AuditReport audit() const;

    /// Indented-text rendering of the argument tree.
    [[nodiscard]] std::string to_text() const;
    /// Graphviz DOT rendering.
    [[nodiscard]] std::string to_dot() const;

private:
    void render_text(const NodeId& id, std::size_t depth, std::string& out,
                     std::map<NodeId, bool>& visited) const;

    std::string title_;
    std::map<NodeId, Node> nodes_;
    std::map<NodeId, std::vector<NodeId>> children_;
    std::map<NodeId, std::size_t> parent_count_;
    std::optional<NodeId> root_;
};

/// Build the GPCA closed-loop assurance case skeleton used by the
/// example and tests: top goal "PCA MCPS is acceptably safe" decomposed
/// over hazards, with solution slots for the P1/P2 verification results
/// and the E1/E8 experiment evidence.
[[nodiscard]] AssuranceCase build_gpca_case_skeleton();

}  // namespace mcps::assurance
