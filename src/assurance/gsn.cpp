#include "gsn.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace mcps::assurance {

std::string_view to_string(NodeKind k) noexcept {
    switch (k) {
        case NodeKind::kGoal: return "Goal";
        case NodeKind::kStrategy: return "Strategy";
        case NodeKind::kSolution: return "Solution";
        case NodeKind::kContext: return "Context";
        case NodeKind::kAssumption: return "Assumption";
        case NodeKind::kJustification: return "Justification";
    }
    return "Unknown";
}

std::string_view to_string(EvidenceStatus s) noexcept {
    switch (s) {
        case EvidenceStatus::kPending: return "pending";
        case EvidenceStatus::kAttached: return "attached";
        case EvidenceStatus::kPassed: return "passed";
        case EvidenceStatus::kFailed: return "FAILED";
    }
    return "unknown";
}

AssuranceCase::AssuranceCase(std::string title) : title_{std::move(title)} {}

void AssuranceCase::add(Node node) {
    if (node.id.empty()) {
        throw std::invalid_argument("AssuranceCase: empty node id");
    }
    if (nodes_.contains(node.id)) {
        throw std::invalid_argument("AssuranceCase: duplicate node id '" +
                                    node.id + "'");
    }
    if (node.kind == NodeKind::kGoal && !root_) root_ = node.id;
    const NodeId id = node.id;
    nodes_.emplace(id, std::move(node));
    children_.try_emplace(id);
    parent_count_.try_emplace(id, 0);
}

void AssuranceCase::add_goal(NodeId id, std::string statement) {
    add(Node{std::move(id), NodeKind::kGoal, std::move(statement), {}, {}});
}
void AssuranceCase::add_strategy(NodeId id, std::string statement) {
    add(Node{std::move(id), NodeKind::kStrategy, std::move(statement), {}, {}});
}
void AssuranceCase::add_solution(NodeId id, std::string statement,
                                 std::string artifact, EvidenceStatus status) {
    add(Node{std::move(id), NodeKind::kSolution, std::move(statement), status,
             std::move(artifact)});
}
void AssuranceCase::add_context(NodeId id, std::string statement) {
    add(Node{std::move(id), NodeKind::kContext, std::move(statement), {}, {}});
}
void AssuranceCase::add_assumption(NodeId id, std::string statement) {
    add(Node{std::move(id), NodeKind::kAssumption, std::move(statement), {},
             {}});
}

void AssuranceCase::link(const NodeId& parent, const NodeId& child) {
    const auto pit = nodes_.find(parent);
    const auto cit = nodes_.find(child);
    if (pit == nodes_.end() || cit == nodes_.end()) {
        throw std::invalid_argument("AssuranceCase::link: unknown node");
    }
    const NodeKind pk = pit->second.kind;
    const NodeKind ck = cit->second.kind;
    // GSN legality: goals are supported by strategies/goals/solutions;
    // strategies by goals/solutions. Context-family nodes may hang off
    // goals or strategies. Solutions are leaves.
    const bool ctx_child = ck == NodeKind::kContext ||
                           ck == NodeKind::kAssumption ||
                           ck == NodeKind::kJustification;
    const bool legal =
        (pk == NodeKind::kGoal &&
         (ck == NodeKind::kStrategy || ck == NodeKind::kGoal ||
          ck == NodeKind::kSolution || ctx_child)) ||
        (pk == NodeKind::kStrategy &&
         (ck == NodeKind::kGoal || ck == NodeKind::kSolution || ctx_child));
    if (!legal) {
        throw std::invalid_argument(
            std::string{"AssuranceCase::link: illegal "} +
            std::string{to_string(pk)} + " -> " + std::string{to_string(ck)});
    }
    children_[parent].push_back(child);
    ++parent_count_[child];
}

void AssuranceCase::set_evidence(const NodeId& solution, EvidenceStatus status,
                                 const std::string& artifact) {
    const auto it = nodes_.find(solution);
    if (it == nodes_.end() || it->second.kind != NodeKind::kSolution) {
        throw std::invalid_argument("set_evidence: '" + solution +
                                    "' is not a solution node");
    }
    it->second.evidence = status;
    if (!artifact.empty()) it->second.artifact = artifact;
}

const Node* AssuranceCase::find(const NodeId& id) const {
    const auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<const Node*> AssuranceCase::all_nodes() const {
    std::vector<const Node*> out;
    out.reserve(nodes_.size());
    for (const auto& [id, node] : nodes_) out.push_back(&node);
    return out;
}

const std::vector<NodeId>& AssuranceCase::children(const NodeId& id) const {
    static const std::vector<NodeId> kEmpty;
    const auto it = children_.find(id);
    return it == children_.end() ? kEmpty : it->second;
}

const Node& AssuranceCase::root() const {
    if (!root_) throw std::logic_error("AssuranceCase: no root goal");
    return nodes_.at(*root_);
}

namespace {
/// Post-order: does this subtree support its goal with only-passed
/// evidence? Returns nullopt for nodes that don't bear on support
/// (context family).
enum class Support { kSupported, kUnsupported };
}  // namespace

AuditReport AssuranceCase::audit() const {
    AuditReport rep;
    if (!root_) {
        rep.errors.push_back("no root goal");
        return rep;
    }

    // Cycle check (DFS with colors) + reachability from root.
    std::map<NodeId, int> color;  // 0 white, 1 gray, 2 black
    bool cyclic = false;
    auto dfs = [&](auto&& self, const NodeId& id) -> void {
        color[id] = 1;
        for (const auto& c : children(id)) {
            if (color[c] == 1) {
                cyclic = true;
                continue;
            }
            if (color[c] == 0) self(self, c);
        }
        color[id] = 2;
    };
    dfs(dfs, *root_);
    if (cyclic) rep.errors.push_back("argument graph is cyclic");

    // Orphans: nodes not reachable from the root.
    for (const auto& [id, node] : nodes_) {
        if (color[id] == 0) {
            rep.errors.push_back("node '" + id + "' unreachable from root");
        }
    }

    // Pure support analysis (no side effects, safe to call repeatedly).
    auto support = [&](auto&& self, const NodeId& id) -> bool {
        const Node& n = nodes_.at(id);
        switch (n.kind) {
            case NodeKind::kSolution:
                return n.evidence == EvidenceStatus::kPassed;
            case NodeKind::kGoal:
            case NodeKind::kStrategy: {
                bool any_support_child = false;
                bool all_ok = true;
                for (const auto& c : children(id)) {
                    const NodeKind ck = nodes_.at(c).kind;
                    if (ck == NodeKind::kContext ||
                        ck == NodeKind::kAssumption ||
                        ck == NodeKind::kJustification) {
                        continue;
                    }
                    any_support_child = true;
                    all_ok = self(self, c) && all_ok;
                }
                return any_support_child && all_ok;
            }
            default:
                return true;  // context family does not gate support
        }
    };

    // Undeveloped goals: goals with no supporting (non-context) child.
    for (const auto& [id, node] : nodes_) {
        if (node.kind != NodeKind::kGoal) continue;
        bool developed = false;
        for (const auto& c : children(id)) {
            const NodeKind ck = nodes_.at(c).kind;
            if (ck != NodeKind::kContext && ck != NodeKind::kAssumption &&
                ck != NodeKind::kJustification) {
                developed = true;
            }
        }
        if (!developed) ++rep.undeveloped_goals;
    }

    for (const auto& [id, node] : nodes_) {
        switch (node.kind) {
            case NodeKind::kGoal:
                ++rep.goals;
                break;
            case NodeKind::kSolution:
                ++rep.solutions;
                if (node.evidence == EvidenceStatus::kPending) {
                    ++rep.pending_evidence;
                }
                if (node.evidence == EvidenceStatus::kFailed) {
                    ++rep.failed_evidence;
                    rep.errors.push_back("solution '" + id +
                                         "' carries FAILED evidence");
                }
                break;
            case NodeKind::kAssumption:
                rep.warnings.push_back("assumption '" + id +
                                       "' remains unproven");
                break;
            default:
                break;
        }
    }

    // Coverage: fraction of goals whose subtree is fully supported.
    std::size_t supported_goals = 0;
    for (const auto& [id, node] : nodes_) {
        if (node.kind != NodeKind::kGoal) continue;
        if (support(support, id)) ++supported_goals;
    }
    rep.evidence_coverage =
        rep.goals ? static_cast<double>(supported_goals) /
                        static_cast<double>(rep.goals)
                  : 0.0;

    rep.well_formed = rep.errors.empty();
    rep.certifiable = rep.well_formed && rep.failed_evidence == 0 &&
                      rep.undeveloped_goals == 0 &&
                      rep.evidence_coverage >= 1.0;
    return rep;
}

void AssuranceCase::render_text(const NodeId& id, std::size_t depth,
                                std::string& out,
                                std::map<NodeId, bool>& visited) const {
    const Node& n = nodes_.at(id);
    out.append(depth * 2, ' ');
    out += "[" + std::string{to_string(n.kind)} + " " + n.id + "] " +
           n.statement;
    if (n.kind == NodeKind::kSolution) {
        out += " {" + std::string{to_string(n.evidence)};
        if (!n.artifact.empty()) out += ": " + n.artifact;
        out += "}";
    }
    out += '\n';
    if (visited[id]) return;  // shared subtree: print head only once more
    visited[id] = true;
    for (const auto& c : children(id)) {
        render_text(c, depth + 1, out, visited);
    }
}

std::string AssuranceCase::to_text() const {
    std::string out = "Assurance case: " + title_ + "\n";
    if (root_) {
        std::map<NodeId, bool> visited;
        render_text(*root_, 0, out, visited);
    }
    return out;
}

std::string AssuranceCase::to_dot() const {
    std::string out = "digraph gsn {\n  rankdir=TB;\n";
    for (const auto& [id, n] : nodes_) {
        std::string shape = "box";
        switch (n.kind) {
            case NodeKind::kGoal: shape = "box"; break;
            case NodeKind::kStrategy: shape = "parallelogram"; break;
            case NodeKind::kSolution: shape = "circle"; break;
            default: shape = "ellipse"; break;
        }
        out += "  \"" + id + "\" [shape=" + shape + ", label=\"" + id + "\\n" +
               n.statement + "\"];\n";
    }
    for (const auto& [parent, kids] : children_) {
        for (const auto& c : kids) {
            out += "  \"" + parent + "\" -> \"" + c + "\";\n";
        }
    }
    out += "}\n";
    return out;
}

AssuranceCase build_gpca_case_skeleton() {
    AssuranceCase ac{"GPCA closed-loop PCA safety"};
    ac.add_goal("G1", "The closed-loop PCA MCPS is acceptably safe in use");
    ac.add_context("C1", "Adult postoperative ward, ICE-assembled at bedside");
    ac.add_strategy("S1", "Argue over identified respiratory-depression hazards");
    ac.link("G1", "C1");
    ac.link("G1", "S1");

    ac.add_goal("G2", "The pump never delivers a bolus during lockout (R1)");
    ac.add_goal("G3", "Overdose progression is arrested within the deadline");
    ac.add_goal("G4", "Sensor/data loss cannot silently disable protection");
    ac.link("S1", "G2");
    ac.link("S1", "G3");
    ac.link("S1", "G4");

    ac.add_solution("Sn1", "Model checking of pump lockout model (P1)",
                    "ta::verify_gpca_suite/lockout");
    ac.add_solution("Sn2", "Model checking of closed-loop response (P2)",
                    "ta::verify_gpca_suite/response");
    ac.add_solution("Sn3", "Population simulation campaign (E1)",
                    "bench_e1_pca_interlock");
    ac.add_solution("Sn4", "Fault-injection campaign (E8)",
                    "bench_e8_fault_injection");
    ac.link("G2", "Sn1");
    ac.link("G3", "Sn2");
    ac.link("G3", "Sn3");
    ac.link("G4", "Sn4");

    ac.add_assumption("A1", "Clinical thresholds follow ward policy");
    ac.link("G3", "A1");
    return ac;
}

}  // namespace mcps::assurance
