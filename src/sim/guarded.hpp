/// \file guarded.hpp
/// \brief Lock-discipline annotations checked statically by CONC1
/// (src/analysis/conc_lint.hpp, `mcps_analyze --scan-conc`).
///
/// The macros expand to nothing: they are machine-readable
/// documentation, not behavior. The CONC1 pass reads them lexically
/// from comment-stripped source and checks three properties:
///
///   MCPS_GUARDED_BY(mu)
///     Trails a data-member declaration. Every mention of the member
///     inside the declaring class's method bodies (constructors and
///     destructors excepted — they run before/after sharing) must be
///     lexically inside a std::lock_guard / std::unique_lock /
///     std::scoped_lock scope whose mutex expression ends in `mu`, or
///     inside a method annotated MCPS_REQUIRES(mu).
///
///   MCPS_REQUIRES(mu)
///     Trails a member-function declaration: the caller holds `mu`
///     for the whole call ("_locked" helper idiom).
///
///   MCPS_LOCK_ORDER(outer, inner)
///     File-scope declaration of one edge in the global lock-order
///     DAG: `outer` may be held while acquiring `inner`. Every
///     lexically nested acquisition must match a declared edge
///     (matching on the last `::` component of each side); acquiring
///     against a declared edge is an order violation, and the declared
///     edge set itself must stay acyclic. Edges that are invisible to
///     a lexical scan (a lock held across a call into another class)
///     are still declared here so the DAG stays the single audited
///     record of permitted nesting.
///
/// Findings are waived like every source rule:
///   // mcps-analyze: allow(CONC1): reason        (this or next line)
///   // mcps-analyze: allow-file(CONC1): reason   (whole file)
///
/// The annotations mirror clang's Thread Safety Analysis attributes
/// but stay plain macros so the GCC-only toolchain compiles them away
/// and the checker needs no compiler plugin.

#pragma once

#define MCPS_GUARDED_BY(mu)
#define MCPS_REQUIRES(mu)
#define MCPS_LOCK_ORDER(outer, inner) static_assert(true, "lock-order edge")
