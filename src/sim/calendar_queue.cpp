#include "calendar_queue.hpp"

#include <algorithm>
#include <limits>

namespace mcps::sim {

namespace {
constexpr std::size_t kMinBuckets = 16;
/// Grow when average occupancy would exceed 2. Growth quadruples the
/// bucket count: every resize re-links the whole population, so a 4x
/// step caps total relink work at ~1.33x the peak population (vs 2x
/// for doubling). The queue never shrinks within a run — a shrink is
/// another full relink sweep, and the only thing retained by staying
/// large is the heads array (4 bytes per bucket), which is bounded by
/// the run's peak event population.
constexpr std::size_t kGrowOccupancy = 2;
constexpr std::size_t kGrowFactor = 4;
}  // namespace

CalendarQueue::CalendarQueue(EventArena& arena)
    : arena_{&arena}, heads_(kMinBuckets, kNoEvent), mask_{kMinBuckets - 1} {}

void CalendarQueue::push(std::uint32_t idx) {
    maybe_grow();
    const EventNode& n = arena_->node(idx);
    const Entry e = key_of(n, idx);
    const std::uint64_t q = quot(e.when);
    if (drain_valid_ && q == cursor_) {
        // Same bucket-year as the instant being dispatched (typical for
        // zero-delay follow-ups like ideal-channel bus deliveries).
        // Keep the drain sorted; new events carry fresh (larger)
        // sequence numbers, so this append is O(1) in the common case.
        const auto it = std::upper_bound(
            drain_.begin() + static_cast<std::ptrdiff_t>(drain_head_),
            drain_.end(), e,
            [](const Entry& a, const Entry& b) { return less(a, b); });
        drain_.insert(it, e);
    } else {
        if (q < cursor_) {
            // Rewind: an event landed before the current drain year
            // (possible after the cursor coasted over empty buckets
            // looking for a minimum beyond the run limit).
            flush_drain();
            cursor_ = q;
        }
        link(idx, q);
    }
    ++size_;
}

std::optional<CalendarQueue::Entry> CalendarQueue::pop_if_at_most(
    std::int64_t limit) {
    if (size_ == 0) return std::nullopt;

    if (!drain_valid_ || drain_head_ >= drain_.size()) {
        // Advance the cursor to the next bucket-year holding events.
        // At most one full lap over the buckets; a sparser queue jumps
        // straight to the global minimum year instead of coasting.
        if (drain_valid_) {
            drain_.clear();
            drain_head_ = 0;
            ++cursor_;
            drain_valid_ = false;
        }
        bool found = false;
        for (std::size_t step = 0; step <= mask_; ++step) {
            if (fill_drain()) {
                found = true;
                break;
            }
            ++cursor_;
        }
        if (!found) {
            std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
            for (const std::uint32_t head : heads_) {
                for (std::uint32_t i = head; i != kNoEvent;
                     i = arena_->node(i).next) {
                    best = std::min(best, quot(arena_->node(i).when.ticks()));
                }
            }
            cursor_ = best;
            fill_drain();  // size_ > 0, so this bucket-year is non-empty
        }
        drain_valid_ = true;
    }

    const Entry e = drain_[drain_head_];
    if (e.when > limit) return std::nullopt;
    ++drain_head_;
    if (drain_head_ >= drain_.size()) {
        drain_.clear();
        drain_head_ = 0;
    }
    --size_;
    return e;
}

std::size_t CalendarQueue::compact() {
    std::size_t removed = 0;
    for (std::uint32_t& head : heads_) {
        std::uint32_t* slot = &head;
        while (*slot != kNoEvent) {
            EventNode& n = arena_->node(*slot);
            if ((n.flags & EventNode::kCancelled) != 0) {
                const std::uint32_t idx = *slot;
                *slot = n.next;
                arena_->release(idx);
                ++removed;
            } else {
                slot = &n.next;
            }
        }
    }
    if (drain_valid_ && drain_head_ < drain_.size()) {
        std::size_t w = drain_head_;
        for (std::size_t r = drain_head_; r < drain_.size(); ++r) {
            const Entry e = drain_[r];
            if ((arena_->node(e.idx).flags & EventNode::kCancelled) != 0) {
                arena_->release(e.idx);
                ++removed;
            } else {
                drain_[w++] = e;
            }
        }
        drain_.resize(w);
        if (drain_head_ >= drain_.size()) {
            drain_.clear();
            drain_head_ = 0;
        }
    }
    size_ -= removed;
    ++compactions_;
    tombstones_compacted_ += removed;
    // Every queued tombstone is gone; recomputing (rather than
    // subtracting) self-heals a count left stale by a previous
    // Simulation sharing this arena.
    arena_->slab()->set_cancelled_queued(0);
    return removed;
}

bool CalendarQueue::fill_drain() {
    std::uint32_t* slot = &heads_[static_cast<std::size_t>(cursor_) & mask_];
    while (*slot != kNoEvent) {
        EventNode& n = arena_->node(*slot);
        if (quot(n.when.ticks()) == cursor_) {
            drain_.push_back(key_of(n, *slot));
            *slot = n.next;  // unlink
        } else {
            slot = &n.next;
        }
    }
    if (drain_.empty()) return false;
    if (drain_.size() > 1) {
        std::sort(drain_.begin(), drain_.end(),
                  [](const Entry& a, const Entry& b) { return less(a, b); });
    }
    return true;
}

void CalendarQueue::flush_drain() {
    for (std::size_t i = drain_head_; i < drain_.size(); ++i) {
        const Entry& e = drain_[i];
        link(e.idx, quot(e.when));
    }
    drain_.clear();
    drain_head_ = 0;
    drain_valid_ = false;
}

void CalendarQueue::maybe_grow() {
    if (size_ + 1 > kGrowOccupancy * heads_.size()) {
        resize(heads_.size() * kGrowFactor);
    }
}

void CalendarQueue::resize(std::size_t new_bucket_count) {
    flush_drain();
    // Collect the live chain heads, then re-link every node under the
    // new geometry. No node state is copied — this is pointer churn
    // proportional to the population.
    scratch_.clear();
    scratch_.reserve(size_);
    for (std::uint32_t& head : heads_) {
        std::uint32_t i = head;
        while (i != kNoEvent) {
            scratch_.push_back(i);
            i = arena_->node(i).next;
        }
        head = kNoEvent;
    }
    heads_.assign(new_bucket_count, kNoEvent);
    mask_ = new_bucket_count - 1;

    if (scratch_.empty()) {
        cursor_ = 0;
        width_shift_ = 0;
        return;
    }
    std::int64_t lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t hi = std::numeric_limits<std::int64_t>::min();
    for (const std::uint32_t i : scratch_) {
        const std::int64_t w = arena_->node(i).when.ticks();
        lo = std::min(lo, w);
        hi = std::max(hi, w);
    }
    // Width ~= mean inter-event gap rounded up to a power of two, so
    // quot() is a shift (a 64-bit divide per push/pop was measurable)
    // and expected occupancy stays O(1) while one "year"
    // (nbuckets * width) spans the live horizon. Order never depends
    // on this choice.
    const std::uint64_t ideal = static_cast<std::uint64_t>(hi - lo) /
                                    static_cast<std::uint64_t>(scratch_.size()) +
                                1;
    width_shift_ = 0;
    while ((std::uint64_t{1} << width_shift_) < ideal) ++width_shift_;
    cursor_ = quot(lo);
    for (const std::uint32_t i : scratch_) {
        link(i, quot(arena_->node(i).when.ticks()));
    }
}

}  // namespace mcps::sim
