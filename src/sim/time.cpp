#include "time.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace mcps::sim {

SimDuration SimDuration::from_seconds(double s) {
    if (!std::isfinite(s)) {
        throw std::invalid_argument(
            "SimDuration::from_seconds: non-finite input (" +
            std::to_string(s) + ")");
    }
    return SimDuration::micros(static_cast<std::int64_t>(std::llround(s * 1e6)));
}

SimDuration operator*(SimDuration a, double k) noexcept {
    return SimDuration::micros(
        static_cast<std::int64_t>(std::llround(static_cast<double>(a.ticks()) * k)));
}

std::string SimDuration::to_string() const {
    char buf[64];
    const std::int64_t abs_us = us_ < 0 ? -us_ : us_;
    const char* sign = us_ < 0 ? "-" : "";
    if (abs_us >= 1'000'000) {
        std::snprintf(buf, sizeof buf, "%s%.3fs", sign,
                      static_cast<double>(abs_us) / 1e6);
    } else if (abs_us >= 1'000) {
        std::snprintf(buf, sizeof buf, "%s%.3fms", sign,
                      static_cast<double>(abs_us) / 1e3);
    } else {
        std::snprintf(buf, sizeof buf, "%s%lldus", sign,
                      static_cast<long long>(abs_us));
    }
    return buf;
}

std::string SimTime::to_string() const {
    if (is_never()) return "never";
    const std::int64_t total_ms = us_ / 1000;
    const std::int64_t ms = total_ms % 1000;
    const std::int64_t total_s = total_ms / 1000;
    const std::int64_t s = total_s % 60;
    const std::int64_t m = (total_s / 60) % 60;
    const std::int64_t h = total_s / 3600;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%02lld:%02lld:%02lld.%03lld",
                  static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(s), static_cast<long long>(ms));
    return buf;
}

std::ostream& operator<<(std::ostream& os, SimDuration d) {
    return os << d.to_string();
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.to_string();
}

}  // namespace mcps::sim
