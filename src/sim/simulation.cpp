#include "simulation.hpp"

#include <utility>

namespace mcps::sim {

bool EventHandle::cancel() noexcept {
    if (!state_ || state_->cancelled) return false;
    if (state_->fired && !state_->periodic) return false;
    state_->cancelled = true;
    return true;
}

bool EventHandle::pending() const noexcept {
    if (!state_ || state_->cancelled) return false;
    return state_->periodic || !state_->fired;
}

Simulation::Simulation(std::uint64_t master_seed) : master_seed_{master_seed} {}

EventHandle Simulation::push(SimTime when, EventPriority prio, Callback cb) {
    auto state = std::make_shared<EventHandle::State>();
    queue_.push(QueuedEvent{when, prio, next_seq_++, std::move(cb), state});
    return EventHandle{std::move(state)};
}

EventHandle Simulation::schedule_at(SimTime when, Callback cb,
                                    EventPriority prio) {
    if (when < now_) {
        throw SimulationError("schedule_at: " + when.to_string() +
                              " is before now (" + now_.to_string() + ")");
    }
    if (!cb) throw SimulationError("schedule_at: empty callback");
    return push(when, prio, std::move(cb));
}

EventHandle Simulation::schedule_after(SimDuration delay, Callback cb,
                                       EventPriority prio) {
    if (delay < SimDuration::zero()) {
        throw SimulationError("schedule_after: negative delay " +
                              delay.to_string());
    }
    if (!cb) throw SimulationError("schedule_after: empty callback");
    return push(now_ + delay, prio, std::move(cb));
}

EventHandle Simulation::schedule_periodic(SimDuration period, Callback cb,
                                          EventPriority prio) {
    if (period <= SimDuration::zero()) {
        throw SimulationError("schedule_periodic: period must be positive, got " +
                              period.to_string());
    }
    if (!cb) throw SimulationError("schedule_periodic: empty callback");

    // The chain of firings shares one handle state so a single cancel()
    // silences every future repetition.
    auto state = std::make_shared<EventHandle::State>();
    state->periodic = true;
    // Self-rescheduling closure. It captures `this`, which is safe because
    // the queue lives inside *this and cannot outlive it. The repeater
    // holds only a weak reference to itself; the strong references live in
    // the queued events, so a cancelled chain is freed once its pending
    // event drains (no shared_ptr cycle, P.8).
    auto repeater = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_self = repeater;
    *repeater = [this, period, prio, cb = std::move(cb), state, weak_self]() {
        cb();
        if (state->cancelled) return;
        auto self = weak_self.lock();
        if (!self) return;
        queue_.push(QueuedEvent{now_ + period, prio, next_seq_++,
                                [self] { (*self)(); }, state});
    };
    queue_.push(QueuedEvent{now_ + period, prio, next_seq_++,
                            [repeater] { (*repeater)(); }, state});
    return EventHandle{std::move(state)};
}

void Simulation::dispatch(QueuedEvent& ev) {
    if (ev.state->cancelled) return;
    ev.state->fired = true;
    ++events_dispatched_;
    ev.cb();
}

void Simulation::run_until(SimTime until) {
    if (running_) throw SimulationError("run_until: kernel is already running");
    if (until < now_) {
        throw SimulationError("run_until: target " + until.to_string() +
                              " is before now (" + now_.to_string() + ")");
    }
    running_ = true;
    stop_requested_ = false;
    while (!queue_.empty() && !stop_requested_) {
        // Note: top() is const&; we must copy out before pop because the
        // callback may push new events and invalidate references.
        QueuedEvent ev = queue_.top();
        if (ev.when > until) break;
        queue_.pop();
        now_ = ev.when;
        dispatch(ev);
    }
    if (!stop_requested_ && now_ < until) now_ = until;
    running_ = false;
}

void Simulation::run_all() {
    if (running_) throw SimulationError("run_all: kernel is already running");
    running_ = true;
    stop_requested_ = false;
    while (!queue_.empty() && !stop_requested_) {
        QueuedEvent ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        dispatch(ev);
    }
    running_ = false;
}

}  // namespace mcps::sim
