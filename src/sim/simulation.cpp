#include "simulation.hpp"

#include <utility>

namespace mcps::sim {

bool EventHandle::cancel() noexcept {
    EventNode* n = live_node();
    if (n == nullptr) return false;
    if ((n->flags & EventNode::kCancelled) != 0) return false;
    if ((n->flags & EventNode::kFired) != 0 && !n->periodic()) return false;
    n->flags = static_cast<std::uint8_t>(n->flags | EventNode::kCancelled);
    // kFired clear means the node is sitting in the pending queue (a
    // periodic mid-dispatch carries kFired and is released on re-arm
    // instead) — count it so the kernel can compact tombstones lazily.
    if ((n->flags & EventNode::kFired) == 0) slab_->note_cancelled();
    return true;
}

bool EventHandle::pending() const noexcept {
    const EventNode* n = live_node();
    if (n == nullptr) return false;
    if ((n->flags & EventNode::kCancelled) != 0) return false;
    return n->periodic() || (n->flags & EventNode::kFired) == 0;
}

Simulation::Simulation(std::uint64_t master_seed, EventArena* arena)
    : master_seed_{master_seed},
      owned_arena_{arena == nullptr ? std::make_unique<EventArena>() : nullptr},
      arena_{arena != nullptr ? arena : owned_arena_.get()},
      queue_{*arena_} {}

Simulation::~Simulation() {
    // Destroy the callbacks of still-pending events so captured
    // resources (message refs, device pointers) are released even when
    // the arena is external and outlives this run.
    while (auto e = queue_.pop_if_at_most(SimTime::never().ticks())) {
        arena_->release(e->idx);
    }
    // The queue is empty now; zero the tombstone count so a warm external
    // arena handed to the next Simulation starts from a clean slate.
    arena_->slab()->set_cancelled_queued(0);
}

EventHandle Simulation::push(SimTime when, EventPriority prio, Callback cb,
                             SimDuration period) {
    const std::uint32_t idx = arena_->acquire();
    EventNode& n = arena_->node(idx);
    n.when = when;
    n.seq = next_seq_++;
    n.period = period;
    n.prio = prio;
    n.cb = std::move(cb);
    if (n.cb.on_heap()) arena_->note_heap_callback();
    queue_.push(idx);
    return EventHandle{arena_->slab(), idx, n.gen};
}

EventHandle Simulation::schedule_at(SimTime when, Callback cb,
                                    EventPriority prio) {
    if (when < now_) {
        throw SimulationError("schedule_at: " + when.to_string() +
                              " is before now (" + now_.to_string() + ")");
    }
    if (!cb) throw SimulationError("schedule_at: empty callback");
    return push(when, prio, std::move(cb), SimDuration::zero());
}

EventHandle Simulation::schedule_after(SimDuration delay, Callback cb,
                                       EventPriority prio) {
    if (delay < SimDuration::zero()) {
        throw SimulationError("schedule_after: negative delay " +
                              delay.to_string());
    }
    if (!cb) throw SimulationError("schedule_after: empty callback");
    return push(now_ + delay, prio, std::move(cb), SimDuration::zero());
}

EventHandle Simulation::schedule_periodic(SimDuration period, Callback cb,
                                          EventPriority prio) {
    if (period <= SimDuration::zero()) {
        throw SimulationError("schedule_periodic: period must be positive, got " +
                              period.to_string());
    }
    if (!cb) throw SimulationError("schedule_periodic: empty callback");
    // The chain is one arena node re-armed in place after every firing:
    // a single cancel() silences all future repetitions, and the chain
    // never allocates again.
    return push(now_ + period, prio, std::move(cb), period);
}

void Simulation::dispatch(std::uint32_t idx) {
    EventNode& n = arena_->node(idx);
    if ((n.flags & EventNode::kCancelled) != 0) {
        arena_->slab()->note_tombstone_popped();
        arena_->release(idx);
        return;
    }
    n.flags = static_cast<std::uint8_t>(n.flags | EventNode::kFired);
    ++events_dispatched_;
    n.cb();
    // Node addresses are stable (chunked slab), so `n` stays valid even
    // if the callback scheduled new events.
    if (!n.periodic() || (n.flags & EventNode::kCancelled) != 0) {
        arena_->release(idx);
        return;
    }
    n.flags = static_cast<std::uint8_t>(n.flags & ~EventNode::kFired);
    n.when = now_ + n.period;
    n.seq = next_seq_++;
    queue_.push(idx);
}

void Simulation::drain(SimTime until) {
    running_ = true;
    stop_requested_ = false;
    std::uint32_t tick = 0;
    while (!stop_requested_) {
        // Cancel-heavy workloads would otherwise pop every tombstone one
        // by one (and sort them into every drain year first). When at
        // least half the pending set is cancelled — and there are enough
        // of them that a sweep amortizes — compact in one O(population)
        // pass. Removed events never run, so dispatch order of live
        // events is untouched. Checked every 256 pops so the cancel-free
        // hot path pays nothing but a local counter increment.
        if ((++tick & 0xFFu) == 0) {
            const std::uint64_t tomb = arena_->slab()->cancelled_queued();
            if (tomb >= kCompactMinTombstones && tomb * 2 >= queue_.size()) {
                queue_.compact();
            }
        }
        auto e = queue_.pop_if_at_most(until.ticks());
        if (!e) break;
        now_ = SimTime::at(SimDuration::micros(e->when));
        dispatch(e->idx);
    }
    running_ = false;
}

void Simulation::run_until(SimTime until) {
    if (running_) throw SimulationError("run_until: kernel is already running");
    if (until < now_) {
        throw SimulationError("run_until: target " + until.to_string() +
                              " is before now (" + now_.to_string() + ")");
    }
    drain(until);
    if (!stop_requested_ && now_ < until) now_ = until;
}

void Simulation::run_all() {
    if (running_) throw SimulationError("run_all: kernel is already running");
    drain(SimTime::never());
}

}  // namespace mcps::sim
