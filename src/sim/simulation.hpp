/// \file simulation.hpp
/// \brief Discrete-event simulation kernel.
///
/// A Simulation owns a simulated clock and an event queue. Components
/// schedule callbacks at absolute instants or after delays; the kernel
/// dispatches them in (time, priority, insertion-order) order, which makes
/// runs fully deterministic. Handles returned by schedule() support
/// cancellation (e.g. a watchdog disarmed by a heartbeat).
///
/// The kernel is deliberately single-threaded: MCPS scenario runs must be
/// reproducible bit-for-bit, and the simulated entities (devices, patient,
/// network) are logically concurrent but execute under the event queue's
/// total order.
///
/// Hot-path architecture (see DESIGN.md "Sim-kernel speed"):
///  - pending events live in a CalendarQueue (amortized O(1)
///    enqueue/dequeue vs the former binary heap's O(log n));
///  - event nodes and their callbacks are arena-allocated (EventArena):
///    steady-state scheduling performs zero heap allocations, and
///    periodic events re-arm in place without any allocation at all;
///  - an external EventArena can be supplied to keep slabs warm across
///    sequential runs (reset() between runs; see ArenaStats).
/// None of this changes dispatch order: the calendar queue pops in
/// exactly the (when, priority, seq) order the heap produced, which is
/// what keeps golden traces and ward fingerprints byte-identical.

#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "calendar_queue.hpp"
#include "event_arena.hpp"
#include "rng.hpp"
#include "time.hpp"

namespace mcps::sim {

/// Error thrown on kernel contract violations (scheduling in the past,
/// running a finished simulation, ...).
class SimulationError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Cancellation handle for a scheduled event. Cheap to copy; cancelling an
/// already-fired or already-cancelled event is a harmless no-op.
///
/// Handles validate a per-slot generation counter against the shared
/// event slab, so they stay safe (and report "not pending") after the
/// event fires, after an arena reset, and even after the Simulation is
/// destroyed.
class EventHandle {
public:
    EventHandle() = default;

    /// Prevents the event from firing. Returns true if the event was still
    /// pending (i.e. this call actually cancelled something).
    bool cancel() noexcept;

    /// True while the event has neither fired nor been cancelled.
    [[nodiscard]] bool pending() const noexcept;

    /// True if this handle refers to some event (fired or not).
    [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(slab_); }

private:
    friend class Simulation;
    EventHandle(SlabRef slab, std::uint32_t idx, std::uint32_t gen)
        : slab_{std::move(slab)}, idx_{idx}, gen_{gen} {}

    /// nullptr when the handle is empty or its slot was recycled.
    [[nodiscard]] EventNode* live_node() const noexcept {
        if (!slab_) return nullptr;
        EventNode* n = &slab_->node(idx_);
        return n->gen == gen_ ? n : nullptr;
    }

    SlabRef slab_;
    std::uint32_t idx_ = 0;
    std::uint32_t gen_ = 0;
};

/// The discrete-event kernel. Non-copyable; one per scenario run.
class Simulation {
public:
    using Callback = EventCallback;

    /// \param master_seed seed from which all named RNG streams derive.
    /// \param arena optional external event arena (kept warm across
    ///   sequential runs); defaults to a private arena. Must outlive the
    ///   Simulation and must not be shared by two live Simulations.
    explicit Simulation(std::uint64_t master_seed = 1,
                        EventArena* arena = nullptr);
    ~Simulation();

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /// Current simulated instant.
    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Master seed this run was constructed with.
    [[nodiscard]] std::uint64_t master_seed() const noexcept { return master_seed_; }

    /// A named deterministic RNG stream derived from the master seed.
    /// Calling twice with the same name returns streams with identical
    /// output, so components should create their stream once and keep it.
    [[nodiscard]] RngStream rng(std::string_view stream_name) const {
        return RngStream{master_seed_, stream_name};
    }

    /// Schedule \p cb at absolute time \p when (>= now()).
    /// \throws SimulationError if \p when is in the past.
    EventHandle schedule_at(SimTime when, Callback cb,
                            EventPriority prio = EventPriority::kDefault);

    /// Schedule \p cb after \p delay (>= 0) from now.
    EventHandle schedule_after(SimDuration delay, Callback cb,
                               EventPriority prio = EventPriority::kDefault);

    /// Schedule \p cb every \p period, first firing at now() + period.
    /// Cancel via the returned handle (cancels all future firings).
    /// Periodic events re-arm in place: the chain performs no further
    /// allocations after this call.
    EventHandle schedule_periodic(SimDuration period, Callback cb,
                                  EventPriority prio = EventPriority::kDefault);

    /// Run until the event queue is empty or \p until is reached (whichever
    /// first). On return now() == min(until, time-of-last-event). Events at
    /// exactly \p until are executed.
    void run_until(SimTime until);

    /// Convenience: run for a span from the current instant.
    void run_for(SimDuration span) { run_until(now_ + span); }

    /// Run until the queue drains completely (use with care: periodic
    /// processes never drain).
    void run_all();

    /// Request the kernel to stop after the current event returns; the
    /// clock stays at the stopping event's timestamp.
    void stop() noexcept { stop_requested_ = true; }

    /// Number of events dispatched so far (for benchmarks/diagnostics).
    [[nodiscard]] std::uint64_t events_dispatched() const noexcept {
        return events_dispatched_;
    }

    /// Number of events currently pending (counting cancelled-but-queued).
    [[nodiscard]] std::size_t events_pending() const noexcept {
        return queue_.size();
    }

    /// Cancelled-but-still-queued events (tombstones). The drain loop
    /// sweeps these out in one pass once they reach half the pending set
    /// (and at least kCompactMinTombstones), instead of popping them one
    /// by one.
    [[nodiscard]] std::uint64_t tombstones_pending() const noexcept {
        return arena_->slab()->cancelled_queued();
    }
    /// Compaction sweeps performed by this run's queue.
    [[nodiscard]] std::uint64_t queue_compactions() const noexcept {
        return queue_.compactions();
    }
    /// Tombstones removed by those sweeps (never dispatched as pops).
    [[nodiscard]] std::uint64_t tombstones_compacted() const noexcept {
        return queue_.tombstones_compacted();
    }

    /// Minimum tombstone population before the drain loop considers a
    /// compaction sweep (amortizes the O(population) pass).
    static constexpr std::uint64_t kCompactMinTombstones = 1024;

    /// Allocation counters of the backing arena (bench --json hooks).
    [[nodiscard]] const ArenaStats& arena_stats() const noexcept {
        return arena_->stats();
    }

private:
    EventHandle push(SimTime when, EventPriority prio, Callback cb,
                     SimDuration period);
    void dispatch(std::uint32_t idx);
    void drain(SimTime until);

    SimTime now_{};
    std::uint64_t master_seed_;
    std::uint64_t next_seq_{0};
    std::uint64_t events_dispatched_{0};
    bool running_{false};
    bool stop_requested_{false};
    std::unique_ptr<EventArena> owned_arena_;  ///< null when external
    EventArena* arena_;
    CalendarQueue queue_;
};

}  // namespace mcps::sim
