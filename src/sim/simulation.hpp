/// \file simulation.hpp
/// \brief Discrete-event simulation kernel.
///
/// A Simulation owns a simulated clock and an event queue. Components
/// schedule callbacks at absolute instants or after delays; the kernel
/// dispatches them in (time, priority, insertion-order) order, which makes
/// runs fully deterministic. Handles returned by schedule() support
/// cancellation (e.g. a watchdog disarmed by a heartbeat).
///
/// The kernel is deliberately single-threaded: MCPS scenario runs must be
/// reproducible bit-for-bit, and the simulated entities (devices, patient,
/// network) are logically concurrent but execute under the event queue's
/// total order.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "rng.hpp"
#include "time.hpp"

namespace mcps::sim {

/// Error thrown on kernel contract violations (scheduling in the past,
/// running a finished simulation, ...).
class SimulationError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Dispatch priority for events that share a timestamp. Lower value runs
/// first. Most components use Default; infrastructure that must observe a
/// consistent pre-state (e.g. trace sampling) uses Early/Late.
enum class EventPriority : std::int8_t {
    kEarly = -1,
    kDefault = 0,
    kLate = 1,
};

/// Cancellation handle for a scheduled event. Cheap to copy; cancelling an
/// already-fired or already-cancelled event is a harmless no-op.
class EventHandle {
public:
    EventHandle() = default;

    /// Prevents the event from firing. Returns true if the event was still
    /// pending (i.e. this call actually cancelled something).
    bool cancel() noexcept;

    /// True while the event has neither fired nor been cancelled.
    [[nodiscard]] bool pending() const noexcept;

    /// True if this handle refers to some event (fired or not).
    [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(state_); }

private:
    friend class Simulation;
    struct State {
        bool cancelled = false;
        bool fired = false;
        bool periodic = false;  ///< periodic chains stay cancellable forever
    };
    explicit EventHandle(std::shared_ptr<State> s) : state_{std::move(s)} {}
    std::shared_ptr<State> state_;
};

/// The discrete-event kernel. Non-copyable; one per scenario run.
class Simulation {
public:
    using Callback = std::function<void()>;

    /// \param master_seed seed from which all named RNG streams derive.
    explicit Simulation(std::uint64_t master_seed = 1);

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /// Current simulated instant.
    [[nodiscard]] SimTime now() const noexcept { return now_; }

    /// Master seed this run was constructed with.
    [[nodiscard]] std::uint64_t master_seed() const noexcept { return master_seed_; }

    /// A named deterministic RNG stream derived from the master seed.
    /// Calling twice with the same name returns streams with identical
    /// output, so components should create their stream once and keep it.
    [[nodiscard]] RngStream rng(std::string_view stream_name) const {
        return RngStream{master_seed_, stream_name};
    }

    /// Schedule \p cb at absolute time \p when (>= now()).
    /// \throws SimulationError if \p when is in the past.
    EventHandle schedule_at(SimTime when, Callback cb,
                            EventPriority prio = EventPriority::kDefault);

    /// Schedule \p cb after \p delay (>= 0) from now.
    EventHandle schedule_after(SimDuration delay, Callback cb,
                               EventPriority prio = EventPriority::kDefault);

    /// Schedule \p cb every \p period, first firing at now() + period.
    /// Cancel via the returned handle (cancels all future firings).
    EventHandle schedule_periodic(SimDuration period, Callback cb,
                                  EventPriority prio = EventPriority::kDefault);

    /// Run until the event queue is empty or \p until is reached (whichever
    /// first). On return now() == min(until, time-of-last-event). Events at
    /// exactly \p until are executed.
    void run_until(SimTime until);

    /// Convenience: run for a span from the current instant.
    void run_for(SimDuration span) { run_until(now_ + span); }

    /// Run until the queue drains completely (use with care: periodic
    /// processes never drain).
    void run_all();

    /// Request the kernel to stop after the current event returns; the
    /// clock stays at the stopping event's timestamp.
    void stop() noexcept { stop_requested_ = true; }

    /// Number of events dispatched so far (for benchmarks/diagnostics).
    [[nodiscard]] std::uint64_t events_dispatched() const noexcept {
        return events_dispatched_;
    }

    /// Number of events currently pending (counting cancelled-but-queued).
    [[nodiscard]] std::size_t events_pending() const noexcept {
        return queue_.size();
    }

private:
    struct QueuedEvent {
        SimTime when;
        EventPriority prio;
        std::uint64_t seq;  ///< tie-breaker: insertion order
        Callback cb;
        std::shared_ptr<EventHandle::State> state;
    };
    struct Later {
        bool operator()(const QueuedEvent& a, const QueuedEvent& b) const noexcept {
            if (a.when != b.when) return a.when > b.when;
            if (a.prio != b.prio) return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    EventHandle push(SimTime when, EventPriority prio, Callback cb);
    void dispatch(QueuedEvent& ev);

    SimTime now_{};
    std::uint64_t master_seed_;
    std::uint64_t next_seq_{0};
    std::uint64_t events_dispatched_{0};
    bool running_{false};
    bool stop_requested_{false};
    std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, Later> queue_;
};

}  // namespace mcps::sim
