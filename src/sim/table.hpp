/// \file table.hpp
/// \brief Aligned text tables for benchmark/experiment output.
///
/// Every experiment binary prints its results as one or more of these
/// tables so EXPERIMENTS.md can quote them directly.

#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mcps::sim {

/// A simple column-aligned table. Cells are strings; numeric helpers
/// format with fixed precision. Rendering pads every column to its
/// widest cell.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Begin a new row; subsequent cell() calls fill it left to right.
    Table& row();
    /// Append a string cell to the current row.
    Table& cell(std::string value);
    /// Append a formatted double (fixed, \p precision decimals).
    Table& cell(double value, int precision = 3);
    /// Append an integer cell.
    Table& cell(std::int64_t value);
    Table& cell(std::uint64_t value);
    Table& cell(int value) { return cell(static_cast<std::int64_t>(value)); }

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Render with a header rule, e.g.
    ///   col_a  col_b
    ///   -----  -----
    ///   1      2.00
    void print(std::ostream& os, const std::string& title = "") const;

    /// Render as CSV (headers + rows).
    void print_csv(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcps::sim
