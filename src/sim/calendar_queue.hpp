/// \file calendar_queue.hpp
/// \brief Calendar queue: the kernel's O(1) pending-event set.
///
/// Replaces the std::priority_queue (binary heap) scheduler. Physio and
/// bus traffic schedules mostly-monotone timestamps a short horizon
/// ahead, which is the distribution calendar queues were designed for
/// (R. Brown, CACM 1988): events hash into year-of-buckets by
/// timestamp, so enqueue and dequeue are amortized O(1) instead of the
/// heap's O(log n) with heavyweight node moves.
///
/// Determinism contract: dequeue order is EXACTLY ascending
/// (when, priority, sequence) — the same total order the heap's
/// comparator produced — regardless of bucket geometry, resizes, or
/// insertion order. Bucket width/count only affect speed, never order,
/// so the golden traces and ward fingerprints are byte-identical across
/// the swap (enforced by the kernel-label differential tests).
///
/// Layout (zero allocations per event):
///  - buckets are intrusive singly-linked lists threaded through the
///    arena nodes' `next` field; `heads_` holds one 32-bit slot index
///    per bucket, so pushing an event writes two words and allocates
///    nothing. An event at timestamp t lives in bucket
///    (t / width) % nbuckets.
///  - `drain_`: the (when, prio, seq, idx) keys of the bucket-year
///    currently being dispatched, sorted ascending with a moving head
///    so each pop is O(1); same-instant follow-up events (e.g.
///    ideal-channel bus deliveries) binary-insert into it, which is an
///    O(1) append in the common case because fresh events carry larger
///    sequence numbers.
///  - resize grows the bucket count as the population grows and
///    re-derives the width from the live timestamp span; entries are
///    re-linked in place (pointer churn only, no copies of node
///    state). Geometry never shrinks within a run: a shrink would be
///    another full relink sweep, bought back only a few bytes of
///    bucket-head storage.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "event_arena.hpp"

namespace mcps::sim {

/// The pending-event set, keyed by (when, priority, sequence). Entries
/// are arena slot indices; the queue threads its bucket lists through
/// the nodes' `next` field and never allocates per event.
class CalendarQueue {
public:
    /// Pop-order key snapshot of a queued node (what pop returns).
    struct Entry {
        std::int64_t when = 0;   ///< timestamp in ticks (must be >= 0)
        std::uint64_t seq = 0;   ///< unique; FIFO tie-breaker
        std::uint32_t idx = 0;   ///< arena slot
        std::int8_t prio = 0;    ///< EventPriority raw value
    };

    /// \param arena backing node storage; must outlive the queue. The
    ///   queue owns the `next` field of every node pushed into it.
    explicit CalendarQueue(EventArena& arena);

    /// Enqueues the arena node at \p idx. Its when/seq/prio fields must
    /// already be set and must not change while queued.
    void push(std::uint32_t idx);

    /// Removes and returns the minimum entry if its timestamp is
    /// <= \p limit; std::nullopt if the queue is empty or the minimum
    /// lies beyond the limit (the queue is left untouched).
    std::optional<Entry> pop_if_at_most(std::int64_t limit);

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    /// Bucket-count snapshot (resize policy introspection for tests).
    [[nodiscard]] std::size_t bucket_count() const noexcept {
        return heads_.size();
    }

    /// Sweeps every bucket (and the active drain) and removes entries
    /// whose node carries EventNode::kCancelled, releasing their arena
    /// slots. Removed events would never have run their callbacks, so
    /// dispatch order of live events is unchanged — this only bounds the
    /// tombstone pops a cancel-heavy workload would otherwise pay one by
    /// one. Resets the slab's cancelled_queued count to the exact
    /// remaining value (zero). Returns the number of entries removed.
    std::size_t compact();

    /// Number of compact() sweeps performed (bench/test introspection).
    [[nodiscard]] std::uint64_t compactions() const noexcept {
        return compactions_;
    }
    /// Total tombstones removed by compact() sweeps.
    [[nodiscard]] std::uint64_t tombstones_compacted() const noexcept {
        return tombstones_compacted_;
    }

private:
    /// Strict (when, prio, seq) order — identical to the heap comparator
    /// this queue replaced.
    [[nodiscard]] static bool less(const Entry& a, const Entry& b) noexcept {
        if (a.when != b.when) return a.when < b.when;
        if (a.prio != b.prio) return a.prio < b.prio;
        return a.seq < b.seq;
    }

    [[nodiscard]] static Entry key_of(const EventNode& n,
                                      std::uint32_t idx) noexcept {
        return Entry{n.when.ticks(), n.seq, idx,
                     static_cast<std::int8_t>(n.prio)};
    }

    [[nodiscard]] std::uint64_t quot(std::int64_t when) const noexcept {
        return static_cast<std::uint64_t>(when) >> width_shift_;
    }

    void link(std::uint32_t idx, std::uint64_t q) noexcept {
        EventNode& n = arena_->node(idx);
        auto& head = heads_[static_cast<std::size_t>(q) & mask_];
        n.next = head;
        head = idx;
    }

    /// Moves every current-cursor entry from its bucket into drain_
    /// (sorted ascending). Returns true if drain_ is non-empty after.
    bool fill_drain();
    /// Re-links drain_ entries into their home bucket (cursor rewind or
    /// resize paths).
    void flush_drain();
    void resize(std::size_t new_bucket_count);
    void maybe_grow();

    EventArena* arena_;
    std::vector<std::uint32_t> heads_;  ///< bucket heads (kNoEvent = empty)
    std::vector<std::uint32_t> scratch_;  ///< resize relink buffer (kept warm)
    std::vector<Entry> drain_;       ///< quot == cursor_, sorted ascending
    std::size_t drain_head_ = 0;     ///< next drain_ entry to pop
    std::uint32_t width_shift_ = 0;  ///< log2(ticks per bucket)
    std::uint64_t cursor_ = 0;       ///< quotient currently being drained
    bool drain_valid_ = false;       ///< drain_ holds cursor_'s entries
    std::size_t mask_ = 0;           ///< heads_.size() - 1 (power of two)
    std::size_t size_ = 0;
    std::uint64_t compactions_ = 0;
    std::uint64_t tombstones_compacted_ = 0;
};

}  // namespace mcps::sim
