/// \file sim.hpp
/// \brief Umbrella header for the mcps_sim discrete-event kernel library.

#pragma once

#include "calendar_queue.hpp"  // IWYU pragma: export
#include "event_arena.hpp"     // IWYU pragma: export
#include "rng.hpp"         // IWYU pragma: export
#include "simulation.hpp"  // IWYU pragma: export
#include "stats.hpp"       // IWYU pragma: export
#include "table.hpp"       // IWYU pragma: export
#include "time.hpp"        // IWYU pragma: export
#include "trace.hpp"       // IWYU pragma: export
