#include "table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mcps::sim {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {
    if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::row() {
    if (!rows_.empty() && rows_.back().size() != headers_.size()) {
        throw std::logic_error("Table: previous row has " +
                               std::to_string(rows_.back().size()) +
                               " cells, expected " +
                               std::to_string(headers_.size()));
    }
    rows_.emplace_back();
    rows_.back().reserve(headers_.size());
    return *this;
}

Table& Table::cell(std::string value) {
    if (rows_.empty()) throw std::logic_error("Table: cell() before row()");
    if (rows_.back().size() >= headers_.size()) {
        throw std::logic_error("Table: too many cells in row");
    }
    rows_.back().push_back(std::move(value));
    return *this;
}

Table& Table::cell(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return cell(std::string{buf});
}

Table& Table::cell(std::int64_t value) {
    return cell(std::to_string(value));
}

Table& Table::cell(std::uint64_t value) {
    return cell(std::to_string(value));
}

void Table::print(std::ostream& os, const std::string& title) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
        for (std::size_t c = 0; c < r.size(); ++c) {
            widths[c] = std::max(widths[c], r[c].size());
        }
    }
    if (!title.empty()) os << "== " << title << " ==\n";
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& v = c < cells.size() ? cells[c] : std::string{};
            os << v;
            if (c + 1 < headers_.size()) {
                os << std::string(widths[c] - v.size() + 2, ' ');
            }
        }
        os << '\n';
    };
    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c], '-');
        if (c + 1 < headers_.size()) os << "  ";
    }
    os << '\n';
    for (const auto& r : rows_) emit_row(r);
}

void Table::print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c) os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
}

}  // namespace mcps::sim
