#include "rng.hpp"

#include <cmath>

namespace mcps::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

RngStream::RngStream(std::uint64_t master_seed, std::string_view name) noexcept {
    // Mix the name hash into the master seed so distinct names give
    // statistically independent substreams.
    std::uint64_t mixed = master_seed ^ rotl(fnv1a64(name), 17);
    seed_from(mixed);
}

RngStream::RngStream(std::uint64_t seed) noexcept { seed_from(seed); }

void RngStream::seed_from(std::uint64_t seed) noexcept {
    // Expand via splitmix64 per the xoshiro authors' recommendation; a
    // zero-everywhere state is impossible because splitmix64 is a bijection
    // sequence over distinct increments.
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
}

RngStream::result_type RngStream::next() noexcept {
    // xoshiro256** reference algorithm (Blackman & Vigna).
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double RngStream::uniform() noexcept {
    // 53 random mantissa bits -> double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
    std::uint64_t r = next();
    while (r >= limit) r = next();
    return lo + static_cast<std::int64_t>(r % span);
}

bool RngStream::bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double RngStream::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Marsaglia polar method.
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
}

double RngStream::normal(double mean, double sd) noexcept {
    return mean + sd * normal();
}

double RngStream::normal_truncated(double mean, double sd, double lo,
                                   double hi) noexcept {
    if (lo > hi) return mean;
    if (sd <= 0.0) return std::min(std::max(mean, lo), hi);
    for (int i = 0; i < 1000; ++i) {
        const double x = normal(mean, sd);
        if (x >= lo && x <= hi) return x;
    }
    // Pathological bounds far in the tail: clamp rather than loop forever.
    return std::min(std::max(mean, lo), hi);
}

double RngStream::exponential(double mean) noexcept {
    // Inverse CDF; 1-uniform() is in (0,1] so log() is finite.
    return -mean * std::log(1.0 - uniform());
}

double RngStream::lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
}

std::size_t RngStream::pick(std::size_t n) noexcept {
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace mcps::sim
