/// \file trace.hpp
/// \brief Timestamped signal recording for scenario runs.
///
/// A TraceRecorder collects (time, value) samples for named scalar signals
/// and (time, label) marks for discrete events. Experiments query traces
/// after a run to compute safety metrics (time below an SpO2 threshold,
/// detection latencies, ...) and can export CSV for offline plotting.

#pragma once

#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "stats.hpp"
#include "time.hpp"

namespace mcps::sim {

/// One scalar sample.
struct TraceSample {
    SimTime time;
    double value;
};

/// One discrete event mark.
struct TraceMark {
    SimTime time;
    std::string label;
};

/// A recorded scalar signal: append-only, time-ordered samples.
class Signal {
public:
    explicit Signal(std::string name) : name_{std::move(name)} {}

    /// Append a sample; times must be non-decreasing.
    void record(SimTime t, double value);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<TraceSample>& samples() const noexcept {
        return samples_;
    }
    [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

    /// Last recorded value, if any.
    [[nodiscard]] std::optional<double> last() const noexcept;

    /// Value at time \p t under zero-order hold (the most recent sample at
    /// or before t); nullopt if t precedes the first sample.
    [[nodiscard]] std::optional<double> value_at(SimTime t) const noexcept;

    /// Total duration within [from, to] during which the (zero-order-held)
    /// signal satisfies \p pred. The signal holds its last value to `to`.
    template <typename Pred>
    [[nodiscard]] SimDuration time_where(SimTime from, SimTime to,
                                         Pred pred) const {
        SimDuration acc = SimDuration::zero();
        if (samples_.empty() || to <= from) return acc;
        for (std::size_t i = 0; i < samples_.size(); ++i) {
            const SimTime seg_start = std::max(samples_[i].time, from);
            const SimTime seg_end =
                i + 1 < samples_.size() ? std::min(samples_[i + 1].time, to) : to;
            if (seg_end <= seg_start) continue;
            if (seg_start >= to) break;
            if (pred(samples_[i].value)) acc += seg_end - seg_start;
        }
        return acc;
    }

    /// Duration where signal < threshold over [from, to].
    [[nodiscard]] SimDuration time_below(SimTime from, SimTime to,
                                         double threshold) const {
        return time_where(from, to, [=](double v) { return v < threshold; });
    }
    /// Duration where signal > threshold over [from, to].
    [[nodiscard]] SimDuration time_above(SimTime from, SimTime to,
                                         double threshold) const {
        return time_where(from, to, [=](double v) { return v > threshold; });
    }

    /// First time at/after \p from where the value satisfies \p pred.
    template <typename Pred>
    [[nodiscard]] std::optional<SimTime> first_time_where(SimTime from,
                                                          Pred pred) const {
        for (const auto& s : samples_) {
            if (s.time >= from && pred(s.value)) return s.time;
        }
        return std::nullopt;
    }

    /// Min over all samples in [from, to]; nullopt if none fall inside.
    [[nodiscard]] std::optional<double> min_in(SimTime from, SimTime to) const;
    /// Max over all samples in [from, to]; nullopt if none fall inside.
    [[nodiscard]] std::optional<double> max_in(SimTime from, SimTime to) const;
    /// Summary statistics over all samples (unweighted by duration).
    [[nodiscard]] RunningStats stats() const;

private:
    std::string name_;
    std::vector<TraceSample> samples_;
};

/// Container of named signals and event marks for one scenario run.
class TraceRecorder {
public:
    /// Get-or-create a signal by name. References remain valid for the
    /// recorder's lifetime (node-based map storage).
    Signal& signal(const std::string& name);

    /// Look up an existing signal; nullptr if never recorded.
    [[nodiscard]] const Signal* find(const std::string& name) const noexcept;

    /// Record a scalar sample (get-or-create shorthand).
    void record(const std::string& name, SimTime t, double value) {
        signal(name).record(t, value);
    }

    /// Record a discrete event mark.
    void mark(SimTime t, std::string label);

    [[nodiscard]] const std::vector<TraceMark>& marks() const noexcept {
        return marks_;
    }
    /// All marks whose label equals \p label.
    [[nodiscard]] std::vector<TraceMark> marks_with(
        const std::string& label) const;
    /// First mark at/after \p from whose label equals \p label.
    [[nodiscard]] std::optional<SimTime> first_mark(
        const std::string& label, SimTime from = SimTime::origin()) const;
    /// Number of marks with the given label.
    [[nodiscard]] std::size_t count_marks(const std::string& label) const;

    [[nodiscard]] std::size_t signal_count() const noexcept {
        return signals_.size();
    }
    [[nodiscard]] std::vector<std::string> signal_names() const;

    /// Write all signals as long-format CSV: time_s,signal,value.
    void write_csv(std::ostream& os) const;

private:
    std::map<std::string, Signal> signals_;
    std::vector<TraceMark> marks_;
};

}  // namespace mcps::sim
