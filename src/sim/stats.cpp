#include "stats.hpp"

#include <algorithm>
#include <cstdio>

namespace mcps::sim {

double SampleSet::quantile(double q) const {
    if (samples_.empty()) throw std::out_of_range("quantile: empty sample set");
    if (q < 0.0 || q > 1.0) throw std::out_of_range("quantile: q outside [0,1]");
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, width_{(hi - lo) / static_cast<double>(bins)} {
    if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
    if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
    counts_.resize(bins, 0);
}

void Histogram::add(double x) noexcept {
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    // Range-check BEFORE the integer cast: for x far above the range
    // (or NaN) the quotient exceeds size_t and float->int conversion
    // would be undefined behaviour.
    const double pos = (x - lo_) / width_;
    if (!(pos < static_cast<double>(counts_.size()))) {
        ++overflow_;
        return;
    }
    ++counts_[static_cast<std::size_t>(pos)];
}

void Histogram::merge(const Histogram& o) {
    if (!same_binning(o)) {
        throw std::invalid_argument(
            "Histogram::merge: binning mismatch (lo/width/bins)");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
    underflow_ += o.underflow_;
    overflow_ += o.overflow_;
    total_ += o.total_;
}

double Histogram::quantile(double q) const {
    if (total_ == 0) throw std::out_of_range("Histogram::quantile: empty");
    if (q < 0.0 || q > 1.0) {
        throw std::out_of_range("Histogram::quantile: q outside [0,1]");
    }
    const double target = q * static_cast<double>(total_);
    double cum = static_cast<double>(underflow_);
    if (underflow_ > 0 && target <= cum) return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double c = static_cast<double>(counts_[i]);
        if (c > 0.0 && target <= cum + c) {
            return bin_low(i) + width_ * ((target - cum) / c);
        }
        cum += c;
    }
    // Only overflow mass remains: clamp to the histogram's upper edge.
    return lo_ + width_ * static_cast<double>(counts_.size());
}

std::string Histogram::to_string(std::size_t max_bar_width) const {
    std::uint64_t peak = 1;
    for (auto c : counts_) peak = std::max(peak, c);
    std::string out;
    char line[160];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar_len = static_cast<std::size_t>(
            (static_cast<double>(counts_[i]) / static_cast<double>(peak)) *
            static_cast<double>(max_bar_width));
        std::snprintf(line, sizeof line, "[%10.3f, %10.3f) %8llu ",
                      bin_low(i), bin_high(i),
                      static_cast<unsigned long long>(counts_[i]));
        out += line;
        out.append(bar_len, '#');
        out += '\n';
    }
    if (underflow_ || overflow_) {
        std::snprintf(line, sizeof line, "underflow=%llu overflow=%llu\n",
                      static_cast<unsigned long long>(underflow_),
                      static_cast<unsigned long long>(overflow_));
        out += line;
    }
    return out;
}

}  // namespace mcps::sim
