/// \file stats.hpp
/// \brief Streaming statistics accumulators used by experiments and benches.

#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace mcps::sim {

/// Streaming mean/variance/min/max via Welford's online algorithm.
/// Numerically stable; O(1) memory. Value type is double throughout.
class RunningStats {
public:
    void add(double x) noexcept {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_) min_ = x;
        if (x > max_) max_ = x;
        sum_ += x;
    }

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
    [[nodiscard]] double sum() const noexcept { return sum_; }
    [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const noexcept {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }
    [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
    [[nodiscard]] double min() const noexcept {
        return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
    }
    [[nodiscard]] double max() const noexcept {
        return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
    }

    /// Merge another accumulator (parallel-combine form of Welford).
    void merge(const RunningStats& o) noexcept {
        if (o.n_ == 0) return;
        if (n_ == 0) {
            *this = o;
            return;
        }
        const double delta = o.mean_ - mean_;
        const auto n1 = static_cast<double>(n_);
        const auto n2 = static_cast<double>(o.n_);
        const double nt = n1 + n2;
        m2_ += o.m2_ + delta * delta * n1 * n2 / nt;
        mean_ = (n1 * mean_ + n2 * o.mean_) / nt;
        n_ += o.n_;
        sum_ += o.sum_;
        if (o.min_ < min_) min_ = o.min_;
        if (o.max_ > max_) max_ = o.max_;
    }

private:
    std::size_t n_{0};
    double mean_{0}, m2_{0}, sum_{0};
    double min_{std::numeric_limits<double>::infinity()};
    double max_{-std::numeric_limits<double>::infinity()};
};

/// Retains all samples; supports exact quantiles. Use for experiment
/// result columns (latency p50/p95/p99 etc.), not hot loops.
class SampleSet {
public:
    void add(double x) {
        samples_.push_back(x);
        sorted_ = false;
        stats_.add(x);
    }

    [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
    [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
    [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
    [[nodiscard]] double stddev() const noexcept { return stats_.stddev(); }
    [[nodiscard]] double min() const noexcept { return stats_.min(); }
    [[nodiscard]] double max() const noexcept { return stats_.max(); }

    /// Exact quantile by linear interpolation between order statistics.
    /// \param q in [0, 1]. \throws std::out_of_range on empty set or bad q.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double median() const { return quantile(0.5); }

    [[nodiscard]] const std::vector<double>& samples() const noexcept {
        return samples_;
    }

private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
    RunningStats stats_;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in
/// saturating underflow/overflow bins. Histograms with identical binning
/// merge exactly (integer counts), which makes them safe reduction state
/// for parallel runs: merge order never changes the result.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;

    [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
    [[nodiscard]] std::uint64_t bin_count(std::size_t i) const {
        return counts_.at(i);
    }
    [[nodiscard]] double bin_low(std::size_t i) const noexcept {
        return lo_ + width_ * static_cast<double>(i);
    }
    [[nodiscard]] double bin_high(std::size_t i) const noexcept {
        return bin_low(i) + width_;
    }
    [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
    [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

    /// True if \p o shares this histogram's lo/width/bin-count.
    [[nodiscard]] bool same_binning(const Histogram& o) const noexcept {
        return lo_ == o.lo_ && width_ == o.width_ &&
               counts_.size() == o.counts_.size();
    }

    /// Bin-wise merge (exact and associative: counts are integers).
    /// \throws std::invalid_argument if binnings differ.
    void merge(const Histogram& o);

    /// Estimated quantile (\p q in [0,1]) by linear interpolation inside
    /// the covering bin. Underflow mass clamps to lo, overflow to hi —
    /// an estimate, unlike SampleSet::quantile, but O(bins) memory.
    /// \throws std::out_of_range on an empty histogram or bad q.
    [[nodiscard]] double quantile(double q) const;
    /// quantile() with \p p in percent, e.g. percentile(99.0).
    [[nodiscard]] double percentile(double p) const { return quantile(p / 100.0); }

    /// ASCII rendering for bench output (one line per bin).
    [[nodiscard]] std::string to_string(std::size_t max_bar_width = 40) const;

private:
    double lo_, width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_{0}, overflow_{0}, total_{0};
};

/// 2x2 confusion-matrix accumulator for detector evaluations (smart
/// alarms, interlocks): records hits/misses/false-alarms/correct-rejects.
class DetectionStats {
public:
    void record(bool event_present, bool detector_fired) noexcept {
        if (event_present) {
            detector_fired ? ++tp_ : ++fn_;
        } else {
            detector_fired ? ++fp_ : ++tn_;
        }
    }

    [[nodiscard]] std::uint64_t true_positives() const noexcept { return tp_; }
    [[nodiscard]] std::uint64_t false_positives() const noexcept { return fp_; }
    [[nodiscard]] std::uint64_t true_negatives() const noexcept { return tn_; }
    [[nodiscard]] std::uint64_t false_negatives() const noexcept { return fn_; }

    /// TP / (TP + FN); NaN if no positive events were seen.
    [[nodiscard]] double sensitivity() const noexcept {
        const double d = static_cast<double>(tp_ + fn_);
        return d > 0 ? static_cast<double>(tp_) / d
                     : std::numeric_limits<double>::quiet_NaN();
    }
    /// TN / (TN + FP); NaN if no negative cases were seen.
    [[nodiscard]] double specificity() const noexcept {
        const double d = static_cast<double>(tn_ + fp_);
        return d > 0 ? static_cast<double>(tn_) / d
                     : std::numeric_limits<double>::quiet_NaN();
    }
    /// TP / (TP + FP); NaN if the detector never fired.
    [[nodiscard]] double precision() const noexcept {
        const double d = static_cast<double>(tp_ + fp_);
        return d > 0 ? static_cast<double>(tp_) / d
                     : std::numeric_limits<double>::quiet_NaN();
    }

private:
    std::uint64_t tp_{0}, fp_{0}, tn_{0}, fn_{0};
};

}  // namespace mcps::sim
