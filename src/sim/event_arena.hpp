/// \file event_arena.hpp
/// \brief Arena-allocated event storage for the discrete-event kernel.
///
/// The kernel's hot path used to pay two heap allocations per scheduled
/// event (a shared_ptr control block for the cancellation state and,
/// for any capture larger than std::function's tiny inline buffer, the
/// callable itself). EventArena replaces both: events live in
/// fixed-size nodes carved from chunked slabs that are recycled through
/// a free list, and callbacks are stored in a 48-byte inline buffer
/// inside the node (EventCallback), so steady-state scheduling performs
/// zero heap allocations. reset() returns every node to the free list
/// while keeping the slab memory, so a warm arena can be reused across
/// runs (bench steady-state, future campaign loops).
///
/// Lifetime & determinism contract:
///  - Node memory never moves: slabs grow by whole chunks, and the
///    calendar queue threads intrusive bucket lists through the nodes'
///    `next` field, so callbacks run in place and the queue itself
///    allocates nothing per event.
///  - EventHandle outlives everything safely: handles share ownership
///    of the slab (non-atomic intrusive refcount — the kernel and its
///    handles live on one thread) and validate a per-slot generation
///    counter, so a handle whose event fired, was reset away, or whose
///    Simulation died simply reports "not pending" instead of dangling.
///  - Nothing here consults wall clocks or global RNG state; arena
///    reuse/reset cannot change event ordering (verified by the
///    kernel-label stress tests).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "time.hpp"

namespace mcps::sim {

/// Dispatch priority for events that share a timestamp. Lower value runs
/// first. Most components use Default; infrastructure that must observe a
/// consistent pre-state (e.g. trace sampling) uses Early/Late.
enum class EventPriority : std::int8_t {
    kEarly = -1,
    kDefault = 0,
    kLate = 1,
};

/// Move-only type-erased callable with a large inline buffer.
///
/// std::function's inline buffer (16 bytes on libstdc++) is too small
/// for the kernel's real callbacks — a bus delivery captures a message
/// reference, a subscription id and the bus pointer — so nearly every
/// scheduled event used to heap-allocate. EventCallback inlines up to
/// kInlineBytes of capture state directly in the event node; larger
/// callables fall back to the heap (tracked by ArenaStats so benches
/// can assert the hot paths stay inline).
class EventCallback {
public:
    static constexpr std::size_t kInlineBytes = 48;

    EventCallback() noexcept = default;
    EventCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, EventCallback> &&
                  !std::is_same_v<D, std::nullptr_t> &&
                  std::is_invocable_r_v<void, D&>>>
    EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
        if constexpr (fits_inline<D>()) {
            ::new (static_cast<void*>(storage_.inline_buf)) D(std::forward<F>(f));
            invoke_ = [](EventCallback* self) {
                (*std::launder(reinterpret_cast<D*>(self->storage_.inline_buf)))();
            };
            manage_ = [](Op op, EventCallback* self, EventCallback* from) {
                auto* obj = std::launder(
                    reinterpret_cast<D*>(op == Op::kMoveFrom
                                             ? from->storage_.inline_buf
                                             : self->storage_.inline_buf));
                if (op == Op::kMoveFrom) {
                    ::new (static_cast<void*>(self->storage_.inline_buf))
                        D(std::move(*obj));
                }
                obj->~D();
            };
        } else {
            storage_.heap = new D(std::forward<F>(f));
            invoke_ = [](EventCallback* self) {
                (*static_cast<D*>(self->storage_.heap))();
            };
            manage_ = [](Op op, EventCallback* self, EventCallback* from) {
                if (op == Op::kMoveFrom) {
                    self->storage_.heap = from->storage_.heap;
                } else {
                    delete static_cast<D*>(self->storage_.heap);
                }
            };
            heap_ = true;
        }
    }

    EventCallback(EventCallback&& other) noexcept { move_from(other); }
    EventCallback& operator=(EventCallback&& other) noexcept {
        if (this != &other) {
            destroy();
            move_from(other);
        }
        return *this;
    }
    EventCallback(const EventCallback&) = delete;
    EventCallback& operator=(const EventCallback&) = delete;
    ~EventCallback() { destroy(); }

    [[nodiscard]] explicit operator bool() const noexcept {
        return invoke_ != nullptr;
    }
    /// True if the callable was too large for the inline buffer.
    [[nodiscard]] bool on_heap() const noexcept { return heap_; }

    void operator()() { invoke_(this); }

    /// Destroys the held callable and returns to the empty state.
    void reset() noexcept {
        destroy();
        invoke_ = nullptr;
        manage_ = nullptr;
        heap_ = false;
    }

private:
    enum class Op : std::uint8_t { kDestroy, kMoveFrom };

    template <typename D>
    [[nodiscard]] static constexpr bool fits_inline() noexcept {
        return sizeof(D) <= kInlineBytes &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    void destroy() noexcept {
        if (manage_) manage_(Op::kDestroy, this, nullptr);
    }
    void move_from(EventCallback& other) noexcept {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        heap_ = other.heap_;
        if (manage_) manage_(Op::kMoveFrom, this, &other);
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
        other.heap_ = false;
    }

    union Storage {
        alignas(std::max_align_t) std::byte inline_buf[kInlineBytes];
        void* heap;
    } storage_;
    void (*invoke_)(EventCallback*) = nullptr;
    void (*manage_)(Op, EventCallback*, EventCallback*) = nullptr;
    bool heap_ = false;
};

/// Sentinel slot index ("no node").
inline constexpr std::uint32_t kNoEvent = 0xFFFFFFFFu;

/// One scheduled event. Nodes live in EventSlab chunks at stable
/// addresses; the calendar queue refers to them by slot index and
/// threads its bucket lists through `next`.
struct EventNode {
    static constexpr std::uint8_t kLive = 1u << 0;
    static constexpr std::uint8_t kCancelled = 1u << 1;
    static constexpr std::uint8_t kFired = 1u << 2;

    SimTime when;
    std::uint64_t seq = 0;
    SimDuration period;  ///< zero for one-shot events
    EventCallback cb;
    std::uint32_t next = kNoEvent;  ///< intrusive calendar-bucket link
    std::uint32_t gen = 0;  ///< bumped on release; stale handles see a mismatch
    EventPriority prio = EventPriority::kDefault;
    std::uint8_t flags = 0;

    [[nodiscard]] bool periodic() const noexcept {
        return period != SimDuration::zero();
    }
};

/// Chunked node storage with stable addresses. Shared (via SlabRef)
/// between the owning EventArena and any outstanding EventHandles, so a
/// handle can always read its slot's generation even after the arena
/// (or its Simulation) is gone.
class EventSlab {
public:
    static constexpr std::uint32_t kChunkShift = 9;  ///< 512 nodes per chunk
    static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
    static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

    [[nodiscard]] EventNode& node(std::uint32_t idx) noexcept {
        return chunks_[idx >> kChunkShift][idx & kChunkMask];
    }
    [[nodiscard]] const EventNode& node(std::uint32_t idx) const noexcept {
        return chunks_[idx >> kChunkShift][idx & kChunkMask];
    }
    [[nodiscard]] std::uint32_t capacity() const noexcept {
        return static_cast<std::uint32_t>(chunks_.size()) * kChunkSize;
    }
    /// Appends one chunk of default-constructed (empty) nodes.
    void grow() { chunks_.push_back(std::make_unique<EventNode[]>(kChunkSize)); }

    /// Number of cancelled events still sitting in the pending queue
    /// (tombstones). Lives on the slab — not the arena — because the
    /// increment comes from EventHandle::cancel(), which only holds a
    /// SlabRef. The calendar queue's lazy compaction triggers off this
    /// count and recomputes it exactly (to zero) on every sweep, so a
    /// stale value after a Simulation dies costs at most one no-op
    /// sweep.
    [[nodiscard]] std::uint64_t cancelled_queued() const noexcept {
        return cancelled_queued_;
    }
    void note_cancelled() noexcept { ++cancelled_queued_; }
    /// Saturating: a stale-counter no-op sweep may already have zeroed it.
    void note_tombstone_popped() noexcept {
        if (cancelled_queued_ > 0) --cancelled_queued_;
    }
    void set_cancelled_queued(std::uint64_t n) noexcept {
        cancelled_queued_ = n;
    }

private:
    friend class SlabRef;
    std::vector<std::unique_ptr<EventNode[]>> chunks_;
    std::uint64_t refs_ = 0;
    std::uint64_t cancelled_queued_ = 0;
};

/// Shared ownership of an EventSlab with a NON-ATOMIC refcount.
/// Rationale: a schedule_*() call mints one handle, so an atomic
/// inc/dec pair on a shared_ptr control block was measurable on the
/// hot path. The kernel is single-threaded and handles never migrate
/// across threads (one arena per worker), so plain increments suffice.
class SlabRef {
public:
    SlabRef() noexcept = default;
    explicit SlabRef(EventSlab* slab) noexcept : slab_{slab} { retain(); }
    SlabRef(const SlabRef& o) noexcept : slab_{o.slab_} { retain(); }
    SlabRef(SlabRef&& o) noexcept : slab_{o.slab_} { o.slab_ = nullptr; }
    SlabRef& operator=(const SlabRef& o) noexcept {
        if (this != &o) {
            release();
            slab_ = o.slab_;
            retain();
        }
        return *this;
    }
    SlabRef& operator=(SlabRef&& o) noexcept {
        if (this != &o) {
            release();
            slab_ = o.slab_;
            o.slab_ = nullptr;
        }
        return *this;
    }
    ~SlabRef() { release(); }

    [[nodiscard]] EventSlab* get() const noexcept { return slab_; }
    [[nodiscard]] explicit operator bool() const noexcept {
        return slab_ != nullptr;
    }
    EventSlab* operator->() const noexcept { return slab_; }

private:
    void retain() noexcept {
        if (slab_) ++slab_->refs_;
    }
    void release() noexcept {
        if (slab_ && --slab_->refs_ == 0) delete slab_;
        slab_ = nullptr;
    }
    EventSlab* slab_ = nullptr;
};

/// Allocation counters surfaced in bench --json reports (the ROADMAP's
/// "no per-event new" target is asserted against these).
struct ArenaStats {
    std::uint64_t nodes_acquired = 0;   ///< total acquire() calls
    std::uint64_t nodes_recycled = 0;   ///< acquires served by the free list
    std::uint64_t chunk_allocs = 0;     ///< slab chunks heap-allocated
    std::uint64_t heap_callbacks = 0;   ///< callables too big for inline storage
    std::uint64_t resets = 0;           ///< reset() calls
    [[nodiscard]] std::uint64_t heap_allocs() const noexcept {
        return chunk_allocs + heap_callbacks;
    }
};

/// Bump/recycle allocator for event nodes. One per Simulation by
/// default; can be constructed externally and passed to several
/// (sequential) Simulations to keep the slab warm across runs.
/// Not thread-safe — one arena per worker thread, like the kernel.
class EventArena {
public:
    EventArena() : slab_{new EventSlab} {}
    EventArena(const EventArena&) = delete;
    EventArena& operator=(const EventArena&) = delete;
    ~EventArena() { release_all(); }

    /// Returns a live (flags=kLive, callback-empty) node's slot index.
    std::uint32_t acquire() {
        ++stats_.nodes_acquired;
        std::uint32_t idx;
        if (!free_.empty()) {
            ++stats_.nodes_recycled;
            idx = free_.back();
            free_.pop_back();
        } else {
            if (next_fresh_ >= slab_->capacity()) {
                slab_->grow();
                ++stats_.chunk_allocs;
            }
            idx = next_fresh_++;
        }
        EventNode& n = slab_->node(idx);
        n.flags = EventNode::kLive;
        n.period = SimDuration::zero();
        ++live_;
        return idx;
    }

    /// Destroys the node's callback, invalidates handles, recycles the slot.
    void release(std::uint32_t idx) noexcept {
        EventNode& n = slab_->node(idx);
        n.cb.reset();
        n.flags = 0;
        ++n.gen;
        --live_;
        free_.push_back(idx);
    }

    /// Notes that a callback landed on the heap (stats hook; the
    /// Simulation calls this after emplacing the callback).
    void note_heap_callback() noexcept { ++stats_.heap_callbacks; }

    /// Releases every live node but keeps the slab memory and free
    /// list, so the next run re-uses warm chunks. All handles from
    /// before the reset become "not pending". Must not be called while
    /// a Simulation still uses this arena.
    void reset() noexcept {
        release_all();
        ++stats_.resets;
    }

    [[nodiscard]] EventNode& node(std::uint32_t idx) noexcept {
        return slab_->node(idx);
    }
    [[nodiscard]] const SlabRef& slab() const noexcept { return slab_; }
    [[nodiscard]] const ArenaStats& stats() const noexcept { return stats_; }
    [[nodiscard]] std::uint64_t live_nodes() const noexcept { return live_; }

private:
    void release_all() noexcept {
        slab_->set_cancelled_queued(0);
        if (live_ == 0) return;
        for (std::uint32_t idx = 0; idx < next_fresh_; ++idx) {
            EventNode& n = slab_->node(idx);
            if ((n.flags & EventNode::kLive) != 0) {
                n.cb.reset();
                n.flags = 0;
                ++n.gen;
                free_.push_back(idx);
            }
        }
        live_ = 0;
    }

    SlabRef slab_;
    std::vector<std::uint32_t> free_;
    std::uint32_t next_fresh_ = 0;
    std::uint64_t live_ = 0;
    ArenaStats stats_;
};

}  // namespace mcps::sim
