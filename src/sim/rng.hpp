/// \file rng.hpp
/// \brief Deterministic, named random-number streams.
///
/// Reproducibility is a first-class requirement for MCPS validation
/// campaigns (the same scenario seed must yield the same trajectory on any
/// platform), so the framework does not use std::mt19937 whose seeding and
/// distribution implementations vary across standard libraries. Instead we
/// implement splitmix64 + xoshiro256** from their published reference
/// algorithms and our own inverse-CDF / Box-Muller-free samplers.
///
/// Streams are *named*: RngStream{master_seed, "pulse_ox.noise"} always
/// produces the same sequence, regardless of how many other streams exist
/// or the order in which they are drawn from. This keeps experiments
/// variance-reduced: adding a new noise source does not perturb existing
/// ones.

#pragma once

#include <cstdint>
#include <string_view>

namespace mcps::sim {

/// Stable 64-bit FNV-1a hash used to derive per-name substream seeds.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
    std::uint64_t h = 14695981039346656037ULL;
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

/// splitmix64 step; used for seed expansion (reference: Steele et al.).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/// A deterministic pseudo-random stream (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator concept, but prefer the typed
/// samplers below over std:: distributions for cross-platform determinism.
class RngStream {
public:
    using result_type = std::uint64_t;

    /// Stream derived from a master seed and a stable stream name.
    RngStream(std::uint64_t master_seed, std::string_view name) noexcept;

    /// Stream from a raw seed (tests, micro-benchmarks).
    explicit RngStream(std::uint64_t seed) noexcept;

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return ~static_cast<result_type>(0);
    }

    /// Next raw 64 bits.
    result_type operator()() noexcept { return next(); }
    result_type next() noexcept;

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform() noexcept;
    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept;
    /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
    /// Bernoulli trial with success probability p (clamped to [0,1]).
    [[nodiscard]] bool bernoulli(double p) noexcept;
    /// Standard normal via Marsaglia polar method (deterministic given stream).
    [[nodiscard]] double normal() noexcept;
    /// Normal with the given mean and standard deviation.
    [[nodiscard]] double normal(double mean, double sd) noexcept;
    /// Truncated normal: resamples until the value lies in [lo, hi].
    [[nodiscard]] double normal_truncated(double mean, double sd, double lo,
                                          double hi) noexcept;
    /// Exponential with the given mean (= 1/rate); mean must be > 0.
    [[nodiscard]] double exponential(double mean) noexcept;
    /// Log-normal such that the *underlying* normal has (mu, sigma).
    [[nodiscard]] double lognormal(double mu, double sigma) noexcept;
    /// Index in [0, n) — for choosing among n alternatives; requires n > 0.
    [[nodiscard]] std::size_t pick(std::size_t n) noexcept;

private:
    void seed_from(std::uint64_t seed) noexcept;
    std::uint64_t s_[4]{};
    double cached_normal_{0};
    bool has_cached_normal_{false};
};

}  // namespace mcps::sim
