/// \file time.hpp
/// \brief Strongly-typed simulated time for the MCPS discrete-event kernel.
///
/// All timing in the framework flows through SimTime (an absolute instant)
/// and SimDuration (a signed span). Both count integer microseconds, which
/// is fine-grained enough for network latencies and coarse enough that a
/// 64-bit tick counter lasts ~292k years of simulated time.
///
/// Following C++ Core Guidelines P.1/I.4 ("make interfaces precisely and
/// strongly typed"), raw integers never cross module boundaries as times;
/// use the user-defined literals in mcps::sim::literals instead.

#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace mcps::sim {

/// A signed span of simulated time, in integer microseconds.
///
/// SimDuration is a regular value type (C.11): copyable, comparable,
/// hashable via ticks(). Arithmetic saturates nowhere — overflow is a
/// programming error at ~292k simulated years.
class SimDuration {
public:
    constexpr SimDuration() noexcept = default;

    /// Named constructors; prefer these (or literals) over raw ticks.
    [[nodiscard]] static constexpr SimDuration micros(std::int64_t v) noexcept {
        return SimDuration{v};
    }
    [[nodiscard]] static constexpr SimDuration millis(std::int64_t v) noexcept {
        return SimDuration{v * 1000};
    }
    [[nodiscard]] static constexpr SimDuration seconds(std::int64_t v) noexcept {
        return SimDuration{v * 1'000'000};
    }
    [[nodiscard]] static constexpr SimDuration minutes(std::int64_t v) noexcept {
        return SimDuration{v * 60'000'000};
    }
    [[nodiscard]] static constexpr SimDuration hours(std::int64_t v) noexcept {
        return SimDuration{v * 3'600'000'000LL};
    }
    /// Fractional seconds, rounded to the nearest microsecond.
    /// \throws std::invalid_argument on NaN or infinite input — a
    ///   non-finite duration would otherwise corrupt the event queue
    ///   through llround's undefined result.
    [[nodiscard]] static SimDuration from_seconds(double s);

    [[nodiscard]] constexpr std::int64_t ticks() const noexcept { return us_; }
    [[nodiscard]] constexpr double to_seconds() const noexcept {
        return static_cast<double>(us_) / 1e6;
    }
    [[nodiscard]] constexpr double to_millis() const noexcept {
        return static_cast<double>(us_) / 1e3;
    }
    [[nodiscard]] constexpr double to_minutes() const noexcept {
        return static_cast<double>(us_) / 60e6;
    }

    [[nodiscard]] static constexpr SimDuration zero() noexcept { return {}; }
    [[nodiscard]] static constexpr SimDuration max() noexcept {
        return SimDuration{std::numeric_limits<std::int64_t>::max()};
    }

    constexpr auto operator<=>(const SimDuration&) const noexcept = default;

    constexpr SimDuration& operator+=(SimDuration o) noexcept {
        us_ += o.us_;
        return *this;
    }
    constexpr SimDuration& operator-=(SimDuration o) noexcept {
        us_ -= o.us_;
        return *this;
    }
    constexpr SimDuration& operator*=(std::int64_t k) noexcept {
        us_ *= k;
        return *this;
    }

    friend constexpr SimDuration operator+(SimDuration a, SimDuration b) noexcept {
        return SimDuration{a.us_ + b.us_};
    }
    friend constexpr SimDuration operator-(SimDuration a, SimDuration b) noexcept {
        return SimDuration{a.us_ - b.us_};
    }
    friend constexpr SimDuration operator-(SimDuration a) noexcept {
        return SimDuration{-a.us_};
    }
    friend constexpr SimDuration operator*(SimDuration a, std::int64_t k) noexcept {
        return SimDuration{a.us_ * k};
    }
    friend constexpr SimDuration operator*(std::int64_t k, SimDuration a) noexcept {
        return SimDuration{a.us_ * k};
    }
    // Exact-match int overloads; without them `d * 3` is ambiguous
    // between the int64 and double forms.
    friend constexpr SimDuration operator*(SimDuration a, int k) noexcept {
        return a * static_cast<std::int64_t>(k);
    }
    friend constexpr SimDuration operator*(int k, SimDuration a) noexcept {
        return a * static_cast<std::int64_t>(k);
    }
    friend SimDuration operator*(SimDuration a, double k) noexcept;
    /// Integer division yielding how many times \p b fits in \p a.
    friend constexpr std::int64_t operator/(SimDuration a, SimDuration b) noexcept {
        return a.us_ / b.us_;
    }
    friend constexpr SimDuration operator/(SimDuration a, std::int64_t k) noexcept {
        return SimDuration{a.us_ / k};
    }
    friend constexpr SimDuration operator%(SimDuration a, SimDuration b) noexcept {
        return SimDuration{a.us_ % b.us_};
    }

    /// Human-readable rendering, e.g. "2.500s", "750ms", "12us".
    [[nodiscard]] std::string to_string() const;

private:
    explicit constexpr SimDuration(std::int64_t us) noexcept : us_{us} {}
    std::int64_t us_{0};
};

/// An absolute instant on the simulation clock. Time zero is scenario start.
class SimTime {
public:
    constexpr SimTime() noexcept = default;

    [[nodiscard]] static constexpr SimTime at(SimDuration since_start) noexcept {
        return SimTime{since_start.ticks()};
    }
    [[nodiscard]] static constexpr SimTime origin() noexcept { return {}; }
    /// A sentinel later than any reachable instant ("never").
    [[nodiscard]] static constexpr SimTime never() noexcept {
        return SimTime{std::numeric_limits<std::int64_t>::max()};
    }

    [[nodiscard]] constexpr std::int64_t ticks() const noexcept { return us_; }
    [[nodiscard]] constexpr SimDuration since_origin() const noexcept {
        return SimDuration::micros(us_);
    }
    [[nodiscard]] constexpr double to_seconds() const noexcept {
        return static_cast<double>(us_) / 1e6;
    }
    [[nodiscard]] constexpr bool is_never() const noexcept {
        return us_ == std::numeric_limits<std::int64_t>::max();
    }

    constexpr auto operator<=>(const SimTime&) const noexcept = default;

    friend constexpr SimTime operator+(SimTime t, SimDuration d) noexcept {
        return SimTime{t.us_ + d.ticks()};
    }
    friend constexpr SimTime operator+(SimDuration d, SimTime t) noexcept {
        return t + d;
    }
    friend constexpr SimTime operator-(SimTime t, SimDuration d) noexcept {
        return SimTime{t.us_ - d.ticks()};
    }
    friend constexpr SimDuration operator-(SimTime a, SimTime b) noexcept {
        return SimDuration::micros(a.us_ - b.us_);
    }
    constexpr SimTime& operator+=(SimDuration d) noexcept {
        us_ += d.ticks();
        return *this;
    }

    /// Renders as "hh:mm:ss.mmm" of simulated time.
    [[nodiscard]] std::string to_string() const;

private:
    explicit constexpr SimTime(std::int64_t us) noexcept : us_{us} {}
    std::int64_t us_{0};
};

std::ostream& operator<<(std::ostream& os, SimDuration d);
std::ostream& operator<<(std::ostream& os, SimTime t);

namespace literals {

constexpr SimDuration operator""_us(unsigned long long v) {
    return SimDuration::micros(static_cast<std::int64_t>(v));
}
constexpr SimDuration operator""_ms(unsigned long long v) {
    return SimDuration::millis(static_cast<std::int64_t>(v));
}
constexpr SimDuration operator""_s(unsigned long long v) {
    return SimDuration::seconds(static_cast<std::int64_t>(v));
}
constexpr SimDuration operator""_min(unsigned long long v) {
    return SimDuration::minutes(static_cast<std::int64_t>(v));
}
constexpr SimDuration operator""_h(unsigned long long v) {
    return SimDuration::hours(static_cast<std::int64_t>(v));
}

}  // namespace literals

}  // namespace mcps::sim
