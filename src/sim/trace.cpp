#include "trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcps::sim {

void Signal::record(SimTime t, double value) {
    if (std::isnan(value)) {
        throw std::invalid_argument("Signal '" + name_ +
                                    "': NaN sample value at " + t.to_string());
    }
    if (!samples_.empty() && t < samples_.back().time) {
        throw std::invalid_argument("Signal '" + name_ +
                                    "': sample time going backwards (" +
                                    t.to_string() + " < " +
                                    samples_.back().time.to_string() + ")");
    }
    samples_.push_back(TraceSample{t, value});
}

std::optional<double> Signal::last() const noexcept {
    if (samples_.empty()) return std::nullopt;
    return samples_.back().value;
}

std::optional<double> Signal::value_at(SimTime t) const noexcept {
    // upper_bound of t, then step back: most recent sample at or before t.
    auto it = std::upper_bound(
        samples_.begin(), samples_.end(), t,
        [](SimTime lhs, const TraceSample& s) { return lhs < s.time; });
    if (it == samples_.begin()) return std::nullopt;
    return std::prev(it)->value;
}

std::optional<double> Signal::min_in(SimTime from, SimTime to) const {
    std::optional<double> best;
    for (const auto& s : samples_) {
        if (s.time < from) continue;
        if (s.time > to) break;
        if (!best || s.value < *best) best = s.value;
    }
    return best;
}

std::optional<double> Signal::max_in(SimTime from, SimTime to) const {
    std::optional<double> best;
    for (const auto& s : samples_) {
        if (s.time < from) continue;
        if (s.time > to) break;
        if (!best || s.value > *best) best = s.value;
    }
    return best;
}

RunningStats Signal::stats() const {
    RunningStats st;
    for (const auto& s : samples_) st.add(s.value);
    return st;
}

Signal& TraceRecorder::signal(const std::string& name) {
    auto it = signals_.find(name);
    if (it == signals_.end()) {
        it = signals_.emplace(name, Signal{name}).first;
    }
    return it->second;
}

const Signal* TraceRecorder::find(const std::string& name) const noexcept {
    auto it = signals_.find(name);
    return it == signals_.end() ? nullptr : &it->second;
}

void TraceRecorder::mark(SimTime t, std::string label) {
    marks_.push_back(TraceMark{t, std::move(label)});
}

std::vector<TraceMark> TraceRecorder::marks_with(const std::string& label) const {
    std::vector<TraceMark> out;
    for (const auto& m : marks_) {
        if (m.label == label) out.push_back(m);
    }
    return out;
}

std::optional<SimTime> TraceRecorder::first_mark(const std::string& label,
                                                 SimTime from) const {
    for (const auto& m : marks_) {
        if (m.time >= from && m.label == label) return m.time;
    }
    return std::nullopt;
}

std::size_t TraceRecorder::count_marks(const std::string& label) const {
    std::size_t n = 0;
    for (const auto& m : marks_) {
        if (m.label == label) ++n;
    }
    return n;
}

std::vector<std::string> TraceRecorder::signal_names() const {
    std::vector<std::string> names;
    names.reserve(signals_.size());
    for (const auto& [name, sig] : signals_) names.push_back(name);
    return names;
}

void TraceRecorder::write_csv(std::ostream& os) const {
    os << "time_s,signal,value\n";
    for (const auto& [name, sig] : signals_) {
        for (const auto& s : sig.samples()) {
            os << s.time.to_seconds() << ',' << name << ',' << s.value << '\n';
        }
    }
}

}  // namespace mcps::sim
